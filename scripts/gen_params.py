"""Generate safe-prime parameter sets and embed them as Python constants.

Run once; output is pasted into ``src/repro/crypto/params.py``.  Safe primes
are expensive to generate, so the library ships with precomputed sets (the
same approach as the RFC 3526 MODP groups).
"""

import json
import secrets
import sys

_SMALL_PRIMES = []


def _sieve(limit: int) -> list:
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, f in enumerate(flags) if f]


_SMALL_PRIMES = _sieve(10000)


def is_probable_prime(n: int, rounds: int = 32) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def gen_safe_prime(bits: int) -> int:
    """Return p = 2q + 1 with both p and q prime, p of exactly `bits` bits."""
    while True:
        q = secrets.randbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        # Cheap sieve on both before Miller-Rabin.
        ok = True
        for sp in _SMALL_PRIMES:
            if q % sp == 0 and q != sp:
                ok = False
                break
            if p % sp == 0 and p != sp:
                ok = False
                break
        if not ok:
            continue
        if is_probable_prime(q, rounds=8) and is_probable_prime(p, rounds=8):
            if is_probable_prime(q, rounds=32) and is_probable_prime(p, rounds=32):
                return p


def main() -> None:
    sizes = [int(s) for s in sys.argv[1:]] or [256, 512]
    out = {}
    for bits in sizes:
        pairs = []
        # two safe primes per size (for RSA moduli p*q) plus one extra for
        # DH groups
        for i in range(3):
            p = gen_safe_prime(bits)
            pairs.append(p)
            print(f"# {bits}-bit safe prime {i}: done", file=sys.stderr)
        out[bits] = pairs
    print(json.dumps({str(k): [hex(x) for x in v] for k, v in out.items()}, indent=1))


if __name__ == "__main__":
    main()
