"""Service-layer observability: the STATUS introspection query, error-path
metrics, room lifecycle spans, and proof that structured logs from a real
socket handshake leak neither member identifiers nor payload bytes."""

import asyncio
import io
import json
import logging

import pytest

from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.obs import logging as obslog
from repro.service import (
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    join_room,
    protocol,
    query_status,
    run_room,
)


@pytest.fixture()
def lineup(service_world):
    return service_world.lineup(*sorted(service_world.members))


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, 60))


class TestStatusQuery:
    def test_snapshot_after_completed_room(self, lineup):
        async def scenario():
            rec = metrics.Recorder()
            with metrics.using(rec):
                async with RendezvousServer(ServerConfig()) as server:
                    cfg = ClientConfig(port=server.port, room="obs-room",
                                       m=len(lineup))
                    outcomes = await run_room(lineup, cfg, scheme1_policy())
                    status = await query_status("127.0.0.1", server.port)
            return outcomes, status

        outcomes, status = _run(scenario())
        assert all(o.success for o in outcomes)
        assert status["rooms"] == {"filling": 0, "active": 0, "closed": 1,
                                   "restoring": 0}
        assert status["outcomes"] == {"completed": 1}
        assert status["counters"]["svc:rooms-completed"] == 1
        assert status["counters"]["svc:status-queries"] == 1
        assert status["accepting"] is True
        assert status["uptime_s"] >= 0
        assert status["histograms"]["svc:relay-latency"]["count"] > 0
        assert status["histograms"]["svc:room-lifetime"]["count"] == 1
        assert status["histograms"]["hs:latency"]["count"] == len(lineup)

    def test_status_while_room_is_filling(self, lineup):
        """Live introspection: query mid-fill, from a separate connection,
        without disturbing the room."""
        async def scenario():
            rec = metrics.Recorder()
            with metrics.using(rec):
                async with RendezvousServer(ServerConfig()) as server:
                    cfg = ClientConfig(port=server.port, room="half",
                                       m=len(lineup))
                    # Start m-1 of m members: the room stays filling.
                    tasks = [asyncio.ensure_future(
                                 run_room(lineup, cfg, scheme1_policy()))]
                    for _ in range(50):
                        await asyncio.sleep(0.01)
                        mid = await query_status("127.0.0.1", server.port)
                        if mid["rooms"]["filling"] or mid["rooms"]["active"]:
                            break
                    outcomes = await tasks[0]
                    return mid, outcomes

        mid, outcomes = _run(scenario())
        assert mid["rooms"]["filling"] + mid["rooms"]["active"] >= 1
        assert all(o.success for o in outcomes)

    def test_status_exposes_no_room_names(self, lineup):
        secret_name = "operation-overlord-planning"

        async def scenario():
            rec = metrics.Recorder()
            with metrics.using(rec):
                async with RendezvousServer(ServerConfig()) as server:
                    cfg = ClientConfig(port=server.port, room=secret_name,
                                       m=len(lineup))
                    await run_room(lineup, cfg, scheme1_policy())
                    return await query_status("127.0.0.1", server.port)

        status = _run(scenario())
        assert secret_name not in json.dumps(status)

    def test_status_frame_roundtrip(self):
        frame = protocol.encode_message(protocol.Status())
        assert isinstance(protocol.decode_message(frame), protocol.Status)
        reply = protocol.StatusReply(body=json.dumps({"ok": 1}))
        decoded = protocol.decode_message(protocol.encode_message(reply))
        assert json.loads(decoded.body) == {"ok": 1}


class TestErrorPathMetrics:
    def test_fill_timeout_counted(self, lineup):
        async def scenario():
            rec = metrics.Recorder()
            with metrics.using(rec):
                config = ServerConfig(room_fill_timeout=0.1)
                async with RendezvousServer(config) as server:
                    cfg = ClientConfig(port=server.port, room="stuck", m=5,
                                       deadline=5.0)
                    # Only one member of five: fill timeout must fire.
                    outcome = await join_room(lineup[0], cfg,
                                              scheme1_policy())
                    status = await query_status("127.0.0.1", server.port)
            return outcome, status

        outcome, status = _run(scenario())
        assert not outcome.success
        assert status["counters"]["svc:fill-timeouts"] == 1
        assert status["counters"]["svc:abort-frames"] >= 1
        assert status["counters"]["svc:rooms-aborted"] == 1
        assert status["outcomes"] == {"fill-timeout": 1}

    def test_protocol_error_counts_error_frame(self):
        async def scenario():
            rec = metrics.Recorder()
            with metrics.using(rec):
                async with RendezvousServer(ServerConfig()) as server:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port)
                    # DONE before HELLO is a protocol violation.
                    from repro.service import framing
                    await framing.write_frame(
                        writer,
                        protocol.encode_message(protocol.Done()),
                        framing.DEFAULT_MAX_FRAME)
                    blob = await framing.read_frame(
                        reader, framing.DEFAULT_MAX_FRAME)
                    writer.close()
                    status = await query_status("127.0.0.1", server.port)
            return blob, status

        blob, status = _run(scenario())
        assert isinstance(protocol.decode_message(blob), protocol.Error)
        assert status["counters"]["svc:protocol-errors"] == 1
        assert status["counters"]["svc:error-frames"] == 1


class TestRoomSpans:
    def test_lifecycle_spans_fill_relay_outcome(self, lineup):
        async def scenario():
            rec = metrics.Recorder()
            rec.tracing = True
            with metrics.using(rec):
                async with RendezvousServer(ServerConfig()) as server:
                    cfg = ClientConfig(port=server.port, room="spanroom",
                                       m=len(lineup))
                    await run_room(lineup, cfg, scheme1_policy())
            return rec.spans()

        spans = _run(scenario())
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        (root,) = by_name["room"]
        assert root.attrs["outcome"] == "completed"
        token = root.attrs["token"]
        (fill,) = by_name["room:fill"]
        (relay,) = by_name["room:relay"]
        assert fill.parent_id == root.span_id
        assert relay.parent_id == root.span_id
        assert fill.attrs["token"] == relay.attrs["token"] == token
        # Each party traced its handshake with nested phase spans.
        assert len(by_name["handshake"]) == len(lineup)
        for phase in ("phase:I", "phase:II", "phase:III"):
            assert len(by_name[phase]) == len(lineup)
        # And the trace never names the rendezvous room.
        for s in spans:
            assert "spanroom" not in str(sorted(s.attrs.items()))


class TestLogRedaction:
    def test_socket_handshake_logs_leak_nothing(self, lineup):
        """The proof test: run a real 5-party socket handshake with JSON
        logging on, then scan every emitted line for member identifiers,
        the rendezvous name, and payload/key material."""
        stream = io.StringIO()
        obslog.configure(level=logging.DEBUG, stream=stream)
        try:
            async def scenario():
                rec = metrics.Recorder()
                with metrics.using(rec):
                    async with RendezvousServer(ServerConfig()) as server:
                        cfg = ClientConfig(port=server.port,
                                           room="secret-society-meeting",
                                           m=len(lineup))
                        return await run_room(lineup, cfg, scheme1_policy())

            outcomes = _run(scenario())
        finally:
            obslog.unconfigure()
        assert all(o.success for o in outcomes)
        text = stream.getvalue()
        lines = [json.loads(line) for line in text.splitlines()]
        assert lines, "expected structured log output"
        # Member identifiers (the service_world fixture enrols p0..p4).
        for ident in (getattr(m, "user_id", None) for m in lineup):
            if ident:
                assert ident not in text
        # The out-of-band rendezvous name.
        assert "secret-society-meeting" not in text
        # Session keys, payload bytes: no long hex runs anywhere.  Room
        # tokens are 16 hex chars and allowed; anything >=32 is material.
        import re
        for run in re.findall(r"[0-9a-f]{20,}", text):
            pytest.fail(f"suspicious hex material in logs: {run[:40]}…")
        # The expected lifecycle events did fire.
        events = {doc["event"] for doc in lines}
        assert {"accept", "room-active", "room-closed", "outcome"} <= events
