"""Fault-injection tests: graceful degradation, never a hang.

Every scenario uses a short server-side handshake timeout plus a client
deadline, so the worst case is an explicit failure a couple of seconds in;
the module-level ``_run`` cap turns any true hang into a loud test error.
"""

import asyncio

import pytest

from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.service import (
    ClientConfig,
    FaultInjector,
    RendezvousServer,
    ServerConfig,
    run_room,
)

TEST_CAP = 60.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


def _lineup(world, count):
    names = sorted(world.members)[:count]
    return world.lineup(*names)


def _faulty_room(members, faults, *, handshake_timeout=2.0, deadline=15.0):
    async def scenario():
        config = ServerConfig(handshake_timeout=handshake_timeout,
                              faults=faults)
        recorder = metrics.Recorder()
        async with RendezvousServer(config) as server:
            cfg = ClientConfig(port=server.port, room="faulty",
                               deadline=deadline)
            with metrics.using(recorder):
                outcomes = await asyncio.ensure_future(
                    run_room(members, cfg, scheme1_policy()))
        # Outside the context manager: shutdown's drain has finalized
        # every room, so outcomes are race-free.
        return outcomes, server.room_outcomes(), recorder.snapshot()

    return _run(scenario())


class TestFaultInjector:
    def test_disconnect_requires_victim(self):
        with pytest.raises(ValueError):
            FaultInjector(disconnect_at="tag")

    def test_max_events_caps_faults(self):
        faults = FaultInjector(drop_kinds={"tag"}, max_events=1)
        assert faults.action_for(0, ("tag", "s", 0, b"t")).copies == 0
        assert faults.action_for(1, ("tag", "s", 1, b"t")).copies == 1

    def test_pass_through_by_default(self):
        faults = FaultInjector()
        action = faults.action_for(0, ("dgka", "s", 0, 0, ()))
        assert action.copies == 1 and not action.disconnect_sender


class TestDegradation:
    def test_dropped_tag_fails_cleanly(self, scheme1_world):
        """Swallowing one party's Phase II tag stalls everyone; the
        handshake timeout converts the stall into explicit failures."""
        members = _lineup(scheme1_world, 2)
        outcomes, rooms, snap = _faulty_room(
            members, FaultInjector(drop_kinds={"tag"}, victim=0,
                                   max_events=1))
        assert all(o.success is False for o in outcomes)
        assert list(rooms.values()) == ["handshake-timeout"]
        assert snap["total"].extra["svc-client:room-aborts"] == 2

    def test_disconnect_at_phase3_fails_cleanly(self, scheme1_world):
        """Killing a participant's socket the moment it publishes Phase III
        aborts the room immediately — survivors do not wait out the
        handshake timeout."""
        members = _lineup(scheme1_world, 3)
        outcomes, rooms, snap = _faulty_room(
            members,
            FaultInjector(disconnect_at="phase3", victim=0, max_events=1),
            handshake_timeout=30.0)        # must NOT be needed
        assert all(o.success is False for o in outcomes)
        assert list(rooms.values()) == ["peer-disconnect"]

    def test_duplicated_broadcasts_are_harmless(self, scheme1_world):
        """An at-least-once relay (every dgka broadcast doubled) does not
        confuse the device state machines: buffering is idempotent."""
        members = _lineup(scheme1_world, 2)
        outcomes, rooms, snap = _faulty_room(
            members, FaultInjector(duplicate_kinds={"dgka"}),
            handshake_timeout=20.0)
        assert all(o.success for o in outcomes)
        assert list(rooms.values()) == ["completed"]
        # Extra deliveries really happened (more receives than the clean
        # 4 * (m - 1) profile).
        received = sum(snap[f"hs:{i}"].messages_received for i in range(2))
        assert received > 8

    def test_delay_slows_but_succeeds(self, scheme1_world):
        members = _lineup(scheme1_world, 2)
        outcomes, rooms, snap = _faulty_room(
            members, FaultInjector(delay=0.05), handshake_timeout=20.0)
        assert all(o.success for o in outcomes)
        assert list(rooms.values()) == ["completed"]

    def test_total_blackout_hits_client_deadline(self, scheme1_world):
        """Even if the server never aborts (huge handshake timeout) and
        every broadcast is dropped, the client's own deadline guarantees
        termination with a failed outcome."""
        members = _lineup(scheme1_world, 2)
        outcomes, rooms, snap = _faulty_room(
            members,
            FaultInjector(drop_kinds={"dgka", "tag", "phase3"}),
            handshake_timeout=300.0, deadline=1.5)
        assert all(o.success is False for o in outcomes)
        assert snap["total"].extra["svc-client:deadline-expired"] == 2
