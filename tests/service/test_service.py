"""End-to-end tests for the rendezvous server + client transport.

No pytest-asyncio / pytest-timeout locally: every test is a sync function
wrapping its coroutine in ``asyncio.run`` and every await that could hang
is capped — outermost by ``_run``'s own ``wait_for`` — so a regression
shows up as an explicit timeout failure, never a hung test session.
"""

import asyncio
import random

import pytest

from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.service import (
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    join_room,
    run_room,
)

#: Outer cap for one test's event loop; generous next to the per-feature
#: timeouts under test (which are fractions of a second to a few seconds).
TEST_CAP = 60.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


def _lineup(world, count):
    names = sorted(world.members)[:count]
    return world.lineup(*names)


class TestLoopbackHandshake:
    def test_three_party_room(self, scheme1_world):
        members = _lineup(scheme1_world, 3)

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                cfg = ClientConfig(port=server.port, room="trio")
                outcomes = await run_room(members, cfg, scheme1_policy())
            # After shutdown's drain the DONE frames are fully processed.
            return outcomes, server.room_outcomes()

        outcomes, rooms = _run(scenario())
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.success for o in outcomes)
        keys = {o.session_key for o in outcomes}
        assert len(keys) == 1 and None not in keys
        assert list(rooms.values()) == ["completed"]

    def test_five_party_room(self, service_world):
        members = _lineup(service_world, 5)

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                cfg = ClientConfig(port=server.port, room="quint")
                return await run_room(members, cfg, scheme1_policy())

        outcomes = _run(scenario())
        assert all(o.success for o in outcomes)
        assert all(o.confirmed_peers == set(range(5)) - {o.index}
                   for o in outcomes)

    def test_room_token_is_unlinkable_session_id(self, scheme1_world):
        """The session id under which the handshake runs is the random
        token, not the client-chosen room name."""
        members = _lineup(scheme1_world, 2)

        async def scenario():
            config = ServerConfig(token_rng=random.Random(99))
            async with RendezvousServer(config) as server:
                cfg = ClientConfig(port=server.port, room="meaningful-name")
                await run_room(members, cfg, scheme1_policy())
            return server.room_outcomes()

        rooms = _run(scenario())
        (token,) = rooms
        assert token == f"{random.Random(99).getrandbits(64):016x}"
        assert "meaningful-name" not in token


class TestConcurrentRooms:
    def test_rooms_share_one_server_without_metric_bleed(self, scheme1_world):
        """Several rooms run at once, each under its own Recorder; every
        room sees exactly the protocol's per-party message profile."""
        members = _lineup(scheme1_world, 2)
        n_rooms = 4

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                recorders = [metrics.Recorder() for _ in range(n_rooms)]
                jobs = []
                for i, recorder in enumerate(recorders):
                    cfg = ClientConfig(port=server.port, room=f"room-{i}")
                    with metrics.using(recorder):
                        # Tasks snapshot the ContextVar here, pinning all
                        # of room i's client counting to recorder i.
                        jobs.append(asyncio.ensure_future(
                            run_room(members, cfg, scheme1_policy())))
                results = await asyncio.gather(*jobs)
            return results, recorders, server.room_outcomes()

        results, recorders, rooms = _run(scenario())
        assert len(rooms) == n_rooms
        assert all(v == "completed" for v in rooms.values())
        for outcomes, recorder in zip(results, recorders):
            assert all(o.success for o in outcomes)
            snap = recorder.snapshot()
            for i in range(2):
                counters = snap[f"hs:{i}"]
                assert counters.messages_sent == 4
                assert counters.messages_received == 4  # 4 * (m - 1)

    def test_distinct_tokens_per_room(self, scheme1_world):
        members = _lineup(scheme1_world, 2)

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                jobs = [
                    run_room(members,
                             ClientConfig(port=server.port, room=f"r{i}"),
                             scheme1_policy())
                    for i in range(3)
                ]
                await asyncio.gather(*jobs)
            return server.room_outcomes()

        rooms = _run(scenario())
        assert len(rooms) == 3       # three distinct random tokens


class TestRobustness:
    def test_fill_timeout_aborts_lonely_room(self, scheme1_world):
        member = _lineup(scheme1_world, 1)[0]

        async def scenario():
            config = ServerConfig(room_fill_timeout=0.3)
            async with RendezvousServer(config) as server:
                cfg = ClientConfig(port=server.port, room="lonely", m=2,
                                   deadline=10.0)
                outcome = await join_room(member, cfg, scheme1_policy())
            return outcome, server.room_outcomes()

        outcome, rooms = _run(scenario())
        assert outcome.success is False
        assert outcome.index == 0     # WELCOME had arrived before the abort
        assert list(rooms.values()) == ["fill-timeout"]

    def test_room_size_disagreement_is_rejected(self, scheme1_world):
        members = _lineup(scheme1_world, 2)

        async def scenario():
            async with RendezvousServer(ServerConfig(room_fill_timeout=0.5)) as server:
                first = asyncio.ensure_future(join_room(
                    members[0],
                    ClientConfig(port=server.port, room="shared", m=2,
                                 deadline=10.0),
                    scheme1_policy()))
                await asyncio.sleep(0.1)
                second = await join_room(
                    members[1],
                    ClientConfig(port=server.port, room="shared", m=3,
                                 deadline=10.0),
                    scheme1_policy())
                return await first, second

        first, second = _run(scenario())
        assert not first.success      # room never filled -> fill-timeout
        assert not second.success     # rejected with ERROR
        assert second.index == -1     # never admitted

    def test_invalid_room_size_rejected(self, scheme1_world):
        member = _lineup(scheme1_world, 1)[0]

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                return await join_room(
                    member,
                    ClientConfig(port=server.port, room="solo", m=1,
                                 deadline=10.0),
                    scheme1_policy())

        outcome = _run(scenario())
        assert not outcome.success and outcome.index == -1

    def test_connect_retries_then_explicit_failure(self, scheme1_world):
        """No server at all: the client backs off, retries, and returns a
        failed outcome — it does not raise and does not hang."""
        member = _lineup(scheme1_world, 1)[0]

        async def scenario():
            # Grab an ephemeral port and close it again: nothing listens.
            probe = await asyncio.start_server(lambda r, w: None,
                                               "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            recorder = metrics.Recorder()
            with metrics.using(recorder):
                outcome = await join_room(
                    member,
                    ClientConfig(port=port, connect_retries=2,
                                 backoff_base=0.01, deadline=5.0),
                    scheme1_policy())
            return outcome, recorder.snapshot()

        outcome, snap = _run(scenario())
        assert not outcome.success and outcome.index == -1
        assert snap["total"].extra["svc-client:retries"] == 2
        assert snap["total"].extra["svc-client:transport-failures"] == 1

    def test_shutdown_aborts_filling_room(self, scheme1_world):
        member = _lineup(scheme1_world, 1)[0]

        async def scenario():
            server = await RendezvousServer(ServerConfig()).start()
            task = asyncio.ensure_future(join_room(
                member,
                ClientConfig(port=server.port, room="doomed", m=2,
                             deadline=10.0),
                scheme1_policy()))
            await asyncio.sleep(0.2)          # let the member join
            await server.shutdown()
            outcome = await task
            return outcome, server.room_outcomes()

        outcome, rooms = _run(scenario())
        assert not outcome.success
        assert list(rooms.values()) == ["server-shutdown"]

    def test_shutdown_drains_active_room(self, scheme1_world):
        """A handshake in flight during shutdown is allowed to finish
        inside the drain window."""
        members = _lineup(scheme1_world, 2)

        async def scenario():
            server = await RendezvousServer(
                ServerConfig(drain_timeout=15.0)).start()
            cfg = ClientConfig(port=server.port, room="draining")
            job = asyncio.ensure_future(
                run_room(members, cfg, scheme1_policy()))
            await asyncio.sleep(0.25)         # room active, mid-handshake
            await server.shutdown(drain=True)
            outcomes = await job
            return outcomes, server.room_outcomes()

        outcomes, rooms = _run(scenario())
        assert all(o.success for o in outcomes)
        assert list(rooms.values()) == ["completed"]
