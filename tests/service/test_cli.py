"""CLI smoke tests: exit codes, --seed plumbing, and the join/serve path.

``demo``'s heavy crypto is stubbed out so these tests probe exactly what
the satellite asks for — nonzero exit status on handshake failure — in
milliseconds; ``join`` runs the real thing against an in-process server.
"""

import asyncio
import threading
from types import SimpleNamespace

from repro import __main__ as cli


def _outcomes(m, success=True, distinct=None):
    return [
        SimpleNamespace(
            index=i, success=success,
            session_key=b"k" * 32 if success else None,
            confirmed_peers=set(range(m)) - {i} if success else set(),
            distinct=distinct, transcript="T")
        for i in range(m)
    ]


class _FakeFramework:
    def __init__(self):
        self.authority = SimpleNamespace(board=[1])

    def admit_member(self, name, rng):
        return name

    def trace(self, transcript):
        return SimpleNamespace(identified=["agent-0", "agent-1", "agent-2"])

    def remove_user(self, name):
        pass


def _stub_demo_world(monkeypatch, script):
    """Replace the demo's crypto with fakes; ``script`` yields one verdict
    ("ok" / "fail" / "rogue") per run_handshake call."""
    plan = iter(script)

    def fake_run(members, policy, rng):
        verdict = next(plan)
        if verdict == "ok":
            return _outcomes(len(members), True)
        if verdict == "rogue":
            return _outcomes(len(members), False, distinct=False)
        return _outcomes(len(members), False)

    monkeypatch.setattr(cli, "create_scheme1", lambda *a, **k: _FakeFramework())
    monkeypatch.setattr(cli, "create_scheme2", lambda *a, **k: _FakeFramework())
    monkeypatch.setattr(cli, "run_handshake", fake_run)


# The demo runs six handshakes, expecting this verdict sequence.
DEMO_HAPPY = ["ok", "fail", "ok", "fail", "ok", "rogue"]


class TestDemo:
    def test_exit_zero_when_all_expectations_hold(self, monkeypatch, capsys):
        _stub_demo_world(monkeypatch, DEMO_HAPPY)
        assert cli.main(["demo", "--seed", "7"]) == 0
        assert "expectation failed" not in capsys.readouterr().out

    def test_exit_nonzero_when_handshake_misbehaves(self, monkeypatch, capsys):
        # The revoked member's handshake "succeeds" — a protocol failure.
        script = ["ok", "fail", "ok", "ok", "ok", "rogue"]
        _stub_demo_world(monkeypatch, script)
        assert cli.main(["demo"]) == 1
        assert "expectation failed" in capsys.readouterr().out

    def test_default_command_is_demo(self, monkeypatch):
        _stub_demo_world(monkeypatch, DEMO_HAPPY)
        assert cli.main([]) == 0


class TestStats:
    def test_exit_nonzero_on_failed_handshake(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "create_scheme1",
                            lambda *a, **k: _FakeFramework())
        monkeypatch.setattr(
            cli, "run_handshake",
            lambda members, policy, rng: _outcomes(len(members), False))
        assert cli.main(["stats", "-m", "2", "--seed", "5"]) == 1
        assert "failed" in capsys.readouterr().err

    def test_exit_zero_on_success(self, monkeypatch):
        monkeypatch.setattr(cli, "create_scheme1",
                            lambda *a, **k: _FakeFramework())
        monkeypatch.setattr(
            cli, "run_handshake",
            lambda members, policy, rng: _outcomes(len(members), True))
        assert cli.main(["stats", "-m", "2", "3"]) == 0

    def _stub_success(self, monkeypatch):
        monkeypatch.setattr(cli, "create_scheme1",
                            lambda *a, **k: _FakeFramework())
        monkeypatch.setattr(
            cli, "run_handshake",
            lambda members, policy, rng: _outcomes(len(members), True))

    def test_format_json_stdout_is_parseable(self, monkeypatch, capsys):
        import json
        self._stub_success(monkeypatch)
        assert cli.main(["stats", "-m", "2", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "scopes" in doc

    def test_format_csv_stdout_is_parseable(self, monkeypatch, capsys):
        import csv
        import io
        self._stub_success(monkeypatch)
        assert cli.main(["stats", "-m", "2", "--format", "csv"]) == 0
        rows = list(csv.reader(io.StringIO(capsys.readouterr().out)))
        assert rows[0][0] == "scope"

    def test_percentiles_prints_histogram_table(self, monkeypatch, capsys):
        self._stub_success(monkeypatch)
        assert cli.main(["stats", "-m", "2", "--percentiles"]) == 0
        out = capsys.readouterr().out
        assert "percentiles" in out and "p99" in out


class TestTrace:
    def test_sim_transport_renders_gantt_and_exports(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "spans.jsonl"
        code = cli.main(["trace", "-m", "2", "--transport", "sim",
                         "--seed", "11",
                         "--out", str(out_path), "--jsonl", str(jsonl_path)])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "hs:0" in rendered and "hs:1" in rendered
        assert "phase:I" in rendered and "#" in rendered
        doc = json.loads(out_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"handshake", "phase:I", "phase:III"} <= names
        assert len(jsonl_path.read_text().splitlines()) > 0


class _ServerThread:
    """A rendezvous server on its own thread + loop, for driving the CLI
    client exactly as a user would (separate process boundary modulo GIL)."""

    def __init__(self):
        self.started = threading.Event()
        self.port = None
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        from repro.service import RendezvousServer, ServerConfig

        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = self._loop.create_future()
            async with RendezvousServer(ServerConfig()) as server:
                self.port = server.port
                self.started.set()
                await self._stop

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self.started.wait(10), "server thread failed to start"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set_result, None)
        self._thread.join(10)


class TestJoin:
    def test_loopback_join_exits_zero(self):
        with _ServerThread() as server:
            code = cli.main(["join", "--port", str(server.port),
                             "-m", "2", "--seed", "11", "--room", "cli-e2e",
                             "--deadline", "60"])
        assert code == 0

    def test_join_without_server_exits_nonzero(self):
        # Grab a port nothing listens on.
        probe = __import__("socket").socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = cli.main(["join", "--port", str(port), "-m", "2",
                         "--seed", "11", "--deadline", "10"])
        assert code == 1


class TestTraceFromFile:
    """Satellite: ``repro trace --in`` on bad input fails fast with a
    one-line message, and renders offline span logs when they're good."""

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        code = cli.main(["trace", "--in", str(tmp_path / "nope.jsonl")])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot load spans" in err
        assert len(err.strip().splitlines()) == 1

    def test_empty_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert cli.main(["trace", "--in", str(path)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_malformed_line_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        assert cli.main(["trace", "--in", str(path)]) == 1
        assert "line 1" in capsys.readouterr().err

    def test_good_span_log_renders_gantt(self, tmp_path, capsys):
        import json
        path = tmp_path / "spans.jsonl"
        rows = [
            {"name": "handshake", "span_id": 1, "parent_id": None,
             "trace_id": "ab" * 8, "ts": 0.0, "dur": 0.2, "tid": "t"},
            {"name": "phase:I", "span_id": 2, "parent_id": 1,
             "trace_id": "ab" * 8, "ts": 0.01, "dur": 0.05, "tid": "t"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert cli.main(["trace", "--in", str(path)]) == 0
        out = capsys.readouterr().out
        assert "handshake" in out and "phase:I" in out and "#" in out


class TestStatsFromFile:
    """Satellite: ``repro stats --from`` re-renders an exported snapshot
    and fails fast on missing/empty/non-metrics files."""

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        code = cli.main(["stats", "--from", str(tmp_path / "nope.json")])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot load metrics" in err
        assert len(err.strip().splitlines()) == 1

    def test_empty_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert cli.main(["stats", "--from", str(path)]) == 1
        assert "empty file" in capsys.readouterr().err

    def test_wrong_document_exits_nonzero(self, tmp_path, capsys):
        import json
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"rooms": 3}))
        assert cli.main(["stats", "--from", str(path)]) == 1
        assert "scopes" in capsys.readouterr().err

    def test_good_snapshot_renders_tables(self, tmp_path, capsys):
        import json
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({
            "scopes": {
                "hs:0": {"modexp": 5, "messages_sent": 4,
                         "messages_received": 8},
                "total": {"modexp": 5, "messages_sent": 4,
                          "messages_received": 8},
            },
            "histograms": {"hs:latency": {
                "count": 1, "p50": 0.1, "p99": 0.2, "max": 0.3}},
        }))
        assert cli.main(["stats", "--from", str(path)]) == 0
        out = capsys.readouterr().out
        assert "hs:0" in out and "total" in out
        assert "hs:latency" in out and "p99" in out


class TestTop:
    def test_no_server_exits_nonzero(self, capsys):
        probe = __import__("socket").socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = cli.main(["top", "--port", str(port), "--samples", "1",
                         "--interval", "0.1"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_nonpositive_interval_rejected(self, capsys):
        import pytest
        with pytest.raises(SystemExit) as err:
            cli.main(["top", "--interval", "0"])
        assert err.value.code == 2
        assert "--interval must be positive" in capsys.readouterr().err
