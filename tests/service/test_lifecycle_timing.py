"""Regression tests for the shard-lifecycle timing fixes.

Two races are pinned here:

* **fill timer vs. room completion** — the m-th HELLO and the fill
  deadline can land on the same event-loop tick.  Pre-fix, the timer
  callback fired inside the WELCOME-send await window and aborted a
  room that *did* fill in time.  The timer is now cancelled
  synchronously before the first await (suppressing a same-tick queued
  callback), and the timeout handler refuses to abort a room that is no
  longer filling.

* **client clocks** — admission wait (call entry → ROOM_READY,
  including connect retries and backoff sleeps) and handshake latency
  (admission → outcome) used to be measured from a mix of
  ``time.monotonic()`` and ``loop.time()`` origins.  They are now two
  separate histograms on one consistent clock, so waiting for peers can
  never inflate ``hs:latency``.
"""

import asyncio
import random

from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.service import ClientConfig, RendezvousServer, ServerConfig, join_room
from repro.service.server import _Room

TEST_CAP = 60.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


class TestFillTimerRace:
    def test_room_that_fills_cancels_its_timer_before_welcome(
            self, scheme1_world):
        """After the m-th member lands, the fill timer is gone and a
        stale timeout callback (the same-tick race, replayed directly)
        must not abort the now-active room."""
        members = scheme1_world.lineup("alice", "bob")
        policy = scheme1_policy()

        async def scenario():
            async with RendezvousServer(
                    ServerConfig(room_fill_timeout=30.0)) as server:
                cfg = ClientConfig(port=server.port, room="same-tick", m=2)
                tasks = [asyncio.ensure_future(join_room(
                    member, cfg, policy, random.Random(i)))
                    for i, member in enumerate(members)]
                # Wait for activation, then catch the room mid-relay.
                room = None
                while room is None or room.state != _Room.ACTIVE:
                    await asyncio.sleep(0.001)
                    rooms = list(server._rooms.values())
                    room = rooms[0] if rooms else None
                assert room.fill_timer is None     # cancelled at fill
                # Replay the pre-fix race: the deadline callback fires
                # after the roster filled.  It must be a no-op.
                server._fill_timeout(room)
                state_after = room.state
                outcomes = await asyncio.gather(*tasks)
                # DONE frames settle just after the client outcomes.
                await asyncio.wait_for(room.finished.wait(), 5.0)
                return outcomes, state_after, room.outcome

        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcomes, state_after, outcome = _run(scenario())
        assert state_after == _Room.ACTIVE
        assert all(o.success for o in outcomes)
        assert outcome == "completed"
        assert recorder.total().extra.get("svc:fill-timeouts", 0) == 0
        assert recorder.total().extra.get("svc:abort:fill-timeout", 0) == 0

    def test_fills_arriving_near_the_deadline_still_complete(
            self, scheme1_world):
        """A room completed by the second member just under the fill
        deadline succeeds — the deadline window closes atomically with
        the fill, never during the WELCOME send."""
        members = scheme1_world.lineup("alice", "bob")
        policy = scheme1_policy()

        async def scenario():
            async with RendezvousServer(
                    ServerConfig(room_fill_timeout=0.6)) as server:
                cfg = ClientConfig(port=server.port, room="deadline", m=2)
                joined = asyncio.Event()
                first = asyncio.ensure_future(join_room(
                    members[0], cfg, policy, random.Random(1),
                    joined=joined))
                await joined.wait()
                await asyncio.sleep(0.45)   # most of the fill window
                second = asyncio.ensure_future(join_room(
                    members[1], cfg, policy, random.Random(2)))
                return await asyncio.gather(first, second)

        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcomes = _run(scenario())
        assert all(o.success for o in outcomes)
        assert recorder.total().extra.get("svc:fill-timeouts", 0) == 0

    def test_lonely_room_still_times_out(self, scheme1_world):
        """The guard must not neuter the timeout itself: a room that
        never fills aborts with the retryable fill-timeout reason."""
        (member,) = scheme1_world.lineup("alice")

        async def scenario():
            async with RendezvousServer(
                    ServerConfig(room_fill_timeout=0.2)) as server:
                cfg = ClientConfig(port=server.port, room="lonely", m=2,
                                   deadline=5.0, connect_retries=0,
                                   backoff_base=5.0, backoff_max=5.0)
                return await join_room(member, cfg, scheme1_policy(),
                                       random.Random(1))

        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcome = _run(scenario())
        assert not outcome.success
        assert recorder.total().extra.get("svc:fill-timeouts") == 1


class TestClientClocks:
    def test_admission_wait_and_handshake_latency_are_separate(
            self, scheme1_world):
        """The first member waits ~0.5s for a peer before the room
        fills; that wait lands in ``svc-client:admission-wait`` and must
        NOT inflate ``hs:latency`` (the crypto itself is milliseconds)."""
        members = scheme1_world.lineup("alice", "bob")
        policy = scheme1_policy()
        peer_delay = 0.5

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                cfg = ClientConfig(port=server.port, room="clocks", m=2)
                joined = asyncio.Event()
                first = asyncio.ensure_future(join_room(
                    members[0], cfg, policy, random.Random(1),
                    joined=joined))
                await joined.wait()
                await asyncio.sleep(peer_delay)
                second = asyncio.ensure_future(join_room(
                    members[1], cfg, policy, random.Random(2)))
                return await asyncio.gather(first, second)

        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcomes = _run(scenario())
        assert all(o.success for o in outcomes)
        histograms = recorder.histograms()
        admission = histograms["svc-client:admission-wait"]
        handshake = histograms["hs:latency"]
        # One observation per member in each histogram.
        assert admission.total == 2
        assert handshake.total == 2
        # The first member's admission wait contains the peer delay …
        assert admission.max >= peer_delay * 0.9
        # … and no handshake-latency sample does: the wait for peers is
        # out of ``hs:latency`` entirely (the pre-fix clock mix let one
        # leak into the other).
        assert handshake.max < peer_delay * 0.9
        # Both members' admission waits are >= 0 on the shared clock
        # (a mixed-origin subtraction can go negative).
        assert admission.min >= 0.0
        assert handshake.min >= 0.0
