"""Revoked-member handshakes end-to-end over real sockets.

After ``remove_user`` the revoked party holds a stale group key and a
revoked credential: over the wire it degrades into a decoy participant
(the runner swallows its key-derivation failure rather than leaking the
revocation through timing/behaviour), so the whole room's handshake fails
— and the failure is a *crypto verdict*, not an environmental error, so
outcomes are terminal (``retryable=False``).  The surviving members still
handshake successfully among themselves.  Both facts must hold on the
single-process server and on a 2-shard cluster (the routed path must not
change any verdict).
"""

import asyncio
import random

import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.scheme1 import create_scheme1, scheme1_policy
from repro.service import ClientConfig, RendezvousServer, ServerConfig, run_room

TEST_CAP = 120.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


@pytest.fixture(scope="module")
def revoked_world():
    """A private 3-member group with one member revoked — session worlds
    are read-only (conftest), membership mutation needs its own."""
    rng = random.Random(7117)
    framework = create_scheme1("bureau", rng=rng)
    members = {name: framework.admit_member(name, rng)
               for name in ("ann", "ben", "cal")}
    framework.remove_user("cal")
    return framework, members


def _assert_revoked_semantics(revoked_outcomes, survivor_outcomes):
    # The room including the revoked member fails for everyone...
    assert not any(o.success for o in revoked_outcomes)
    # ...as a terminal protocol verdict, not a retryable transport blip.
    assert not any(o.retryable for o in revoked_outcomes)
    # The survivors alone still succeed and share one key.
    assert all(o.success for o in survivor_outcomes)
    keys = {o.session_key for o in survivor_outcomes}
    assert len(keys) == 1 and None not in keys


class TestSingleProcessServer:
    def test_revoked_member_breaks_room_survivors_succeed(self, revoked_world):
        _, members = revoked_world
        policy = scheme1_policy()

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                revoked = await run_room(
                    [members["ann"], members["ben"], members["cal"]],
                    ClientConfig(port=server.port, room="with-revoked"),
                    policy)
                survivors = await run_room(
                    [members["ann"], members["ben"]],
                    ClientConfig(port=server.port, room="survivors"),
                    policy)
            # After shutdown's drain every DONE frame is processed.
            return revoked, survivors, server.room_outcomes()

        revoked, survivors, rooms = _run(scenario())
        _assert_revoked_semantics(revoked, survivors)
        # Both rooms ran to completion: the revoked member's failure is a
        # handshake verdict, not a room abort.
        assert sorted(rooms.values()) == ["completed", "completed"]


class TestTwoShardCluster:
    def test_revoked_member_breaks_room_survivors_succeed(self, revoked_world):
        _, members = revoked_world
        policy = scheme1_policy()

        async def scenario():
            async with ClusterRouter(ClusterConfig(shards=2)) as router:
                revoked = await run_room(
                    [members["ann"], members["ben"], members["cal"]],
                    ClientConfig(port=router.port, room="with-revoked"),
                    policy)
                survivors = await run_room(
                    [members["ann"], members["ben"]],
                    ClientConfig(port=router.port, room="survivors"),
                    policy)
                return revoked, survivors

        revoked, survivors = _run(scenario())
        _assert_revoked_semantics(revoked, survivors)
