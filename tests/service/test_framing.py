"""Property/fuzz tests for the length-prefixed frame codec.

The :class:`~repro.service.framing.FrameDecoder` is sans-IO, so hypothesis
can push arbitrary chunkings through it without sockets; the asyncio
helpers are exercised against in-memory stream readers.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.service.framing import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    FrameDecoder,
    encode_frame,
    read_frame,
)

_payloads = st.lists(st.binary(max_size=200), max_size=8)


def _rechunk(blob: bytes, cuts) -> list:
    """Split ``blob`` at the (sorted, deduplicated) cut offsets."""
    points = sorted({min(c, len(blob)) for c in cuts})
    out, prev = [], 0
    for point in points:
        out.append(blob[prev:point])
        prev = point
    out.append(blob[prev:])
    return out


class TestFrameDecoder:
    @given(_payloads, st.lists(st.integers(min_value=0, max_value=2000),
                               max_size=16))
    @settings(max_examples=150)
    def test_roundtrip_any_chunking(self, payloads, cuts):
        """Frames survive any split of the byte stream — including splits
        mid-header and mid-body — and come out in order."""
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        seen = []
        for chunk in _rechunk(stream, cuts):
            seen.extend(decoder.feed(chunk))
        assert seen == payloads
        decoder.close()          # no partial bytes may remain

    @given(_payloads, st.integers(min_value=1, max_value=300))
    @settings(max_examples=100)
    def test_truncation_always_detected(self, payloads, cut):
        """Dropping bytes off the end either loses only whole trailing
        frames or makes close() raise — a partial frame never decodes."""
        stream = b"".join(encode_frame(p) for p in payloads)
        if not stream:
            return
        cut = cut % len(stream)
        truncated = stream[: len(stream) - (cut or 1)]
        decoder = FrameDecoder()
        seen = decoder.feed(truncated)
        # Whatever decoded is a prefix of the original frame sequence …
        assert seen == payloads[: len(seen)]
        assert len(seen) < len(payloads)
        if decoder.buffered:
            # … and a cut mid-frame is detected at end-of-stream.
            with pytest.raises(FrameError):
                decoder.close()
        else:
            decoder.close()      # cut at a frame boundary: clean EOF

    def test_oversized_declared_length_rejected_at_header(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(FrameError, match="max is 16"):
            decoder.feed((17).to_bytes(HEADER_SIZE, "big"))
        # Rejection happens before any body byte is buffered.
        assert decoder.buffered == HEADER_SIZE

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FrameError):
            encode_frame(b"x" * 17, max_frame=16)
        assert encode_frame(b"x" * 16, max_frame=16)

    def test_empty_payload_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == [b""]

    def test_default_ceiling(self):
        huge = (DEFAULT_MAX_FRAME + 1).to_bytes(HEADER_SIZE, "big")
        with pytest.raises(FrameError):
            FrameDecoder().feed(huge)


class TestAsyncHelpers:
    def _run(self, feed: bytes, eof: bool = True, max_frame: int = DEFAULT_MAX_FRAME):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(feed)
            if eof:
                reader.feed_eof()
            return await asyncio.wait_for(read_frame(reader, max_frame), 5)
        return asyncio.run(main())

    def test_reads_one_frame(self):
        assert self._run(encode_frame(b"hello") + b"rest") == b"hello"

    def test_clean_eof_returns_none(self):
        assert self._run(b"") is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(FrameError, match="mid-header"):
            self._run(b"\x00\x00")

    def test_eof_mid_body_raises(self):
        with pytest.raises(FrameError, match="mid-body"):
            self._run(encode_frame(b"hello")[:-2])

    def test_oversized_rejected_before_body(self):
        with pytest.raises(FrameError, match="declares"):
            self._run((99).to_bytes(HEADER_SIZE, "big"), eof=False,
                      max_frame=16)
