"""Tests for the typed service control-message codec."""

import pytest

from repro.core import wire
from repro.errors import EncodingError, ProtocolError
from repro.service import protocol


MESSAGES = [
    protocol.Hello(room="lobby", m=3),
    protocol.Welcome(room="lobby", index=1, m=3),
    protocol.RoomReady(room="lobby", token="deadbeef01020304", m=3),
    protocol.Broadcast(payload=("dgka", "sid", 0, 1, (12345,))),
    protocol.Deliver(payload=("tag", "sid", 2, b"\x01\x02")),
    protocol.Done(),
    protocol.Abort(reason="handshake-timeout"),
    protocol.Error(reason="duplicate HELLO"),
]


class TestRoundtrip:
    @pytest.mark.parametrize("message", MESSAGES,
                             ids=[type(m).__name__ for m in MESSAGES])
    def test_roundtrip(self, message):
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_kinds_are_distinct(self):
        kinds = {type(m).KIND for m in MESSAGES}
        assert len(kinds) == len(MESSAGES)


class TestRejection:
    def test_junk_bytes(self):
        with pytest.raises(EncodingError):
            protocol.decode_message(b"\xff\xfejunk")

    def test_non_tuple_value(self):
        with pytest.raises(ProtocolError, match="tagged message"):
            protocol.decode_message(wire.dumps(b"hello"))

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown service message"):
            protocol.decode_message(wire.dumps(("svc/evil", 1)))

    def test_arity_mismatch(self):
        with pytest.raises(ProtocolError, match="arity"):
            protocol.decode_message(wire.dumps(("svc/hello", "room-only")))

    def test_field_type_mismatch(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            protocol.decode_message(
                wire.dumps(("svc/hello", "lobby", "three", "")))

    def test_trace_type_mismatch(self):
        with pytest.raises(ProtocolError, match="wrong type"):
            protocol.decode_message(
                wire.dumps(("svc/hello", "lobby", 3, 42)))

    def test_pre_trace_hello_arity_rejected(self):
        # The codec is strict: all in-repo components share it, so the
        # HELLO arity change (trace context) is atomic — old two-field
        # frames are a protocol error, not a silent default.
        with pytest.raises(ProtocolError, match="arity"):
            protocol.decode_message(wire.dumps(("svc/hello", "lobby", 3)))

    def test_encode_rejects_foreign_object(self):
        with pytest.raises(ProtocolError, match="not a service message"):
            protocol.encode_message(("svc/hello", "lobby", 3))


class TestPayloadKind:
    def test_handshake_kinds(self):
        assert protocol.payload_kind(("dgka", "sid", 0, 1, ())) == "dgka"
        assert protocol.payload_kind(("tag", "sid", 1, b"t")) == "tag"

    def test_untagged(self):
        assert protocol.payload_kind(42) == "?"
        assert protocol.payload_kind(()) == "?"
        assert protocol.payload_kind((1, "x")) == "?"
