"""Backoff schedule unit tests (fake clock) and BUSY admission retries.

The :class:`~repro.service.client.Backoff` regression being pinned: the
old ``_connect`` loop did ``delay *= factor`` with no ceiling, so a long
outage produced minute-scale sleeps, and nothing clamped a sleep to the
caller's overall deadline — a retry could sleep *past* the deadline it
was supposed to respect.  ``next_delay`` takes ``now`` explicitly, so the
whole schedule is testable without sleeping.
"""

import asyncio
import random

import pytest

from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.service import (
    Backoff,
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    join_room,
)

TEST_CAP = 60.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


class TestBackoffSchedule:
    def test_exponential_up_to_cap_then_flat(self):
        backoff = Backoff(base=0.05, factor=2.0, maximum=0.4)
        delays = [backoff.next_delay(now=0.0) for _ in range(6)]
        assert delays == pytest.approx([0.05, 0.1, 0.2, 0.4, 0.4, 0.4])

    def test_cap_holds_forever(self):
        """The historical bug: growth was unbounded.  After any number of
        steps the bare delay never exceeds the ceiling."""
        backoff = Backoff(base=0.01, factor=3.0, maximum=1.5)
        for _ in range(200):
            assert backoff.next_delay(now=0.0) <= 1.5

    def test_base_above_maximum_is_clamped_immediately(self):
        backoff = Backoff(base=5.0, factor=2.0, maximum=1.0)
        assert backoff.next_delay(now=0.0) == pytest.approx(1.0)

    def test_jitter_adds_bounded_fraction_on_top_of_cap(self):
        backoff = Backoff(base=0.4, factor=2.0, maximum=0.4, jitter=0.5,
                          rng=random.Random(11))
        for _ in range(100):
            delay = backoff.next_delay(now=0.0)
            assert 0.4 <= delay <= 0.4 * 1.5

    def test_jitter_zero_without_rng(self):
        backoff = Backoff(base=0.1, factor=2.0, maximum=0.4, jitter=0.5)
        assert backoff.next_delay(now=0.0) == pytest.approx(0.1)


class TestDeadlineClamp:
    def test_sleep_clamped_to_remaining_deadline(self):
        backoff = Backoff(base=0.5, factor=2.0, maximum=8.0,
                          deadline_at=10.0)
        backoff.next_delay(now=0.0)               # 0.5
        backoff.next_delay(now=1.0)               # 1.0
        assert backoff.next_delay(now=9.8) == pytest.approx(0.2)

    def test_expired_deadline_returns_none_not_a_sleep(self):
        backoff = Backoff(base=0.5, factor=2.0, maximum=8.0,
                          deadline_at=10.0)
        assert backoff.next_delay(now=10.0) is None
        assert backoff.next_delay(now=11.0) is None

    def test_clamp_applies_after_jitter(self):
        """Jitter can only shrink toward the deadline, never overshoot:
        the clamp is the last step of the computation."""
        backoff = Backoff(base=4.0, factor=2.0, maximum=4.0, jitter=1.0,
                          rng=random.Random(3), deadline_at=1.0)
        for now in (0.0, 0.25, 0.5, 0.75, 0.99):
            delay = backoff.next_delay(now)
            assert delay is not None and delay <= 1.0 - now + 1e-9

    def test_no_deadline_means_no_clamp(self):
        backoff = Backoff(base=2.0, factor=2.0, maximum=2.0)
        assert backoff.next_delay(now=1e9) == pytest.approx(2.0)


class TestBusyAdmission:
    def test_full_server_sheds_then_admits(self, scheme1_world):
        """Satellite acceptance: a server at its ``max_rooms`` ceiling
        sheds new rooms with BUSY; the shed clients back off, re-HELLO,
        and are admitted once the slot frees — nobody fails, nobody
        hangs."""
        names = sorted(scheme1_world.members)[:2]
        members = scheme1_world.lineup(*names)
        policy = scheme1_policy()

        async def scenario():
            config = ServerConfig(max_rooms=1)
            async with RendezvousServer(config) as server:
                holder_cfg = ClientConfig(port=server.port,
                                          room="slot-holder")
                joined = asyncio.Event()
                first = asyncio.ensure_future(join_room(
                    members[0], holder_cfg, policy, random.Random(1),
                    joined=joined))
                await joined.wait()     # room open: the one slot is taken
                shed_cfg = ClientConfig(port=server.port, room="queued",
                                        backoff_base=0.05, backoff_max=0.2)
                shed = [asyncio.ensure_future(join_room(
                            member, shed_cfg, policy, random.Random(10 + i)))
                        for i, member in enumerate(members)]
                # Let the shed clients hit BUSY at least once before the
                # slot frees up.
                await asyncio.sleep(0.4)
                second = asyncio.ensure_future(join_room(
                    members[1], holder_cfg, policy, random.Random(2)))
                return await asyncio.gather(first, second, *shed)

        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcomes = _run(scenario())
        assert all(o.success for o in outcomes)
        extra = recorder.total().extra
        assert extra.get("svc:busy-sheds", 0) >= 1
        assert extra.get("svc-client:busy-retries", 0) >= 1
