"""Arrival processes: determinism, rate fidelity, and the room mix."""

import random

import pytest

from repro.load.arrivals import (
    OnOffProcess,
    PoissonProcess,
    RoomMix,
    make_process,
)


def _times(process, duration):
    return list(process.times(duration))


class TestPoisson:
    def test_same_seed_same_schedule(self):
        a = _times(PoissonProcess(3.0, random.Random(5)), 20.0)
        b = _times(PoissonProcess(3.0, random.Random(5)), 20.0)
        assert a == b and a

    def test_times_strictly_increasing_within_window(self):
        times = _times(PoissonProcess(5.0, random.Random(1)), 10.0)
        assert times == sorted(times)
        assert len(times) == len(set(times))
        assert all(0.0 < t < 10.0 for t in times)

    def test_empirical_rate_matches(self):
        # 50/s for 200s -> ~10k arrivals; the sample mean of an
        # exponential at n=10k sits well inside +/-5%.
        times = _times(PoissonProcess(50.0, random.Random(7)), 200.0)
        assert len(times) == pytest.approx(50.0 * 200.0, rel=0.05)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0, random.Random(0))


class TestOnOff:
    def test_from_mean_preserves_mean_rate(self):
        process = OnOffProcess.from_mean(
            4.0, random.Random(0), burst_factor=2.0, on_fraction=0.3)
        assert process.mean_rate == pytest.approx(4.0)
        assert process.rate_on == pytest.approx(8.0)

    def test_clamped_off_rate_reported_honestly(self):
        # burst_factor 4 at on_fraction 0.3 wants a negative OFF rate;
        # the clamp silences the OFF state and raises the realised mean.
        process = OnOffProcess.from_mean(
            2.0, random.Random(0), burst_factor=4.0, on_fraction=0.3)
        assert process.rate_off == 0.0
        assert process.mean_rate > 2.0
        assert process.describe()["mean_rate"] == pytest.approx(
            process.mean_rate, rel=1e-6)

    def test_same_seed_same_schedule(self):
        make = lambda: OnOffProcess.from_mean(  # noqa: E731
            5.0, random.Random(11), burst_factor=2.0, on_fraction=0.4)
        assert _times(make(), 30.0) == _times(make(), 30.0)

    def test_empirical_rate_matches_mean(self):
        process = OnOffProcess.from_mean(
            20.0, random.Random(3), burst_factor=2.0, on_fraction=0.3,
            cycle=2.0)
        times = _times(process, 400.0)
        assert all(0.0 < t < 400.0 for t in times)
        assert times == sorted(times)
        assert len(times) == pytest.approx(20.0 * 400.0, rel=0.1)

    def test_silent_off_state_still_terminates(self):
        process = OnOffProcess(10.0, 0.0, 0.5, 0.5, random.Random(9))
        times = _times(process, 20.0)
        assert times and all(0.0 < t < 20.0 for t in times)

    def test_parameter_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            OnOffProcess(0.0, 1.0, 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            OnOffProcess(1.0, 1.0, 0.0, 1.0, rng)
        with pytest.raises(ValueError):
            OnOffProcess.from_mean(1.0, rng, on_fraction=1.0)
        with pytest.raises(ValueError):
            OnOffProcess.from_mean(1.0, rng, burst_factor=0.5)


class TestFactory:
    def test_kinds(self):
        rng = random.Random(0)
        assert isinstance(make_process("poisson", 1.0, rng), PoissonProcess)
        assert isinstance(make_process("bursty", 1.0, rng), OnOffProcess)
        with pytest.raises(ValueError):
            make_process("fractal", 1.0, rng)


class TestRoomMix:
    def test_parse_weighted(self):
        mix = RoomMix.parse("2:0.7,3:0.2,8:0.1")
        assert mix.sizes == [2, 3, 8]
        assert mix.max_m == 8
        assert mix.mean_m() == pytest.approx(2.8)

    def test_parse_bare_size_and_duplicates(self):
        assert RoomMix.parse("4").entries == ((4, 1.0),)
        # Duplicate sizes accumulate weight rather than clobbering.
        assert RoomMix.parse("2:1,2:2").entries == ((2, 3.0),)

    def test_str_roundtrips_through_parse(self):
        mix = RoomMix.parse("2:0.5,5:0.5")
        assert RoomMix.parse(str(mix)) == mix

    def test_describe_normalises(self):
        mix = RoomMix.parse("2:3,4:1")
        assert mix.describe() == {"2": 0.75, "4": 0.25}

    def test_sample_is_seeded_and_respects_weights(self):
        mix = RoomMix.parse("2:0.9,8:0.1")
        draws = [mix.sample(random.Random(42)) for _ in range(5)]
        assert len(set(draws)) == 1        # same fresh seed, same draw
        rng = random.Random(6)
        counts = {2: 0, 8: 0}
        for _ in range(2000):
            counts[mix.sample(rng)] += 1
        assert counts[2] / 2000 == pytest.approx(0.9, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoomMix.parse("1:1")           # m < 2 cannot handshake
        with pytest.raises(ValueError):
            RoomMix.parse("2:0")           # non-positive weight
        with pytest.raises(ValueError):
            RoomMix.parse("two:1")
        with pytest.raises(ValueError):
            RoomMix.parse("")
