"""The open-loop driver against a real in-process rendezvous server.

Same discipline as tests/service: no pytest-asyncio, every scenario is
wrapped in ``asyncio.run`` with an outer ``wait_for`` cap so a regression
is a loud timeout, never a hang.
"""

import asyncio
import random

import pytest

from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.load import HandshakeModel, LoadConfig, RoomMix, run_open_loop
from repro.load.generator import run_timed_room
from repro.load.report import build_report, format_report
from repro.service import ClientConfig, RendezvousServer, ServerConfig

TEST_CAP = 60.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


def _lineup(world, count):
    names = sorted(world.members)[:count]
    return world.lineup(*names)


class TestRunTimedRoom:
    def test_timestamps_and_model_validation(self, scheme1_world):
        members = _lineup(scheme1_world, 2)

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                cfg = ClientConfig(port=server.port, room="timed")
                return await run_timed_room(
                    members, cfg, scheme1_policy(),
                    model=HandshakeModel("1"))

        result = _run(scenario())
        assert result.outcome == "completed"
        assert result.successes == 2
        assert result.mismatches == []
        # Lifecycle ordering: arrival <= spawn <= first WELCOME <=
        # room filled <= completion.
        assert result.arrival_s <= result.spawned_s
        assert result.spawned_s <= result.first_welcome_s
        assert result.first_welcome_s <= result.admitted_s
        assert result.admitted_s <= result.completed_s
        assert result.admission_latency_s >= 0
        assert result.e2e_latency_s >= result.admission_latency_s
        doc = result.as_dict()
        for key in ("arrival_s", "spawned_s", "first_welcome_s",
                    "admitted_s", "completed_s", "admission_latency_s",
                    "e2e_latency_s", "outcome", "mismatches"):
            assert key in doc

    def test_room_books_do_not_leak_to_caller(self, scheme1_world):
        members = _lineup(scheme1_world, 2)
        recorder = metrics.Recorder()

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                cfg = ClientConfig(port=server.port, room="isolated")
                return await run_timed_room(members, cfg, scheme1_policy())

        with metrics.using(recorder):
            result = _run(scenario())
        assert "hs:0" in result.books
        # The per-party books live in the result, not the ambient scope.
        assert "hs:0" not in recorder.snapshot()


class TestOpenLoop:
    def test_sustained_run_completes_and_books_telemetry(
            self, scheme1_world):
        members = _lineup(scheme1_world, 3)
        config = LoadConfig(rate=4.0, duration=1.0,
                            mix=RoomMix.parse("2:0.8,3:0.2"), seed=21,
                            deadline=20.0, drain_grace=10.0)
        recorder = metrics.Recorder()

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                run_config = LoadConfig(
                    **{**config.__dict__, "port": server.port})
                with metrics.using(recorder):
                    return run_config, await run_open_loop(
                        run_config, members, scheme1_policy())

        run_config, results = _run(scenario())
        assert results, "seeded poisson at 4/s for 1s should arrive"
        assert all(r.outcome == "completed" for r in results)
        assert all(r.mismatches == [] for r in results)
        assert len({r.room for r in results}) == len(results)
        extra = recorder.total().extra
        assert extra["load:arrivals"] == len(results)
        assert extra["load:completed"] == len(results)
        sized = sum(value for name, value in extra.items()
                    if name.startswith("load:arrivals:m="))
        assert sized == len(results)
        hists = recorder.histograms()
        assert hists["load:e2e-latency"].total == len(results)
        assert hists["load:admission-latency"].total == len(results)

        doc = build_report(run_config, results, recorder=recorder)
        assert doc["achieved"]["completed"] == len(results)
        assert doc["model"]["counts_exact"]
        assert "open-loop load report" in format_report(doc)

    def test_overload_sheds_but_nothing_dies(self, scheme1_world):
        members = _lineup(scheme1_world, 2)
        config = LoadConfig(rate=12.0, duration=0.8,
                            mix=RoomMix.single(2), seed=22,
                            deadline=15.0, drain_grace=10.0)
        recorder = metrics.Recorder()

        async def scenario():
            # A one-room admission ceiling under 12 arrivals/s: the
            # server must shed with retryable BUSY, not collapse.
            with metrics.using(recorder):
                async with RendezvousServer(
                        ServerConfig(max_rooms=1)) as server:
                    run_config = LoadConfig(
                        **{**config.__dict__, "port": server.port})
                    return await run_open_loop(
                        run_config, members, scheme1_policy())

        results = _run(scenario())
        assert results
        assert all(r.outcome in ("completed", "retryable")
                   for r in results)
        extra = recorder.total().extra
        assert extra.get("svc:busy:at-capacity", 0) > 0
        assert extra.get("svc:busy-sheds", 0) >= \
            extra.get("svc:busy:at-capacity", 0)
        assert extra.get("load:drain-timeouts", 0) == 0

    def test_needs_enough_members_for_the_mix(self, scheme1_world):
        members = _lineup(scheme1_world, 2)
        config = LoadConfig(mix=RoomMix.single(4))
        with pytest.raises(ValueError):
            _run(run_open_loop(config, members, scheme1_policy()))
