"""The symbolic capacity model: closed forms, both backends, validation
strictness, and the capacity inversion."""

import random

import pytest

from repro import metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.load import model as model_module
from repro.load.model import (
    BYTES_TOLERANCE,
    HandshakeModel,
    backend,
    capacity_report,
)


class TestClosedForms:
    @pytest.mark.parametrize("scheme,slope,const", [("1", 24, 10),
                                                    ("2", 19, 9)])
    def test_per_party_modexp(self, scheme, slope, const):
        model = HandshakeModel(scheme)
        for m in (2, 3, 5, 8, 16):
            predicted = model.per_party(m)
            assert predicted["modexp"] == slope * m + const
            assert predicted["messages_sent"] == 4
            assert predicted["messages_received"] == 4 * (m - 1)

    def test_expressions_render(self):
        assert HandshakeModel("1").expressions()["modexp"] == "24*m + 10"
        assert HandshakeModel("2").expressions()["modexp"] == "19*m + 9"

    def test_per_room_is_m_times_per_party(self):
        model = HandshakeModel("1")
        party, room = model.per_party(5), model.per_room(5)
        assert room == {name: 5 * value for name, value in party.items()}

    def test_predict_folds_the_mix_and_ignores_shards(self):
        model = HandshakeModel("1")
        expected = {
            name: 3 * model.per_room(2)[name] + 1 * model.per_room(5)[name]
            for name in model.per_room(2)
        }
        assert model.predict({2: 3, 5: 1}, shards=1) == expected
        # The shard-invariance claim: the router is a byte splice.
        assert model.predict({2: 3, 5: 1}, shards=7) == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            HandshakeModel("3")
        with pytest.raises(ValueError):
            HandshakeModel("1").per_party(1)


class TestAgainstEngine:
    """The model's counts are the measured books, not an approximation."""

    @pytest.mark.parametrize("scheme", ["1", "2"])
    def test_engine_books_match_exactly(self, scheme, scheme1_world,
                                        scheme2_world):
        world = scheme1_world if scheme == "1" else scheme2_world
        policy = scheme1_policy() if scheme == "1" else scheme2_policy()
        members = [world.members[n] for n in sorted(world.members)][:3]
        model = HandshakeModel(scheme)
        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcomes = run_handshake(members, policy, random.Random(17))
            snapshot = recorder.snapshot()
        assert all(o.success for o in outcomes)
        for i in range(3):
            measured = snapshot[f"hs:{i}"]
            predicted = model.per_party(3)
            # The engine transport books no wire bytes; counts only here
            # (bytes are exercised end-to-end in test_generator).
            assert measured.modexp == predicted["modexp"]
            assert measured.messages_sent == predicted["messages_sent"]
            assert measured.messages_received == \
                predicted["messages_received"]


class TestValidation:
    def _clean_books(self, model, m):
        return {name: value for name, value in model.per_party(m).items()}

    def test_clean_books_pass(self):
        model = HandshakeModel("1")
        assert model.validate_party(4, self._clean_books(model, 4)) == []

    def test_one_modexp_of_drift_fails(self):
        model = HandshakeModel("1")
        books = self._clean_books(model, 4)
        books["modexp"] += 1
        mismatches = model.validate_party(4, books, "p")
        assert len(mismatches) == 1 and "modexp" in mismatches[0]

    def test_bytes_have_tolerance_counts_do_not(self):
        model = HandshakeModel("1")
        books = self._clean_books(model, 4)
        books["bytes_sent"] = int(books["bytes_sent"]
                                  * (1 + BYTES_TOLERANCE / 2))
        assert model.validate_party(4, books) == []
        books["bytes_sent"] = int(books["bytes_sent"] * 1.2)
        assert any("bytes_sent" in line
                   for line in model.validate_party(4, books))

    def test_validate_room_reports_missing_party_books(self):
        model = HandshakeModel("1")
        books = {"hs:0": self._clean_books(model, 2)}
        mismatches = model.validate_room(2, books, "r")
        assert mismatches == ["r: no books for hs:1"]


class TestPythonBackend:
    """The sympy-free fallback must produce identical numbers."""

    def test_fallback_matches_sympy(self, monkeypatch):
        reference = {s: HandshakeModel(s).per_party(6) for s in ("1", "2")}
        expressions = {s: HandshakeModel(s).expressions()
                       for s in ("1", "2")}
        monkeypatch.setattr(model_module, "_sympy", None)
        assert backend() == "python"
        for scheme in ("1", "2"):
            model = HandshakeModel(scheme)
            assert model.per_party(6) == reference[scheme]
            assert model.expressions() == expressions[scheme]

    def test_poly_arithmetic(self):
        m = model_module._Poly.m()
        squared = (m + 2) * (m - 1)        # m**2 + m - 2
        assert squared.eval(5) == 28
        assert str(squared) == "m**2 + m - 2"
        assert str(model_module._Poly.const(0)) == "0"


class TestCapacityReport:
    def test_both_bounds_and_their_minimum(self):
        report = capacity_report(
            scheme="1", mean_m=2.0, shards=2, max_rooms_per_shard=4,
            mean_room_lifetime_s=2.0, measured_modexp=1160,
            measured_busy_s=5.8, cores=1)
        # Admission: 2 shards * 4 rooms / 2s lifetime = 4 rooms/s.
        assert report["admission_bound_rooms_per_s"] == pytest.approx(4.0)
        # Compute: room modexp at m=2 is 2*(24*2+10)=116; s/modexp is
        # 5.8/1160=0.005 -> 1/(116*0.005) ~ 1.724 rooms/s.
        assert report["compute_bound_rooms_per_s"] == pytest.approx(
            1.724, abs=0.001)
        assert report["capacity_rooms_per_s"] == \
            report["compute_bound_rooms_per_s"]

    def test_unlimited_admission_omits_that_bound(self):
        report = capacity_report(
            scheme="1", mean_m=2.0, shards=2, max_rooms_per_shard=None,
            mean_room_lifetime_s=2.0, measured_modexp=100,
            measured_busy_s=1.0)
        assert "admission_bound_rooms_per_s" not in report
        assert report["capacity_rooms_per_s"] == \
            report["compute_bound_rooms_per_s"]

    def test_no_measurements_no_capacity_claim(self):
        report = capacity_report(
            scheme="1", mean_m=2.0, shards=1, max_rooms_per_shard=None,
            mean_room_lifetime_s=None, measured_modexp=0,
            measured_busy_s=0.0)
        assert "capacity_rooms_per_s" not in report
        assert report["modexp_per_party_expr"] == "24*m + 10"
