"""Tests for the repro.load open-loop harness and capacity model."""
