"""End-to-end tests for the HTTP/JSON gateway.

The gateway fronts a real rendezvous server over real sockets; the
client here is a hand-rolled raw HTTP/1.1 requester (stdlib only, same
as the gateway itself) so the wire format is tested, not mocked.
"""

import asyncio
import json

import pytest

from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.gate import GatewayConfig, HttpGateway
from repro.service import RendezvousServer, ServerConfig

TEST_CAP = 60.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


async def _request(port, method, path, body=None):
    """One raw HTTP/1.1 exchange; returns (status_code, body_bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = body if body is not None else b""
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: 127.0.0.1:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n")
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status_line = header_blob.split(b"\r\n", 1)[0].decode()
    code = int(status_line.split(" ")[1])
    return code, body_blob


class _World:
    """One rendezvous server + gateway pair, torn down cleanly."""

    def __init__(self, members, policy, **server_kw):
        self.members = members
        self.policy = policy
        self.server_kw = server_kw

    async def __aenter__(self):
        self.server = await RendezvousServer(
            ServerConfig(port=0, **self.server_kw)).start()
        self.gateway = await HttpGateway(
            GatewayConfig(target_port=self.server.port, deadline=20.0),
            self.members, self.policy).start()
        return self

    async def __aexit__(self, *exc):
        await self.gateway.shutdown()
        await self.server.shutdown(drain=False)


class TestRooms:
    def test_post_room_runs_a_real_handshake(self, scheme1_world):
        members = scheme1_world.lineup("alice", "bob")

        async def scenario():
            async with _World(members, scheme1_policy()) as world:
                code, body = await _request(
                    world.gateway.port, "POST", "/rooms",
                    json.dumps({"room": "over-http", "m": 2}).encode())
                assert code == 202
                assert json.loads(body) == {
                    "room": "over-http", "m": 2, "state": "running"}
                while True:
                    code, body = await _request(
                        world.gateway.port, "GET", "/rooms/over-http")
                    doc = json.loads(body)
                    if doc["state"] != "running":
                        return code, doc

        with metrics.using(metrics.Recorder()) as recorder:
            code, doc = _run(scenario())
        assert code == 200
        assert doc["state"] == "completed"
        assert doc["result"]["successes"] == 2
        assert doc["result"]["e2e_latency_s"] > 0
        extra = recorder.total().extra
        assert extra.get("gate:rooms-spawned") == 1
        assert extra.get("gate:requests", 0) >= 2

    def test_post_room_validates_input(self, scheme1_world):
        members = scheme1_world.lineup("alice", "bob")

        async def scenario():
            async with _World(members, scheme1_policy()) as world:
                results = {}
                results["bad-json"] = await _request(
                    world.gateway.port, "POST", "/rooms", b"{nope")
                results["bad-m"] = await _request(
                    world.gateway.port, "POST", "/rooms",
                    json.dumps({"m": 99}).encode())
                results["get-verb"] = await _request(
                    world.gateway.port, "GET", "/rooms")
                results["unknown"] = await _request(
                    world.gateway.port, "GET", "/rooms/never-spawned")
                results["no-route"] = await _request(
                    world.gateway.port, "GET", "/nope")
                return results

        results = _run(scenario())
        assert results["bad-json"][0] == 400
        assert results["bad-m"][0] == 400
        assert results["get-verb"][0] == 405
        assert results["unknown"][0] == 404
        assert results["no-route"][0] == 404
        # Every error body is structured JSON, not a stack trace.
        for code, body in results.values():
            assert "error" in json.loads(body)


class TestStatusAndMetrics:
    def test_status_proxies_the_target_snapshot(self, scheme1_world):
        members = scheme1_world.lineup("alice", "bob")

        async def scenario():
            async with _World(members, scheme1_policy()) as world:
                return await _request(world.gateway.port, "GET", "/status")

        code, body = _run(scenario())
        assert code == 200
        status = json.loads(body)
        assert status["rooms"] == {"filling": 0, "active": 0,
                                   "closed": 0, "restoring": 0}
        assert "counters" in status

    def test_metrics_is_parseable_prometheus(self, scheme1_world):
        members = scheme1_world.lineup("alice", "bob")

        async def scenario():
            async with _World(members, scheme1_policy()) as world:
                return await _request(world.gateway.port, "GET", "/metrics")

        code, body = _run(scenario())
        assert code == 200
        text = body.decode()
        samples = 0
        for line in text.strip().split("\n"):
            if line.startswith("#"):
                continue
            # Exposition format: `name{labels} value` or `name value`.
            name_part, _, value = line.rpartition(" ")
            assert name_part, line
            float(value)  # must parse
            samples += 1
        assert samples >= 4
        assert 'repro_rooms{state="restoring"} 0' in text
        assert "repro_up 1" in text
