"""Unit tests for the versioned room-checkpoint schema.

The migration protocol's compatibility contract lives here: strict
writers, forward-tolerant readers, and hard refusal of versions this
node does not speak (restoring a half-understood snapshot would corrupt
a live handshake).
"""

import pytest

from repro.errors import ProtocolError
from repro.gate.checkpoint import (
    ACTIVE,
    CHECKPOINT_VERSION,
    FILLING,
    RoomCheckpoint,
)


def _active_checkpoint(**overrides):
    base = dict(
        name="parity-room", token="tok-123", m=3, state=ACTIVE, members=3,
        trace="0123456789abcdef0123456789abcdef",
        done=(2,), pending=((0, "b64payload"), (1, "b64payload2")),
        handshake_remaining_s=41.5, relayed=7, phase_kind="dgka",
        counters={"svc:rooms-opened": 1, "svc:messages-relayed": 7})
    base.update(overrides)
    return RoomCheckpoint(**base)


class TestRoundTrip:
    def test_payload_round_trip_is_lossless(self):
        checkpoint = _active_checkpoint()
        restored = RoomCheckpoint.from_payload(checkpoint.to_payload())
        assert restored == checkpoint

    def test_filling_round_trip(self):
        checkpoint = RoomCheckpoint(
            name="half", token="tok-9", m=5, state=FILLING, members=2,
            fill_remaining_s=12.25)
        restored = RoomCheckpoint.from_payload(checkpoint.to_payload())
        assert restored == checkpoint
        assert restored.pending == ()
        assert restored.handshake_remaining_s is None

    def test_unknown_keys_are_ignored(self):
        """Forward tolerance: a same-version payload with extra fields
        (a newer writer being chatty) restores fine."""
        payload = _active_checkpoint().to_payload()
        payload["future_field"] = {"anything": True}
        assert RoomCheckpoint.from_payload(payload) == _active_checkpoint()


class TestRefusals:
    @pytest.mark.parametrize("version", [0, CHECKPOINT_VERSION + 1, None, "1"])
    def test_unknown_versions_are_refused(self, version):
        payload = _active_checkpoint().to_payload()
        payload["version"] = version
        with pytest.raises(ProtocolError, match="version"):
            RoomCheckpoint.from_payload(payload)

    def test_non_mapping_payload_is_refused(self):
        with pytest.raises(ProtocolError):
            RoomCheckpoint.from_payload(["not", "a", "dict"])

    @pytest.mark.parametrize("missing", ["name", "token", "m", "state",
                                         "members"])
    def test_missing_required_field_is_refused(self, missing):
        payload = _active_checkpoint().to_payload()
        del payload[missing]
        with pytest.raises(ProtocolError, match=missing):
            RoomCheckpoint.from_payload(payload)

    def test_active_room_must_be_full(self):
        payload = _active_checkpoint().to_payload()
        payload["members"] = 2
        with pytest.raises(ProtocolError, match="full"):
            RoomCheckpoint.from_payload(payload)

    def test_done_index_outside_roster_is_refused(self):
        payload = _active_checkpoint().to_payload()
        payload["done"] = [3]
        with pytest.raises(ProtocolError, match="roster"):
            RoomCheckpoint.from_payload(payload)

    def test_pending_sender_outside_roster_is_refused(self):
        payload = _active_checkpoint().to_payload()
        payload["pending"] = [[7, "blob"]]
        with pytest.raises(ProtocolError, match="sender"):
            RoomCheckpoint.from_payload(payload)

    def test_bad_state_is_refused(self):
        payload = _active_checkpoint().to_payload()
        payload["state"] = "closed"
        with pytest.raises(ProtocolError, match="filling/active"):
            RoomCheckpoint.from_payload(payload)
