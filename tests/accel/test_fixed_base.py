"""Property tests for fixed-base windowed precomputation.

The contract is exact: for every (base, exponent, modulus, window) a
table returns the same residue as builtin ``pow`` — including exponent 0,
base 1, modulus 1 and 2, and exponents far larger than the modulus (the
lazy-row-growth path).  The LRU cache and the mexp hook get behavioural
tests on top.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import metrics
from repro.accel import fixed_base, state
from repro.accel.fixed_base import FixedBaseTable, TableCache
from repro.crypto.modmath import mexp

MODULI = st.sampled_from(
    [1, 2, 3, 4, 101, 7919, (1 << 61) - 1, (1 << 127) - 1, 1 << 128])


@pytest.fixture(autouse=True)
def _clean_accel_state():
    """Each test starts disabled with empty tables/registry and leaves
    the module-global state the same way."""
    state.configure(enabled=False, window=5, cache_size=64)
    fixed_base.clear()
    fixed_base.configure_cache(64)
    yield
    state.configure(enabled=False, window=5, cache_size=64)
    fixed_base.clear()
    fixed_base.configure_cache(64)


class TestFixedBaseTable:
    @given(base=st.integers(min_value=0, max_value=1 << 80),
           exponent=st.integers(min_value=0, max_value=1 << 300),
           modulus=MODULI,
           window=st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_matches_builtin_pow(self, base, exponent, modulus, window):
        table = FixedBaseTable(base, modulus, window=window)
        assert table.pow(exponent) == pow(base, exponent, modulus)

    def test_exponent_zero_and_base_one(self):
        assert FixedBaseTable(7, 101).pow(0) == 1
        assert FixedBaseTable(1, 101).pow(123456) == 1
        assert FixedBaseTable(0, 101).pow(5) == 0

    def test_modulus_one_is_all_zero(self):
        assert FixedBaseTable(9, 1).pow(7) == 0

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            FixedBaseTable(2, 101).pow(-1)

    def test_bad_modulus_rejected(self):
        with pytest.raises(ValueError):
            FixedBaseTable(2, 0)

    def test_rows_grow_lazily_with_exponent_size(self):
        table = FixedBaseTable(3, 7919, window=4)
        assert len(table.rows) == 1
        table.pow(1 << 64)
        assert len(table.rows) >= 64 // 4
        built = table.mults
        table.pow(1 << 32)        # smaller exponent: no further growth
        assert table.mults == built


class TestTableCache:
    def test_hit_miss_accounting(self):
        cache = TableCache(4)
        _, hit = cache.lookup((3, 101))
        assert hit is False
        _, hit = cache.lookup((3, 101))
        assert hit is True
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_bounded(self):
        cache = TableCache(2)
        for base in (2, 3, 4, 5):
            cache.lookup((base, 101))
        stats = cache.stats()
        assert stats["tables"] == 2
        assert stats["evictions"] == 2
        # Oldest entries were evicted; rebuilding them is a miss.
        _, hit = cache.lookup((2, 101))
        assert hit is False

    def test_resize_shrinks_immediately(self):
        cache = TableCache(8)
        for base in range(2, 8):
            cache.lookup((base, 101))
        cache.resize(3)
        assert cache.stats()["tables"] == 3


class TestLookupHook:
    def test_disabled_returns_none(self):
        fixed_base.register_base(3, 101)
        assert fixed_base.lookup_pow(3, 10, 101) is None

    def test_unregistered_base_returns_none(self):
        state.configure(enabled=True)
        assert fixed_base.lookup_pow(12345, 10, 7919) is None

    def test_registered_base_accelerates_with_counters(self):
        state.configure(enabled=True)
        fixed_base.register_base(3, 7919)
        rec = metrics.Recorder()
        with metrics.using(rec):
            first = fixed_base.lookup_pow(3, 1000, 7919)
            second = fixed_base.lookup_pow(3, 2000, 7919)
        assert first == pow(3, 1000, 7919)
        assert second == pow(3, 2000, 7919)
        extras = rec.total().extra
        assert extras.get("accel:fb-miss") == 1
        assert extras.get("accel:fb-hit") == 1

    def test_negative_exponents_bypass_tables(self):
        state.configure(enabled=True)
        fixed_base.register_base(3, 101)
        assert fixed_base.lookup_pow(3, -2, 101) is None

    def test_mexp_results_identical_enabled_vs_disabled(self):
        fixed_base.register_base(5, 7919)
        state.configure(enabled=False)
        baseline = [mexp(5, e, 7919) for e in (0, 1, 17, 7919, 1 << 200)]
        state.configure(enabled=True)
        accelerated = [mexp(5, e, 7919) for e in (0, 1, 17, 7919, 1 << 200)]
        assert baseline == accelerated

    def test_mexp_charges_modexp_on_table_hits(self):
        """The E1 invariant: a precomputed answer still counts as the
        modexp it replaced."""
        state.configure(enabled=True)
        fixed_base.register_base(5, 7919)
        rec = metrics.Recorder()
        with metrics.using(rec):
            mexp(5, 100, 7919)
            mexp(5, 200, 7919)
        assert rec.total().modexp == 2


class _LockProbeRow(list):
    """A digit row that records whether the table lock was held at each
    access during evaluation."""

    def __init__(self, row, lock, observations):
        super().__init__(row)
        self._lock = lock
        self._observations = observations

    def __getitem__(self, index):
        self._observations.append(self._lock.locked())
        return super().__getitem__(index)


class TestEvaluationConcurrency:
    def test_evaluation_runs_outside_the_table_lock(self):
        """Regression: ``pow`` used to hold ``_lock`` for the whole
        windowed evaluation, serializing every thread sharing a table.
        Now the lock guards only row growth — every row access during
        evaluation must see it released."""
        table = FixedBaseTable(3, 7919, window=4)
        table.pow(1 << 200)          # grow all needed rows up front
        observations = []
        table.rows = [_LockProbeRow(row, table._lock, observations)
                      for row in table.rows]
        assert table.pow((1 << 200) - 5) == pow(3, (1 << 200) - 5, 7919)
        assert observations                  # the probe actually fired
        assert not any(observations)         # lock never held mid-evaluation

    def test_concurrent_pow_with_growth_is_correct(self):
        """Rows are append-only, so threads may evaluate while another
        thread grows the table; results must stay exact throughout."""
        modulus = (1 << 61) - 1
        table = FixedBaseTable(3, modulus, window=3)
        exponents = [(1 << (40 * i)) + i for i in range(1, 9)]
        expected = {e: pow(3, e, modulus) for e in exponents}
        failures = []

        def worker(exponent):
            for _ in range(5):
                if table.pow(exponent) != expected[exponent]:
                    failures.append(exponent)

        threads = [threading.Thread(target=worker, args=(e,))
                   for e in exponents]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not failures


class TestSingleFlight:
    def test_concurrent_lookups_build_exactly_once(self, monkeypatch):
        """Regression: a miss used to be invisible to other threads until
        the finished table landed in the cache, so a thundering herd all
        paid the full precompute for the same key."""
        real_table = fixed_base.FixedBaseTable
        builds = []
        started = threading.Event()
        release = threading.Event()

        class SlowTable(real_table):
            def __init__(self, base, modulus, window=None):
                builds.append(threading.get_ident())
                started.set()
                release.wait(timeout=10)
                super().__init__(base, modulus, window)

        monkeypatch.setattr(fixed_base, "FixedBaseTable", SlowTable)
        cache = TableCache(4)
        results = []

        def lookup():
            results.append(cache.lookup((3, 7919)))

        threads = [threading.Thread(target=lookup) for _ in range(6)]
        for t in threads:
            t.start()
        assert started.wait(timeout=10)
        time.sleep(0.2)              # let the other threads pile up
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert len(builds) == 1
        assert len(results) == 6
        tables = {id(table) for table, _ in results}
        assert len(tables) == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 5


class TestRegistryLifecycle:
    def test_registry_eviction_drops_cached_table(self):
        """Regression: a registration pushed out of the bounded registry
        used to leave its table pinned in the cache (unreachable via
        ``lookup_pow`` but still occupying LRU capacity)."""
        state.configure(enabled=True, cache_size=1)
        fixed_base.configure_cache(8)    # roomy cache; registry cap is 4
        fixed_base.register_base(3, 7919)
        assert fixed_base.lookup_pow(3, 100, 7919) == pow(3, 100, 7919)
        assert fixed_base.stats()["tables"] == 1
        for base in (5, 6, 7, 11):       # push (3, 7919) out
            fixed_base.register_base(base, 7919)
        assert not fixed_base.is_registered(3, 7919)
        assert fixed_base.stats()["tables"] == 0

    def test_unregister_drops_registration_and_table(self):
        state.configure(enabled=True)
        fixed_base.register_base(3, 7919)
        fixed_base.lookup_pow(3, 100, 7919)
        fixed_base.unregister_base(3, 7919)
        assert not fixed_base.is_registered(3, 7919)
        assert fixed_base.stats()["tables"] == 0
        assert fixed_base.lookup_pow(3, 100, 7919) is None

    def test_unregister_unknown_base_is_a_noop(self):
        fixed_base.unregister_base(999, 7919)
        fixed_base.unregister_base(2, 1)     # degenerate modulus
