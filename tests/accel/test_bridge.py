"""The asyncio bridge: off-loop execution with correct metric routing.

``run_in_executor`` does not propagate context variables, so the bridge
must re-pin the caller's recorder (and optionally a scope) inside the
worker thread — these tests fail loudly if counts start vanishing into
thread-private books.
"""

import asyncio
import threading

import pytest

from repro import metrics
from repro.accel import bridge

TEST_CAP = 30.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


@pytest.fixture(autouse=True)
def _fresh_bridge():
    bridge.shutdown()
    yield
    bridge.shutdown()


class TestBridgeRun:
    def test_returns_result_off_the_loop_thread(self):
        loop_thread = threading.current_thread()

        def work(x, y):
            assert threading.current_thread() is not loop_thread
            return x * y

        assert _run(bridge.run(work, 6, 7)) == 42

    def test_counts_land_in_callers_recorder_and_scope(self):
        def work():
            metrics.count_modexp(3)
            metrics.bump("bridge-test-extra")

        rec = metrics.Recorder()

        async def main():
            with metrics.using(rec):
                await bridge.run(work, scope="hs:9")

        _run(main())
        snap = rec.snapshot()
        assert snap["hs:9"].modexp == 3
        assert snap["hs:9"].extra.get("bridge-test-extra") == 1
        assert rec.total().modexp == 3

    def test_bridge_bookkeeping_counters(self):
        rec = metrics.Recorder()

        async def main():
            with metrics.using(rec):
                await bridge.run(lambda: None)
                await bridge.run(lambda: None)

        _run(main())
        assert rec.total().extra.get("accel:bridge-tasks") == 2
        hist = rec.histograms().get("accel:bridge-latency")
        assert hist is not None and hist.summary()["count"] == 2

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("bridge-boom")

        async def main():
            await bridge.run(boom)

        with pytest.raises(RuntimeError, match="bridge-boom"):
            _run(main())

    def test_concurrent_tasks_share_the_executor(self):
        async def main():
            return await asyncio.gather(
                *(bridge.run(lambda i=i: i * i) for i in range(8)))

        assert _run(main()) == [i * i for i in range(8)]
        assert bridge.stats()["running"] is True
        assert bridge.stats()["pending"] == 0
