"""Determinism and parity of the process-pool handshake path.

The acceptance bar for :mod:`repro.accel.pool` is *observational
equivalence*: a seeded handshake run with Phase III fanned out over
worker processes must produce byte-identical transcripts and session
keys AND identical operation counters (modexp, messages, hashes — per
party and per phase) as the same seeds run inline.  ``accel:*`` extras
are the only permitted difference.
"""

import random

import pytest

from repro import accel, metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.errors import ParameterError

M = 5


def _seeded_rngs(seed):
    return [random.Random(seed + i) for i in range(M)]


def _run(world, pool, seed=41000):
    members = _lineup(world)
    rec = metrics.Recorder()
    with metrics.using(rec):
        outcomes = run_handshake(members, scheme1_policy(),
                                 rngs=_seeded_rngs(seed), pool=pool)
    return outcomes, rec.snapshot()


def _lineup(world):
    names = sorted(world.members)[:M]
    return world.lineup(*names)


def _comparable(snapshot):
    """Counter books minus wall time and the accel:* extras layered on
    top by the pool itself."""
    books = {}
    for scope, counters in snapshot.items():
        fields = {k: v for k, v in counters.as_dict().items()
                  if k != "wall_time" and not k.startswith("accel:")}
        books[scope] = fields
    return books


class TestPoolParity:
    def test_pooled_run_is_byte_identical_to_inline(self, service_world):
        inline_outcomes, inline_snap = _run(service_world, pool=None)
        assert all(o.success for o in inline_outcomes)

        accel.enable()
        try:
            pool = accel.get_pool(workers=2)
            pooled_outcomes, pooled_snap = _run(service_world, pool=pool)
        finally:
            accel.shutdown_pool()
            accel.disable()

        # Byte-identical protocol outputs.
        assert [o.session_key for o in inline_outcomes] == \
               [o.session_key for o in pooled_outcomes]
        assert [o.transcript.entries for o in inline_outcomes] == \
               [o.transcript.entries for o in pooled_outcomes]
        assert [o.confirmed_peers for o in inline_outcomes] == \
               [o.confirmed_peers for o in pooled_outcomes]

        # Identical books, scope by scope.
        assert _comparable(inline_snap) == _comparable(pooled_snap)

        # The pool really ran: a payload job per party, plus the scan
        # shipped as one chunk per worker (batching is on by default).
        extras = pooled_snap["total"].extra
        assert extras.get("accel:pool-tasks", 0) == M + min(2, M)
        assert extras.get("accel:batch-chunks", 0) == min(2, M)

    def test_same_seeds_reproduce_across_pooled_runs(self, service_world):
        accel.enable()
        try:
            pool = accel.get_pool(workers=2)
            first, _ = _run(service_world, pool=pool)
            second, _ = _run(service_world, pool=pool)
        finally:
            accel.shutdown_pool()
            accel.disable()
        assert [o.session_key for o in first] == \
               [o.session_key for o in second]
        assert [o.transcript.entries for o in first] == \
               [o.transcript.entries for o in second]


class TestEngineValidation:
    def test_pool_without_rngs_is_rejected(self, service_world):
        accel.enable()
        try:
            pool = accel.get_pool(workers=2)
            with pytest.raises(ParameterError):
                run_handshake(_lineup(service_world), scheme1_policy(),
                              random.Random(1), pool=pool)
        finally:
            accel.shutdown_pool()
            accel.disable()

    def test_rngs_must_match_party_count(self, service_world):
        with pytest.raises(ParameterError):
            run_handshake(_lineup(service_world), scheme1_policy(),
                          rngs=[random.Random(1)] * (M - 1))

    def test_per_party_rngs_without_pool_run_inline(self, service_world):
        outcomes = run_handshake(_lineup(service_world), scheme1_policy(),
                                 rngs=_seeded_rngs(42))
        assert all(o.success for o in outcomes)
