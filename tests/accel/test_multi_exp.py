"""Property tests for Shamir/Straus simultaneous multi-exponentiation.

``multi_exp`` must be bit-identical to the naive per-term product for
every input — enabled or disabled — and must charge exactly one modexp
per term (the E1 invariant: each term replaces one ``mexp`` call).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import metrics
from repro.accel import state
from repro.accel.multi_exp import GROUP_SIZE, multi_exp
from repro.crypto.modmath import inverse

PRIME_MODULI = st.sampled_from([2, 3, 101, 7919, (1 << 61) - 1])


def _naive(pairs, modulus):
    result = 1 % modulus
    for base, exponent in pairs:
        if exponent < 0:
            base = inverse(base, modulus)
            exponent = -exponent
        result = (result * pow(base, exponent, modulus)) % modulus
    return result


@pytest.fixture(autouse=True)
def _clean_accel_state():
    state.configure(enabled=False, window=5, cache_size=64)
    yield
    state.configure(enabled=False, window=5, cache_size=64)


@pytest.mark.parametrize("enabled", [False, True])
class TestCorrectness:
    @given(pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1 << 64),
                  st.integers(min_value=0, max_value=1 << 128)),
        min_size=0, max_size=2 * GROUP_SIZE + 1),
        modulus=st.sampled_from([1, 2, 3, 101, 7919, (1 << 61) - 1, 1 << 96]))
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_product(self, enabled, pairs, modulus):
        state.configure(enabled=enabled)
        assert multi_exp(pairs, modulus) == _naive(pairs, modulus)

    @given(pairs=st.lists(
        st.tuples(st.integers(min_value=1, max_value=1 << 64),
                  st.integers(min_value=-(1 << 96), max_value=1 << 96)),
        min_size=1, max_size=GROUP_SIZE + 1),
        modulus=PRIME_MODULI)
    @settings(max_examples=100, deadline=None)
    def test_negative_exponents_via_inverse(self, enabled, pairs, modulus):
        # Prime modulus keeps every nonzero base invertible.
        pairs = [(b, e) for b, e in pairs if b % modulus != 0]
        state.configure(enabled=enabled)
        assert multi_exp(pairs, modulus) == _naive(pairs, modulus)

    def test_edge_inputs(self, enabled):
        state.configure(enabled=enabled)
        assert multi_exp([], 101) == 1          # empty product
        assert multi_exp([], 1) == 0            # empty product mod 1
        assert multi_exp([(1, 0)], 101) == 1    # base 1, exponent 0
        assert multi_exp([(7, 0), (9, 0)], 101) == 1
        assert multi_exp([(5, 3), (4, 2)], 1) == 0   # modulus boundary

    def test_bad_modulus_rejected(self, enabled):
        state.configure(enabled=enabled)
        with pytest.raises(ValueError):
            multi_exp([(2, 3)], 0)


class TestAccounting:
    @pytest.mark.parametrize("enabled", [False, True])
    def test_charges_one_modexp_per_term(self, enabled):
        state.configure(enabled=enabled)
        rec = metrics.Recorder()
        with metrics.using(rec):
            multi_exp([(2, 10), (3, 20), (5, 30)], 7919)
        assert rec.total().modexp == 3

    @pytest.mark.parametrize("enabled", [False, True])
    def test_inversion_count_independent_of_switch(self, enabled):
        state.configure(enabled=enabled)
        rec = metrics.Recorder()
        with metrics.using(rec):
            multi_exp([(2, -10), (3, 20), (5, -30)], 7919)
        assert rec.total().extra.get("inversions") == 2

    def test_empty_product_charges_nothing(self):
        rec = metrics.Recorder()
        with metrics.using(rec):
            multi_exp([], 101)
        assert rec.total().modexp == 0
