"""Room-scale batch verification: acceptance-set and counter parity.

The contract of :mod:`repro.accel.batch` is exact: ``batch_verify``
accepts precisely the signatures the sequential ``verify`` accepts —
for valid rooms, forged signature fields, stale accumulator epochs, and
tampered messages — and the guarded counter books are identical, with
cache reuse visible only through the new ``accel:batch-*`` extras.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel, metrics
from repro.accel import batch, fixed_base, state
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.errors import ParameterError
from repro.gsig import acjt, kty

ACJT_ACTIONS = ("valid", "forge-t1", "forge-challenge", "forge-s1",
                "wrong-epoch", "tamper-message")
KTY_ACTIONS = ("valid", "forge-t1", "forge-challenge", "forge-se",
               "tamper-message")


@pytest.fixture(autouse=True)
def _clean_accel_state():
    state.configure(enabled=False, window=5, cache_size=64, batch=True)
    fixed_base.clear()
    fixed_base.configure_cache(64)
    yield
    state.configure(enabled=False, window=5, cache_size=64, batch=True)
    fixed_base.clear()
    fixed_base.configure_cache(64)


@pytest.fixture(scope="module")
def acjt_room(acjt_world):
    """Three pre-signed (message, signature) pairs plus the verifier view
    (signing dominates runtime; tampering per example is cheap)."""
    rng = random.Random(7321)
    pk = acjt_world.manager.public_key
    view = acjt_world.manager.member_view()
    items = []
    for name in ("alice", "bob", "carol"):
        message = f"room:{name}".encode()
        items.append((message,
                      acjt_world.credentials[name].sign(message, rng)))
    return pk, view, items


@pytest.fixture(scope="module")
def kty_room(kty_world):
    rng = random.Random(7322)
    pk = kty_world.manager.public_key
    view = kty_world.manager.member_view()
    items = []
    for name in ("alice", "bob", "carol"):
        message = f"room:{name}".encode()
        items.append((message,
                      kty_world.credentials[name].sign(message, rng)))
    return pk, view, items


def _tamper_acjt(pk, message, signature, action):
    if action == "forge-t1":
        return message, replace(signature, t1=(signature.t1 * 2) % pk.n)
    if action == "forge-challenge":
        return message, replace(signature, challenge=signature.challenge ^ 1)
    if action == "forge-s1":
        return message, replace(signature, s1=signature.s1 + 1)
    if action == "wrong-epoch":
        return message, replace(signature, acc_epoch=signature.acc_epoch + 1)
    if action == "tamper-message":
        return message + b"!", signature
    return message, signature


def _tamper_kty(pk, message, signature, action):
    if action == "forge-t1":
        return message, replace(signature, t1=(signature.t1 * 2) % pk.n)
    if action == "forge-challenge":
        return message, replace(signature, challenge=signature.challenge ^ 1)
    if action == "forge-se":
        return message, replace(signature, s_e=signature.s_e + 1)
    if action == "tamper-message":
        return message + b"!", signature
    return message, signature


def _books(recorder):
    """Guarded totals: everything except wall time and accel:* extras."""
    return {k: v for k, v in recorder.total().as_dict().items()
            if k != "wall_time" and not k.startswith("accel:")}


class TestAcceptanceSetParity:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_acjt_batch_accepts_exactly_the_sequential_set(
            self, acjt_room, data):
        pk, view, room = acjt_room
        actions = [data.draw(st.sampled_from(ACJT_ACTIONS), label=f"a{i}")
                   for i in range(len(room))]
        items = [_tamper_acjt(pk, message, signature, action)
                 for (message, signature), action in zip(room, actions)]
        if data.draw(st.booleans(), label="duplicate"):
            items.append(items[0])       # exercise the dedup path
            actions.append(actions[0])
        state.configure(enabled=False)
        sequential = batch.batch_verify(pk, items, view)
        state.configure(enabled=True, batch=True)
        try:
            batched = batch.batch_verify(pk, items, view)
        finally:
            state.configure(enabled=False)
        assert batched == sequential
        assert sequential == [action == "valid" for action in actions]

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_kty_batch_accepts_exactly_the_sequential_set(
            self, kty_room, data):
        pk, view, room = kty_room
        actions = [data.draw(st.sampled_from(KTY_ACTIONS), label=f"a{i}")
                   for i in range(len(room))]
        items = [_tamper_kty(pk, message, signature, action)
                 for (message, signature), action in zip(room, actions)]
        state.configure(enabled=False)
        sequential = batch.batch_verify(pk, items, view)
        state.configure(enabled=True, batch=True)
        try:
            batched = batch.batch_verify(pk, items, view)
        finally:
            state.configure(enabled=False)
        assert batched == sequential
        assert sequential == [action == "valid" for action in actions]

    def test_unknown_key_type_rejected(self):
        with pytest.raises(ParameterError):
            batch.batch_verify(object(), [], None)

    def test_acjt_shield_rejected(self, acjt_room):
        pk, view, room = acjt_room
        with pytest.raises(ParameterError):
            batch.batch_verify(pk, room, view, expected_shield=1)


class TestCounterParity:
    def test_batched_books_equal_sequential_books(self, acjt_room):
        pk, view, room = acjt_room
        items = list(room) + [room[0], room[1]]     # two duplicates
        rec_seq = metrics.Recorder()
        state.configure(enabled=False)
        with metrics.using(rec_seq):
            sequential = batch.batch_verify(pk, items, view)
        rec_bat = metrics.Recorder()
        state.configure(enabled=True, batch=True)
        try:
            with metrics.using(rec_bat):
                batched = batch.batch_verify(pk, items, view)
        finally:
            state.configure(enabled=False)
        assert batched == sequential
        assert _books(rec_bat) == _books(rec_seq)
        extras = rec_bat.total().extra
        assert extras.get("accel:batch-scan-miss") == len(room)
        assert extras.get("accel:batch-scan-hit") == 2
        assert extras.get("accel:batch-fallback", 0) == 0
        assert extras.get("accel:batch-divergence", 0) == 0

    def test_forgery_falls_back_without_divergence(self, acjt_room):
        pk, view, room = acjt_room
        message, signature = room[0]
        forged = replace(signature, challenge=signature.challenge ^ 1)
        rec = metrics.Recorder()
        state.configure(enabled=True, batch=True)
        try:
            with metrics.using(rec):
                verdicts = batch.batch_verify(
                    pk, [(message, forged)], view)
        finally:
            state.configure(enabled=False)
        assert verdicts == [False]
        extras = rec.total().extra
        assert extras.get("accel:batch-fallback") == 1
        assert extras.get("accel:batch-divergence", 0) == 0

    def test_batch_switch_off_disables_caching(self, acjt_room):
        pk, view, room = acjt_room
        rec = metrics.Recorder()
        state.configure(enabled=True, batch=False)
        try:
            with metrics.using(rec):
                batch.batch_verify(pk, list(room) + [room[0]], view)
        finally:
            state.configure(enabled=False)
        extras = rec.total().extra
        assert "accel:batch-scan-hit" not in extras
        assert "accel:batch-scan-miss" not in extras


class TestVerifyRoom:
    def test_room_scan_matches_per_member_verdicts(self, scheme1_world):
        members = scheme1_world.lineup("alice", "bob", "carol")
        rng = random.Random(990)
        items = []
        for i, member in enumerate(members):
            message = f"sid:{i}".encode()
            items.append((message, member.gsig_sign(message, rng)))
        # Forge one blob: flip a byte so its signature fails to parse or
        # verify — every honest scanner must reject it identically.
        message, blob = items[1]
        items[1] = (message, blob[:-1] + bytes([blob[-1] ^ 1]))

        rec_seq = metrics.Recorder()
        state.configure(enabled=False)
        with metrics.using(rec_seq):
            sequential = batch.verify_room(members, items)
        rec_bat = metrics.Recorder()
        state.configure(enabled=True, batch=True)
        try:
            with metrics.using(rec_bat):
                batched = batch.verify_room(members, items,
                                            cache=batch.ScanCache())
        finally:
            state.configure(enabled=False)
        assert batched == sequential
        assert [row[1] for i, row in enumerate(sequential) if i != 1] == \
               [False, False]
        assert _books(rec_bat) == _books(rec_seq)
        # m members x (m-1) checks, only m distinct (context, blob) pairs.
        extras = rec_bat.total().extra
        assert extras.get("accel:batch-scan-miss") == len(items)
        assert extras.get("accel:batch-scan-hit") == \
            len(members) * (len(members) - 1) - len(items)


class TestHandshakeIntegration:
    M = 4

    def _run(self, world):
        names = sorted(world.members)[:self.M]
        members = world.lineup(*names)
        rngs = [random.Random(61000 + i) for i in range(self.M)]
        rec = metrics.Recorder()
        with metrics.using(rec):
            outcomes = run_handshake(members, scheme1_policy(), rngs=rngs)
        return outcomes, rec

    def _comparable(self, rec):
        books = {}
        for scope, counters in rec.snapshot().items():
            books[scope] = {k: v for k, v in counters.as_dict().items()
                            if k != "wall_time"
                            and not k.startswith("accel:")}
        return books

    def test_inline_batched_handshake_is_byte_identical(self, service_world):
        state.configure(enabled=False)
        plain_outcomes, plain_rec = self._run(service_world)
        assert all(o.success for o in plain_outcomes)
        state.configure(enabled=True, batch=True)
        try:
            batched_outcomes, batched_rec = self._run(service_world)
        finally:
            state.configure(enabled=False)
        assert [o.session_key for o in plain_outcomes] == \
               [o.session_key for o in batched_outcomes]
        assert [o.transcript.entries for o in plain_outcomes] == \
               [o.transcript.entries for o in batched_outcomes]
        assert [o.confirmed_peers for o in plain_outcomes] == \
               [o.confirmed_peers for o in batched_outcomes]
        assert self._comparable(plain_rec) == self._comparable(batched_rec)
        # The room really was deduplicated: every party past the first
        # reused the shared decrypt+verify results.
        extras = batched_rec.total().extra
        assert extras.get("accel:batch-scan-hit", 0) > 0

    def test_pooled_unbatched_scan_still_matches_inline(self, service_world):
        """The legacy one-task-per-party pool scan (batch off) remains a
        supported configuration and stays byte-identical."""
        state.configure(enabled=False)
        inline_outcomes, inline_rec = self._run(service_world)
        accel.configure(enabled=True, batch=False)
        try:
            pool = accel.get_pool(workers=2)
            names = sorted(service_world.members)[:self.M]
            members = service_world.lineup(*names)
            rngs = [random.Random(61000 + i) for i in range(self.M)]
            rec = metrics.Recorder()
            with metrics.using(rec):
                pooled_outcomes = run_handshake(
                    members, scheme1_policy(), rngs=rngs, pool=pool)
        finally:
            accel.shutdown_pool()
            accel.configure(enabled=False, batch=True)
        assert [o.session_key for o in inline_outcomes] == \
               [o.session_key for o in pooled_outcomes]
        assert self._comparable(inline_rec) == self._comparable(rec)
        extras = rec.total().extra
        assert extras.get("accel:pool-tasks", 0) == 2 * self.M
        assert "accel:batch-chunks" not in extras
