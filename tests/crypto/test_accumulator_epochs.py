"""Epoch-batch operations of the CL accumulator: delete_batch,
issue_witness, and the coalesced update_witness_epoch.

The headline property: a member that replays the epoch delta log —
whether one coalesced update per epoch or one coalesced update for the
whole window — ends with exactly the witness the manager would issue
fresh from the trapdoor (unique in QR(n)), for random interleavings of
join and revocation epochs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import metrics
from repro.crypto.accumulator import (
    Accumulator,
    update_witness_after_delete,
    update_witness_epoch,
    verify_witness,
)
from repro.crypto.params import acjt_profile
from repro.crypto.primes import random_prime_in_interval
from repro.crypto.rsa import RsaGroup
from repro.errors import ParameterError, RevocationError

LENGTHS = acjt_profile("tiny")


@pytest.fixture(scope="module")
def group():
    return RsaGroup.from_precomputed(256)


def _prime(rng, taken=()):
    while True:
        e = random_prime_in_interval(LENGTHS.e_low, LENGTHS.e_high, rng)
        if e not in taken:
            return e


class TestDeleteBatch:
    def test_matches_sequential_deletes(self, group, rng):
        primes = []
        acc_seq = Accumulator(group, random.Random(7))
        acc_bat = Accumulator(group, random.Random(7))
        assert acc_seq.value == acc_bat.value
        for _ in range(4):
            e = _prime(rng, primes)
            primes.append(e)
            acc_seq.add(e)
            acc_bat.add(e)
        doomed = primes[:3]
        for e in doomed:
            acc_seq.delete(e)
        acc_bat.delete_batch(doomed)
        assert acc_bat.value == acc_seq.value
        assert len(acc_bat) == len(acc_seq) == 1

    def test_single_epoch_bump(self, group, rng):
        acc = Accumulator(group, rng)
        primes = []
        for _ in range(3):
            e = _prime(rng, primes)
            primes.append(e)
            acc.add(e)
        before = acc.epoch
        acc.delete_batch(primes[:2])
        assert acc.epoch == before + 1

    def test_empty_batch_rejected(self, group, rng):
        acc = Accumulator(group, rng)
        with pytest.raises(RevocationError):
            acc.delete_batch([])

    def test_duplicate_in_batch_rejected(self, group, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        acc.add(e)
        with pytest.raises(RevocationError):
            acc.delete_batch([e, e])

    def test_non_member_in_batch_rejected(self, group, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        acc.add(e)
        with pytest.raises(RevocationError):
            acc.delete_batch([e, _prime(rng, (e,))])
        # Nothing was removed: the batch is all-or-nothing.
        assert acc.contains(e)


class TestIssueWitness:
    def test_fresh_witness_verifies(self, group, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        acc.add(e)
        acc.add(_prime(rng, (e,)))
        assert acc.verify_witness(acc.issue_witness(e), e)

    def test_unknown_prime_rejected(self, group, rng):
        acc = Accumulator(group, rng)
        with pytest.raises(RevocationError):
            acc.issue_witness(_prime(rng))


class TestCoalescedUpdate:
    def test_adds_only(self, group, rng):
        acc = Accumulator(group, rng)
        own = _prime(rng)
        w = acc.add(own)
        added = []
        for _ in range(3):
            e = _prime(rng, [own] + added)
            added.append(e)
            acc.add(e)
        w = update_witness_epoch(w, own, added, (), acc.value, group.n)
        assert acc.verify_witness(w, own)

    def test_deletes_only(self, group, rng):
        acc = Accumulator(group, rng)
        own = _prime(rng)
        others = []
        for _ in range(3):
            e = _prime(rng, [own] + others)
            others.append(e)
            acc.add(e)
        w = acc.add(own)
        acc.delete_batch(others)
        w = update_witness_epoch(w, own, (), others, acc.value, group.n)
        assert acc.verify_witness(w, own)

    def test_own_prime_deleted_raises(self, group, rng):
        own = _prime(rng)
        with pytest.raises(ParameterError):
            update_witness_epoch(3, own, (), (own,), 5, group.n)

    def test_cost_at_most_three_modexps(self, group, rng):
        """However much churn the window holds, the coalesced update pays
        <= 3 counted modexps (1 for the adds, 2 for the Bezout pair)."""
        acc = Accumulator(group, rng)
        own = _prime(rng)
        w = acc.add(own)
        taken = [own]
        added, deleted = [], []
        for _ in range(6):
            e = _prime(rng, taken)
            taken.append(e)
            added.append(e)
            acc.add(e)
        doomed = added[:4]
        acc.delete_batch(doomed)
        deleted.extend(doomed)
        survivors = [e for e in added if e not in doomed]
        with metrics.detached() as recorder:
            w = update_witness_epoch(
                w, own, survivors + doomed, deleted, acc.value, group.n
            )
        assert acc.verify_witness(w, own)
        assert recorder.total().modexp <= 3

    def test_matches_per_delete_replay(self, group, rng):
        acc = Accumulator(group, rng)
        own = _prime(rng)
        w0 = acc.add(own)
        others = []
        for _ in range(2):
            e = _prime(rng, [own] + others)
            others.append(e)
            acc.add(e)
        w_seq = update_witness_epoch(w0, own, others, (), acc.value, group.n)
        for e in others:
            # Sequential replay needs the intermediate value per delete.
            acc.delete(e)
            w_seq = update_witness_after_delete(w_seq, own, e, acc.value, group.n)
        coalesced = update_witness_epoch(
            w0, own, others, others, acc.value, group.n
        )
        # Both are the unique e-th root of v in QR(n).
        assert coalesced == w_seq
        assert acc.verify_witness(coalesced, own)


class TestEpochReplayProperty:
    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=8),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=8, deadline=None)
    def test_replayed_log_equals_fresh_witness(self, ops, seed):
        """Random interleaving of join epochs (op 0-2) and sealed
        revocation epochs (op 3): a member replaying the delta log —
        one coalesced update per epoch, OR one for the whole window —
        ends with exactly the trapdoor-issued fresh witness."""
        rng = random.Random(seed)
        group = RsaGroup.from_precomputed(256)
        acc = Accumulator(group, rng)
        own = _prime(rng)
        w_start = acc.add(own)
        taken = [own]
        pool = []          # revocable primes currently accumulated
        log = []           # (added, deleted, value) per epoch
        for op in ops:
            if op == 3 and pool:
                batch = pool[: min(2, len(pool))]
                pool = pool[len(batch):]
                acc.delete_batch(batch)
                log.append(((), tuple(batch), acc.value))
            else:
                e = _prime(rng, taken)
                taken.append(e)
                pool.append(e)
                acc.add(e)
                log.append(((e,), (), acc.value))

        # Per-epoch replay: one coalesced update per logged epoch.
        w_replay = w_start
        for added, deleted, value in log:
            w_replay = update_witness_epoch(
                w_replay, own, added, deleted, value, group.n
            )
        # Whole-window coalesce: one update for the entire gap.
        all_added = tuple(e for added, _, _ in log for e in added)
        all_deleted = tuple(e for _, deleted, _ in log for e in deleted)
        w_coalesced = update_witness_epoch(
            w_start, own, all_added, all_deleted, acc.value, group.n
        )

        fresh = acc.issue_witness(own)
        assert w_replay == w_coalesced == fresh
        assert verify_witness(acc.public(), fresh, own)
