"""Unit and property tests for primality and prime generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import primes
from repro.errors import ParameterError


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 4093):
            assert primes.is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 100, 4095):
            assert not primes.is_prime(n)

    def test_negative(self):
        assert not primes.is_prime(-7)

    def test_carmichael_numbers(self):
        # Classic Fermat-test foolers; Miller-Rabin must reject them.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
            assert not primes.is_prime(n)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert primes.is_prime((1 << 127) - 1)

    def test_large_known_composite(self):
        # 2^128 + 1 has factor 59649589127497217.
        assert not primes.is_prime((1 << 128) + 1)

    @given(st.integers(min_value=2, max_value=3000))
    def test_matches_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert primes.is_prime(n) == by_trial


class TestRandomPrime:
    def test_exact_bit_length(self, rng):
        for bits in (8, 16, 64, 128):
            p = primes.random_prime(bits, rng)
            assert p.bit_length() == bits
            assert primes.is_prime(p)

    def test_too_small_rejected(self, rng):
        with pytest.raises(ParameterError):
            primes.random_prime(1, rng)


class TestPrimeInInterval:
    def test_within_bounds(self, rng):
        low, high = 10_000, 20_000
        for _ in range(20):
            p = primes.random_prime_in_interval(low, high, rng)
            assert low < p < high
            assert primes.is_prime(p)

    def test_narrow_interval_rejected(self, rng):
        with pytest.raises(ParameterError):
            primes.random_prime_in_interval(10, 13, rng)

    def test_primeless_interval_raises(self, rng):
        # ]114, 126[ contains no primes... 115..125: none are prime except
        # none (113 and 127 bracket it).
        with pytest.raises(ParameterError):
            primes.random_prime_in_interval(114, 126, rng)

    def test_acjt_sized_interval(self, rng):
        low = (1 << 300) - (1 << 200)
        high = (1 << 300) + (1 << 200)
        p = primes.random_prime_in_interval(low, high, rng)
        assert low < p < high


class TestSafePrimes:
    def test_generation(self, rng):
        p = primes.random_safe_prime(48, rng)
        assert p.bit_length() == 48
        assert primes.is_safe_prime(p)

    def test_is_safe_prime_rejects(self):
        assert not primes.is_safe_prime(13)  # 13 prime but 6 composite
        assert not primes.is_safe_prime(15)
        assert primes.is_safe_prime(23)  # 23 = 2*11 + 1
        assert primes.is_safe_prime(47)  # 47 = 2*23 + 1


class TestNextPrime:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50)
    def test_is_next(self, n):
        p = primes.next_prime(n)
        assert p > n
        assert primes.is_prime(p)
        assert all(not primes.is_prime(k) for k in range(n + 1, p))


def test_product():
    assert primes.product([]) == 1
    assert primes.product([2, 3, 5]) == 30


def test_small_primes_table_sound():
    assert primes.SMALL_PRIMES[0] == 2
    assert all(
        primes.is_prime(p) for p in random.Random(1).sample(primes.SMALL_PRIMES, 30)
    )
