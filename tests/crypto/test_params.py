"""Tests for the parameter registry and ACJT length profiles."""

import pytest

from repro.crypto import params
from repro.crypto.modmath import mexp
from repro.errors import ParameterError


class TestEmbeddedPrimes:
    def test_all_sizes_present(self):
        assert set(params.SAFE_PRIMES) == {256, 384, 512, 768, 1024, 1536}

    def test_embedded_parameters_verify(self):
        # Re-checks primality of p and (p-1)/2 for every embedded prime.
        assert params.verify_embedded_parameters(rounds=4)

    def test_distinct_within_size(self):
        for triple in params.SAFE_PRIMES.values():
            assert len(set(triple)) == 3


class TestDhGroup:
    def test_group_structure(self):
        group = params.dh_group(256)
        assert group.p == 2 * group.q + 1
        assert mexp(group.g, group.q, group.p) == 1
        assert group.g != 1

    def test_contains(self):
        group = params.dh_group(256)
        element = group.power_of_g(12345)
        assert group.contains(element)
        assert not group.contains(0)
        assert not group.contains(group.p)
        # A non-residue is not in the order-q subgroup.
        assert not group.contains(group.p - 1)  # -1 is a non-residue (p=3 mod 4)

    def test_random_exponent_in_range(self, rng):
        group = params.dh_group(256)
        for _ in range(10):
            e = group.random_exponent(rng)
            assert 1 <= e < group.q

    def test_unknown_size_rejected(self):
        with pytest.raises(ParameterError):
            params.dh_group(333)

    def test_cached(self):
        assert params.dh_group(256) is params.dh_group(256)


class TestRsaSafePrimes:
    def test_pair_distinct(self):
        p, q = params.rsa_safe_primes(256)
        assert p != q
        assert p.bit_length() == q.bit_length() == 256

    def test_unknown_size(self):
        with pytest.raises(ParameterError):
            params.rsa_safe_primes(100)


class TestAcjtProfiles:
    @pytest.mark.parametrize("name", ["tiny", "test", "secure", "secure-1536"])
    def test_profiles_validate(self, name):
        profile = params.acjt_profile(name)
        profile.validate()
        assert profile.lambda1 > profile.epsilon * (profile.lambda2 + profile.k) + 2
        assert profile.gamma1 > profile.epsilon * (profile.gamma2 + profile.k) + 2
        assert profile.gamma2 > profile.lambda1 + 2

    def test_secure_profiles_are_strict(self):
        assert params.acjt_profile("secure").strict
        assert params.acjt_profile("secure-1536").strict

    def test_tiny_profile_relaxed(self):
        assert not params.acjt_profile("tiny").strict

    def test_interval_bounds_ordered(self):
        profile = params.acjt_profile("tiny")
        assert profile.x_low < profile.x_high
        assert profile.e_low < profile.e_high
        # Certificate primes dominate membership secrets (required by the
        # reduction): e interval lies entirely above the x interval.
        assert profile.e_low > profile.x_high

    def test_unknown_profile(self):
        with pytest.raises(ParameterError):
            params.acjt_profile("nope")

    def test_bad_epsilon_rejected(self):
        bad = params.AcjtLengths(lp=64, k=32, epsilon=1, lambda2=16)
        with pytest.raises(ParameterError):
            bad.validate()

    def test_modulus_bits(self):
        assert params.acjt_profile("tiny").modulus_bits == 512
