"""Property tests for the modular-arithmetic helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import modmath
from repro.crypto.primes import is_prime, next_prime
from repro.errors import ParameterError

_PRIMES = [101, 257, 7919, (1 << 61) - 1]


class TestMexp:
    def test_basic(self):
        assert modmath.mexp(2, 10, 1000) == 24

    def test_negative_exponent(self):
        p = 101
        x = modmath.mexp(5, -1, p)
        assert (5 * x) % p == 1

    def test_negative_exponent_general(self):
        p = 7919
        assert modmath.mexp(3, -5, p) == pow(pow(3, -1, p), 5, p)

    def test_bad_modulus(self):
        with pytest.raises(ParameterError):
            modmath.mexp(2, 3, 0)

    @given(st.integers(min_value=2, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_matches_pow(self, base, exp):
        assert modmath.mexp(base, exp, 7919) == pow(base, exp, 7919)


class TestInverse:
    @given(st.integers(min_value=1, max_value=7918))
    @settings(max_examples=50)
    def test_inverse_law(self, a):
        inv = modmath.inverse(a, 7919)
        assert (a * inv) % 7919 == 1

    def test_not_invertible(self):
        with pytest.raises(ParameterError):
            modmath.inverse(6, 12)


class TestEgcd:
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=100)
    def test_bezout(self, a, b):
        g, x, y = modmath.egcd(a, b)
        assert a * x + b * y == g
        assert g == math.gcd(a, b)


class TestCrt:
    def test_two_moduli(self):
        x = modmath.crt([2, 3], [5, 7])
        assert x % 5 == 2 and x % 7 == 3

    def test_three_moduli(self):
        x = modmath.crt([1, 2, 3], [3, 5, 7])
        assert x % 3 == 1 and x % 5 == 2 and x % 7 == 3

    def test_non_coprime_rejected(self):
        with pytest.raises(ParameterError):
            modmath.crt([1, 2], [6, 9])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            modmath.crt([], [])

    @given(st.integers(min_value=0, max_value=34))
    def test_roundtrip(self, v):
        assert modmath.crt([v % 5, v % 7], [5, 7]) == v


class TestJacobi:
    def test_known_values(self):
        # (2/7) = 1, (3/7) = -1
        assert modmath.jacobi(2, 7) == 1
        assert modmath.jacobi(3, 7) == -1
        assert modmath.jacobi(0, 7) == 0

    def test_even_modulus_rejected(self):
        with pytest.raises(ParameterError):
            modmath.jacobi(3, 8)

    @given(st.integers(min_value=1, max_value=7918))
    @settings(max_examples=50)
    def test_matches_euler_criterion(self, a):
        p = 7919
        euler = pow(a, (p - 1) // 2, p)
        expected = 1 if euler == 1 else (-1 if euler == p - 1 else 0)
        assert modmath.jacobi(a, p) == expected

    @given(st.integers(min_value=1, max_value=1000),
           st.integers(min_value=1, max_value=1000))
    @settings(max_examples=50)
    def test_multiplicative(self, a, b):
        n = 9907  # prime
        assert modmath.jacobi(a * b, n) == modmath.jacobi(a, n) * modmath.jacobi(b, n)


class TestSqrtModPrime:
    @pytest.mark.parametrize("p", [7919, 7927, 104729, (1 << 61) - 1])
    @pytest.mark.parametrize("a", [2, 3, 5, 1234])
    def test_square_roots(self, p, a):
        square = (a * a) % p
        root = modmath.sqrt_mod_prime(square, p)
        assert (root * root) % p == square

    def test_p_equals_3_mod_4(self):
        p = 1000003  # = 3 mod 4
        root = modmath.sqrt_mod_prime(4, p)
        assert (root * root) % p == 4

    def test_non_residue_rejected(self):
        p = 7919
        # Find a non-residue.
        a = next(x for x in range(2, 100) if modmath.jacobi(x, p) == -1)
        with pytest.raises(ParameterError):
            modmath.sqrt_mod_prime(a, p)

    def test_zero(self):
        assert modmath.sqrt_mod_prime(0, 7919) == 0


class TestRandomHelpers:
    def test_random_unit_is_coprime(self, rng):
        n = 91  # 7 * 13
        for _ in range(50):
            u = modmath.random_unit(n, rng)
            assert math.gcd(u, n) == 1

    def test_random_qr_is_square(self, rng):
        p = 7919
        for _ in range(20):
            q = modmath.random_qr(p, rng)
            assert modmath.jacobi(q, p) == 1

    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=30)
    def test_symmetric_range(self, bits):
        import random as _random
        r = _random.Random(bits)
        v = modmath.random_int_symmetric(bits, r)
        assert modmath.int_in_symmetric_range(v, bits)
        assert not modmath.int_in_symmetric_range((1 << bits) + 1, bits)


class TestCounterHonesty:
    """Regression: negative exponents route through ``inverse`` and every
    leg of that trip is counted — one modexp for the call itself plus one
    ``inversions`` extra for the modular inverse it hides (E1 honesty)."""

    def test_negative_exponent_counts_modexp_and_inversion(self):
        from repro import metrics

        rec = metrics.Recorder()
        with metrics.using(rec):
            result = modmath.mexp(5, -3, 101)
        assert result == pow(pow(5, -1, 101), 3, 101)
        assert rec.total().modexp == 1
        assert rec.total().extra.get("inversions") == 1

    def test_positive_exponent_counts_no_inversion(self):
        from repro import metrics

        rec = metrics.Recorder()
        with metrics.using(rec):
            modmath.mexp(5, 3, 101)
        assert rec.total().modexp == 1
        assert "inversions" not in rec.total().extra

    def test_direct_inverse_is_counted(self):
        from repro import metrics

        rec = metrics.Recorder()
        with metrics.using(rec):
            modmath.inverse(7, 101)
        assert rec.total().extra.get("inversions") == 1
