"""Property and unit tests for the AEAD (SENC/SDEC) and HMAC wrappers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import mac, symmetric
from repro.errors import DecryptionError, ParameterError


class TestAeadRoundtrip:
    @given(st.binary(min_size=16, max_size=32), st.binary(max_size=256))
    @settings(max_examples=60)
    def test_roundtrip(self, key, plaintext):
        ct = symmetric.encrypt(key, plaintext)
        assert symmetric.decrypt(key, ct) == plaintext

    def test_empty_plaintext(self):
        key = b"k" * 32
        assert symmetric.decrypt(key, symmetric.encrypt(key, b"")) == b""

    def test_deterministic_with_seeded_rng(self):
        key = b"k" * 32
        c1 = symmetric.encrypt(key, b"msg", random.Random(7))
        c2 = symmetric.encrypt(key, b"msg", random.Random(7))
        assert c1 == c2

    def test_fresh_nonces_differ(self):
        key = b"k" * 32
        assert symmetric.encrypt(key, b"msg") != symmetric.encrypt(key, b"msg")


class TestAeadRejection:
    @given(st.binary(max_size=128), st.integers(min_value=0, max_value=127))
    @settings(max_examples=60)
    def test_bitflip_detected(self, plaintext, position):
        key = b"k" * 32
        ct = bytearray(symmetric.encrypt(key, plaintext))
        ct[position % len(ct)] ^= 0x01
        with pytest.raises(DecryptionError):
            symmetric.decrypt(key, bytes(ct))

    def test_wrong_key(self):
        ct = symmetric.encrypt(b"a" * 32, b"secret")
        with pytest.raises(DecryptionError):
            symmetric.decrypt(b"b" * 32, ct)

    def test_truncated(self):
        with pytest.raises(DecryptionError):
            symmetric.decrypt(b"k" * 32, b"short")

    def test_random_ciphertext_rejected(self):
        with pytest.raises(DecryptionError):
            symmetric.decrypt(b"k" * 32, symmetric.random_ciphertext(64))

    def test_empty_key_rejected(self):
        with pytest.raises(ParameterError):
            symmetric.encrypt(b"", b"x")
        with pytest.raises(ParameterError):
            symmetric.decrypt(b"", b"x" * 64)


class TestDecoys:
    def test_shape_matches_real(self):
        key = b"k" * 32
        real = symmetric.encrypt(key, b"x" * 100)
        decoy = symmetric.random_ciphertext(100)
        assert len(real) == len(decoy)

    def test_overhead(self):
        key = b"k" * 32
        ct = symmetric.encrypt(key, b"x" * 10)
        assert len(ct) == 10 + symmetric.ciphertext_overhead()


class TestIntKeyed:
    @given(st.integers(min_value=0, max_value=1 << 256), st.binary(max_size=64))
    @settings(max_examples=30)
    def test_roundtrip(self, key_int, plaintext):
        ct = symmetric.encrypt_with_int_key(key_int, plaintext)
        assert symmetric.decrypt_with_int_key(key_int, ct) == plaintext

    def test_wrong_int_key(self):
        ct = symmetric.encrypt_with_int_key(1, b"secret")
        with pytest.raises(DecryptionError):
            symmetric.decrypt_with_int_key(2, ct)


class TestMac:
    @given(st.binary(min_size=1, max_size=32), st.binary(max_size=64),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_verify_roundtrip(self, key, data, index):
        tag = mac.mac(key, data, index)
        assert mac.verify(key, tag, data, index)

    def test_wrong_key_rejected(self):
        tag = mac.mac(b"key1", b"data")
        assert not mac.verify(b"key2", tag, b"data")

    def test_wrong_message_rejected(self):
        tag = mac.mac(b"key", b"data")
        assert not mac.verify(b"key", tag, b"datb")

    def test_argument_order_matters(self):
        assert mac.mac(b"key", b"a", b"b") != mac.mac(b"key", b"b", b"a")

    def test_bad_tag_length(self):
        assert not mac.verify(b"key", b"short", b"data")

    def test_empty_key_rejected(self):
        with pytest.raises(ParameterError):
            mac.mac(b"", b"data")

    def test_int_keyed(self):
        tag = mac.mac_from_int(12345, b"s", 0)
        assert mac.verify_from_int(12345, tag, b"s", 0)
        assert not mac.verify_from_int(12346, tag, b"s", 0)
