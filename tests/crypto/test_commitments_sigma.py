"""Tests for Pedersen commitments and the sigma-protocol toolkit."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commitments import IntegerPedersenScheme, PedersenScheme
from repro.crypto.params import dh_group
from repro.crypto.rsa import RsaGroup
from repro.crypto.sigma import (
    DleqProof,
    RepresentationProof,
    SchnorrProof,
    SchnorrSignature,
)
from repro.errors import ParameterError

GROUP = dh_group(256)


@pytest.fixture(scope="module")
def pedersen():
    return PedersenScheme.setup(GROUP, random.Random(11))


@pytest.fixture(scope="module")
def int_pedersen():
    return IntegerPedersenScheme.setup(RsaGroup.from_precomputed(256),
                                       random.Random(12))


class TestPedersen:
    @given(st.integers(min_value=0, max_value=10**30))
    @settings(max_examples=40)
    def test_commit_verify(self, message):
        scheme = PedersenScheme.setup(GROUP, random.Random(message % 97))
        commitment, opening = scheme.commit(message, random.Random(message % 89))
        assert scheme.verify(commitment, message, opening)

    def test_wrong_opening_rejected(self, pedersen, rng):
        commitment, opening = pedersen.commit(42, rng)
        assert not pedersen.verify(commitment, 43, opening)
        assert not pedersen.verify(commitment, 42, opening + 1)

    def test_hiding_randomization(self, pedersen, rng):
        c1, _ = pedersen.commit(7, rng)
        c2, _ = pedersen.commit(7, rng)
        assert c1 != c2

    def test_homomorphic(self, pedersen, rng):
        c1, r1 = pedersen.commit(3, rng)
        c2, r2 = pedersen.commit(4, rng)
        combined = pedersen.combine(c1, c2)
        assert pedersen.verify(combined, 7, r1 + r2)


class TestIntegerPedersen:
    def test_commit_verify(self, int_pedersen, rng):
        commitment, opening = int_pedersen.commit(123456789, rng)
        assert int_pedersen.verify(commitment, 123456789, opening)
        assert not int_pedersen.verify(commitment, 123456788, opening)

    def test_negative_rejected(self, int_pedersen, rng):
        with pytest.raises(ParameterError):
            int_pedersen.commit(-1, rng)

    def test_large_integer(self, int_pedersen, rng):
        big = 1 << 600  # bigger than the modulus: exponents, not residues
        commitment, opening = int_pedersen.commit(big, rng)
        assert int_pedersen.verify(commitment, big, opening)


class TestSchnorrProof:
    def test_complete(self, rng):
        x = GROUP.random_exponent(rng)
        y = GROUP.power_of_g(x)
        proof = SchnorrProof.create(GROUP, GROUP.g, y, x, b"ctx", rng)
        assert proof.verify(GROUP, GROUP.g, y, b"ctx")

    def test_context_bound(self, rng):
        x = GROUP.random_exponent(rng)
        y = GROUP.power_of_g(x)
        proof = SchnorrProof.create(GROUP, GROUP.g, y, x, b"ctx1", rng)
        assert not proof.verify(GROUP, GROUP.g, y, b"ctx2")

    def test_wrong_statement_rejected(self, rng):
        x = GROUP.random_exponent(rng)
        y = GROUP.power_of_g(x)
        proof = SchnorrProof.create(GROUP, GROUP.g, y, x, rng=rng)
        assert not proof.verify(GROUP, GROUP.g, (y * GROUP.g) % GROUP.p)

    def test_out_of_range_rejected(self, rng):
        x = GROUP.random_exponent(rng)
        y = GROUP.power_of_g(x)
        proof = SchnorrProof.create(GROUP, GROUP.g, y, x, rng=rng)
        bad = SchnorrProof(proof.challenge, proof.response + GROUP.q)
        assert not bad.verify(GROUP, GROUP.g, y)


class TestDleq:
    def test_complete(self, rng):
        x = GROUP.random_exponent(rng)
        g2 = GROUP.power_of_g(777)
        proof = DleqProof.create(GROUP, GROUP.g, GROUP.power_of_g(x),
                                 g2, pow(g2, x, GROUP.p), x, rng=rng)
        assert proof.verify(GROUP, GROUP.g, GROUP.power_of_g(x),
                            g2, pow(g2, x, GROUP.p))

    def test_unequal_logs_rejected(self, rng):
        x = GROUP.random_exponent(rng)
        g2 = GROUP.power_of_g(777)
        y2_wrong = pow(g2, x + 1, GROUP.p)
        proof = DleqProof.create(GROUP, GROUP.g, GROUP.power_of_g(x),
                                 g2, y2_wrong, x, rng=rng)
        assert not proof.verify(GROUP, GROUP.g, GROUP.power_of_g(x), g2, y2_wrong)


class TestRepresentation:
    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=10)
    def test_complete(self, k):
        rng = random.Random(k)
        bases = [GROUP.power_of_g(rng.randrange(1, GROUP.q)) for _ in range(k)]
        secrets = [GROUP.random_exponent(rng) for _ in range(k)]
        public = 1
        for base, secret in zip(bases, secrets):
            public = (public * pow(base, secret, GROUP.p)) % GROUP.p
        proof = RepresentationProof.create(GROUP, bases, public, secrets, rng=rng)
        assert proof.verify(GROUP, bases, public)

    def test_wrong_public_rejected(self, rng):
        bases = [GROUP.g, GROUP.power_of_g(3)]
        secrets = [5, 7]
        public = (pow(bases[0], 5, GROUP.p) * pow(bases[1], 7, GROUP.p)) % GROUP.p
        proof = RepresentationProof.create(GROUP, bases, public, secrets, rng=rng)
        assert not proof.verify(GROUP, bases, (public * GROUP.g) % GROUP.p)

    def test_arity_mismatch(self, rng):
        with pytest.raises(ParameterError):
            RepresentationProof.create(GROUP, [GROUP.g], 1, [1, 2], rng=rng)


class TestSchnorrSignature:
    def test_sign_verify(self, rng):
        public, secret = SchnorrSignature.keygen(GROUP, rng)
        signature = SchnorrSignature.sign(GROUP, secret, b"message", rng)
        assert signature.verify(GROUP, public, b"message")

    def test_wrong_message(self, rng):
        public, secret = SchnorrSignature.keygen(GROUP, rng)
        signature = SchnorrSignature.sign(GROUP, secret, b"message", rng)
        assert not signature.verify(GROUP, public, b"messagf")

    def test_wrong_key(self, rng):
        public, secret = SchnorrSignature.keygen(GROUP, rng)
        other_public, _ = SchnorrSignature.keygen(GROUP, rng)
        signature = SchnorrSignature.sign(GROUP, secret, b"m", rng)
        assert not signature.verify(GROUP, other_public, b"m")
