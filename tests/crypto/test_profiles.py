"""Profile-independence tests: the protocol logic must be invariant under
the parameter profile — only speed and concrete hardness change.

The test-suite runs on "tiny" (512-bit modulus, relaxed lengths); here we
exercise the larger "test" profile end-to-end for both GSIG schemes, and
statically validate the strict "secure" profiles (generating 1024-bit
safe-prime moduli is precomputed, so setup itself stays fast)."""

import random

import pytest

from repro.crypto.params import acjt_profile
from repro.gsig import acjt, kty


class TestTestProfile:
    @pytest.fixture(scope="class")
    def acjt_test_world(self):
        rng = random.Random(71)
        manager = acjt.AcjtManager("test", rng)
        credential, _ = manager.join("user", rng)
        return manager, credential, rng

    def test_acjt_roundtrip(self, acjt_test_world):
        manager, credential, rng = acjt_test_world
        signature = credential.sign(b"profile-test", rng)
        assert acjt.verify(manager.public_key, b"profile-test", signature,
                           manager.member_view())
        assert manager.open(b"profile-test", signature) == "user"

    def test_acjt_rejects_cross_profile_forgery(self, acjt_test_world,
                                                acjt_world):
        """A signature from a tiny-profile deployment never verifies in a
        test-profile one (different moduli and interval checks)."""
        manager, _, _ = acjt_test_world
        tiny_cred = acjt_world.credentials["alice"]
        signature = tiny_cred.sign(b"x", acjt_world.rng)
        assert not acjt.verify(manager.public_key, b"x", signature,
                               manager.member_view())

    def test_kty_roundtrip(self):
        rng = random.Random(72)
        manager = kty.KtyManager("test", rng)
        credential, _ = manager.join("user", rng)
        shield = kty.common_shield(manager.public_key, b"s")
        signature = credential.sign(b"m", rng, shield=shield)
        assert kty.verify(manager.public_key, b"m", signature,
                          manager.member_view(), expected_shield=shield)
        assert manager.open(b"m", signature) == "user"


class TestSecureProfiles:
    def test_strictness(self):
        for name in ("secure", "secure-1536"):
            profile = acjt_profile(name)
            assert profile.strict, name
            assert profile.lambda2 > 4 * profile.lp

    def test_interval_ordering_scales(self):
        for name in ("tiny", "test", "secure", "secure-1536"):
            profile = acjt_profile(name)
            assert profile.x_high < profile.e_low  # Lambda below Gamma
            assert profile.e_high < (1 << (profile.gamma1 + 1))

    def test_secure_modulus_available(self):
        """The precomputed safe primes cover the secure profiles."""
        from repro.crypto.rsa import RsaGroup
        for name in ("secure", "secure-1536"):
            profile = acjt_profile(name)
            group = RsaGroup.from_precomputed(profile.lp)
            assert group.n.bit_length() in (2 * profile.lp, 2 * profile.lp - 1)
