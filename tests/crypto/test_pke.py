"""Tests for the public-key layer: message encoding, ElGamal (textbook and
hybrid) and Cramer-Shoup."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import encoding
from repro.crypto.cramer_shoup import CramerShoup, CSCiphertext
from repro.crypto.elgamal import ElGamal, HybridElGamal
from repro.crypto.params import dh_group
from repro.errors import DecryptionError, EncodingError

GROUP = dh_group(384)


@pytest.fixture(scope="module")
def elgamal_keys():
    return ElGamal.keygen(GROUP, random.Random(1))


@pytest.fixture(scope="module")
def cs_keys():
    return CramerShoup.keygen(GROUP, random.Random(2))


class TestMessageEncoding:
    @given(st.binary(max_size=40))
    @settings(max_examples=80)
    def test_roundtrip(self, message):
        element = encoding.bytes_to_element(GROUP, message)
        assert GROUP.contains(element)
        assert encoding.element_to_bytes(GROUP, element) == message

    def test_max_length_enforced(self):
        limit = encoding.max_message_bytes(GROUP)
        encoding.bytes_to_element(GROUP, b"x" * limit)
        with pytest.raises(EncodingError):
            encoding.bytes_to_element(GROUP, b"x" * (limit + 1))

    def test_bad_element_rejected(self):
        with pytest.raises(EncodingError):
            encoding.element_to_bytes(GROUP, 0)

    def test_leading_zero_bytes_preserved(self):
        message = b"\x00\x00\x01"
        element = encoding.bytes_to_element(GROUP, message)
        assert encoding.element_to_bytes(GROUP, element) == message


class TestElGamal:
    @given(st.binary(max_size=40))
    @settings(max_examples=30)
    def test_bytes_roundtrip(self, message):
        pk, sk = ElGamal.keygen(GROUP, random.Random(5))
        ct = ElGamal.encrypt_bytes(pk, message, random.Random(6))
        assert ElGamal.decrypt_bytes(sk, ct) == message

    def test_element_roundtrip(self, elgamal_keys, rng):
        pk, sk = elgamal_keys
        m = GROUP.power_of_g(777)
        ct = ElGamal.encrypt_element(pk, m, rng)
        assert ElGamal.decrypt_element(sk, ct) == m

    def test_ciphertexts_randomized(self, elgamal_keys, rng):
        pk, _ = elgamal_keys
        m = GROUP.power_of_g(5)
        assert ElGamal.encrypt_element(pk, m, rng) != ElGamal.encrypt_element(pk, m, rng)

    def test_rerandomize_preserves_plaintext(self, elgamal_keys, rng):
        pk, sk = elgamal_keys
        m = GROUP.power_of_g(99)
        ct = ElGamal.encrypt_element(pk, m, rng)
        ct2 = ElGamal.rerandomize(pk, ct, rng)
        assert ct2 != ct
        assert ElGamal.decrypt_element(sk, ct2) == m


class TestHybridElGamal:
    @given(st.binary(max_size=300))
    @settings(max_examples=30)
    def test_roundtrip(self, message):
        pk, sk = HybridElGamal.keygen(GROUP, random.Random(7))
        ct = HybridElGamal.encrypt(pk, message, random.Random(8))
        assert HybridElGamal.decrypt(sk, ct) == message

    def test_tamper_rejected(self, rng):
        pk, sk = HybridElGamal.keygen(GROUP, rng)
        c1, blob = HybridElGamal.encrypt(pk, b"secret", rng)
        bad = bytearray(blob)
        bad[-1] ^= 1
        with pytest.raises(DecryptionError):
            HybridElGamal.decrypt(sk, (c1, bytes(bad)))

    def test_bad_kem_element(self, rng):
        pk, sk = HybridElGamal.keygen(GROUP, rng)
        _, blob = HybridElGamal.encrypt(pk, b"secret", rng)
        with pytest.raises(DecryptionError):
            HybridElGamal.decrypt(sk, (0, blob))


class TestCramerShoup:
    @given(st.binary(max_size=40))
    @settings(max_examples=30)
    def test_roundtrip(self, message):
        pk, sk = CramerShoup.keygen(GROUP, random.Random(9))
        ct = CramerShoup.encrypt_bytes(pk, message, random.Random(10))
        assert CramerShoup.decrypt_bytes(sk, ct) == message

    def test_tampered_component_rejected(self, cs_keys, rng):
        pk, sk = cs_keys
        ct = CramerShoup.encrypt_bytes(pk, b"trace-key", rng)
        for attr in ("u1", "u2", "e", "v"):
            broken = CSCiphertext(**{
                **{k: getattr(ct, k) for k in ("u1", "u2", "e", "v")},
                attr: (getattr(ct, attr) * pk.g1) % pk.group.p,
            })
            with pytest.raises(DecryptionError):
                CramerShoup.decrypt_element(sk, broken)

    def test_out_of_range_rejected(self, cs_keys):
        _, sk = cs_keys
        with pytest.raises(DecryptionError):
            CramerShoup.decrypt_element(sk, CSCiphertext(0, 1, 1, 1))

    def test_decoy_rejected_but_well_formed(self, cs_keys, rng):
        pk, sk = cs_keys
        decoy = CramerShoup.random_ciphertext(pk, rng)
        for value in decoy.as_tuple():
            assert 1 <= value < pk.group.p
        with pytest.raises(DecryptionError):
            CramerShoup.decrypt_element(sk, decoy)

    def test_randomized(self, cs_keys, rng):
        pk, _ = cs_keys
        a = CramerShoup.encrypt_bytes(pk, b"m", rng)
        b = CramerShoup.encrypt_bytes(pk, b"m", rng)
        assert a != b

    def test_cross_key_rejected(self, cs_keys, rng):
        pk, _ = cs_keys
        _, other_sk = CramerShoup.keygen(GROUP, rng)
        ct = CramerShoup.encrypt_bytes(pk, b"m", rng)
        with pytest.raises(DecryptionError):
            CramerShoup.decrypt_bytes(other_sk, ct)
