"""Tests for canonical encoding, random-oracle hashes and the KDF."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import hashing
from repro.crypto.modmath import jacobi
from repro.errors import EncodingError

_scalars = st.one_of(
    st.integers(min_value=-(10**30), max_value=10**30),
    st.binary(max_size=64),
    st.text(max_size=32),
    st.booleans(),
    st.none(),
)
_values = st.one_of(_scalars, st.tuples(_scalars, _scalars))


class TestEncoding:
    @given(_values, _values)
    @settings(max_examples=100)
    def test_injective_on_pairs(self, a, b):
        if a != b:
            assert hashing.encode_element(a) != hashing.encode_element(b)

    def test_type_confusion_prevented(self):
        # int 5 vs str "5" vs bytes b"5" all encode differently.
        encodings = {
            hashing.encode_element(5),
            hashing.encode_element("5"),
            hashing.encode_element(b"5"),
            hashing.encode_element(True),
        }
        assert len(encodings) == 4

    def test_concatenation_ambiguity_prevented(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert hashing.encode("ab", "c") != hashing.encode("a", "bc")

    def test_nested_sequences(self):
        assert hashing.encode_element((1, (2, 3))) != hashing.encode_element((1, 2, 3))

    def test_negative_ints(self):
        assert hashing.encode_element(-5) != hashing.encode_element(5)

    def test_unencodable(self):
        with pytest.raises(EncodingError):
            hashing.encode_element(3.14)


class TestDigest:
    def test_deterministic(self):
        assert hashing.digest("d", 1, "x") == hashing.digest("d", 1, "x")

    def test_domain_separation(self):
        assert hashing.digest("d1", 1) != hashing.digest("d2", 1)

    def test_length(self):
        assert len(hashing.digest("d", b"payload")) == 32


class TestExpand:
    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30)
    def test_length(self, n):
        assert len(hashing.expand("d", b"seed", n)) == n

    def test_prefix_property(self):
        long = hashing.expand("d", b"seed", 100)
        short = hashing.expand("d", b"seed", 40)
        assert long[:40] == short


class TestHashToInt:
    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=30)
    def test_range(self, bits):
        value = hashing.hash_to_int("d", bits, b"x", bits)
        assert 0 <= value < (1 << bits)

    def test_mod_range(self):
        for modulus in (97, 1 << 61, (1 << 127) - 1):
            v = hashing.hash_mod("d", modulus, b"payload")
            assert 0 <= v < modulus


class TestHashToQr:
    def test_is_quadratic_residue(self):
        # For a prime modulus we can check the Jacobi symbol directly.
        p = (1 << 127) - 1
        for i in range(5):
            v = hashing.hash_to_qr("d", p, i)
            assert jacobi(v, p) == 1

    def test_session_dependence(self):
        n = 91 * 100003
        assert hashing.hash_to_qr("d", n, "s1") != hashing.hash_to_qr("d", n, "s2")


class TestKdf:
    def test_label_separation(self):
        assert hashing.kdf(b"k", "a") != hashing.kdf(b"k", "b")

    def test_key_separation(self):
        assert hashing.kdf(b"k1", "a") != hashing.kdf(b"k2", "a")

    @given(st.integers(min_value=1, max_value=128))
    @settings(max_examples=20)
    def test_length(self, n):
        assert len(hashing.kdf(b"key", "label", n)) == n

    def test_int_to_key(self):
        assert hashing.int_to_key(12345) != hashing.int_to_key(12346)
        assert len(hashing.int_to_key(1)) == 32


def test_iter_digest_matches_streaming():
    a = hashing.iter_digest("d", [1, "two", b"three"])
    b = hashing.iter_digest("d", iter([1, "two", b"three"]))
    assert a == b


def test_fingerprint_short_hex():
    fp = hashing.fingerprint("x", 1)
    assert len(fp) == 16
    int(fp, 16)  # valid hex
