"""Tests for the Camenisch-Lysyanskaya dynamic accumulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.accumulator import (
    Accumulator,
    AccumulatorMembershipProof,
    update_witness_after_add,
    update_witness_after_delete,
    verify_witness,
)
from repro.crypto.commitments import IntegerPedersenScheme
from repro.crypto.params import acjt_profile
from repro.crypto.primes import random_prime_in_interval
from repro.crypto.rsa import RsaGroup
from repro.errors import ParameterError, RevocationError

LENGTHS = acjt_profile("tiny")


@pytest.fixture(scope="module")
def group():
    return RsaGroup.from_precomputed(256)


@pytest.fixture(scope="module")
def pedersen(group):
    return IntegerPedersenScheme.setup(group, random.Random(21))


def _prime(rng):
    return random_prime_in_interval(LENGTHS.e_low, LENGTHS.e_high, rng)


class TestAccumulatorBasics:
    def test_add_returns_valid_witness(self, group, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        witness = acc.add(e)
        assert acc.verify_witness(witness, e)
        assert acc.contains(e)
        assert len(acc) == 1

    def test_duplicate_add_rejected(self, group, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        acc.add(e)
        with pytest.raises(RevocationError):
            acc.add(e)

    def test_even_value_rejected(self, group, rng):
        acc = Accumulator(group, rng)
        with pytest.raises(ParameterError):
            acc.add(4)

    def test_delete_requires_membership(self, group, rng):
        acc = Accumulator(group, rng)
        with pytest.raises(RevocationError):
            acc.delete(_prime(rng))

    def test_delete_inverts_add(self, group, rng):
        acc = Accumulator(group, rng)
        before = acc.value
        e = _prime(rng)
        acc.add(e)
        acc.delete(e)
        assert acc.value == before

    def test_manager_needs_trapdoor(self, group, rng):
        with pytest.raises(ParameterError):
            Accumulator(group.public(), rng)


class TestWitnessUpdates:
    def test_add_updates(self, group, rng):
        acc = Accumulator(group, rng)
        e1, e2, e3 = (_prime(rng) for _ in range(3))
        w1 = acc.add(e1)
        acc.add(e2)
        w1 = update_witness_after_add(w1, e2, group.n)
        acc.add(e3)
        w1 = update_witness_after_add(w1, e3, group.n)
        assert acc.verify_witness(w1, e1)

    def test_delete_updates(self, group, rng):
        acc = Accumulator(group, rng)
        e1, e2 = _prime(rng), _prime(rng)
        w1 = acc.add(e1)
        acc.add(e2)
        w1 = update_witness_after_add(w1, e2, group.n)
        acc.delete(e2)
        w1 = update_witness_after_delete(w1, e1, e2, acc.value, group.n)
        assert acc.verify_witness(w1, e1)

    def test_revoked_witness_becomes_stale(self, group, rng):
        acc = Accumulator(group, rng)
        e1, e2 = _prime(rng), _prime(rng)
        acc.add(e1)
        w2 = acc.add(e2)
        assert acc.verify_witness(w2, e2)
        acc.delete(e2)
        assert not acc.verify_witness(w2, e2)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=5, deadline=None)
    def test_churn_invariant(self, count):
        """After arbitrary add/delete churn, every surviving member's
        updated witness verifies and no removed member's does."""
        rng = random.Random(count)
        group = RsaGroup.from_precomputed(256)
        acc = Accumulator(group, rng)
        members = {}
        for _ in range(count):
            e = _prime(rng)
            w = acc.add(e)
            for other in members:
                members[other] = update_witness_after_add(members[other], e, group.n)
            members[e] = w
        removed, *_ = list(members)
        acc.delete(removed)
        stale = members.pop(removed)
        for e in members:
            members[e] = update_witness_after_delete(
                members[e], e, removed, acc.value, group.n
            )
        for e, w in members.items():
            assert verify_witness(acc.public(), w, e)
        assert not verify_witness(acc.public(), stale, removed)


class TestMembershipProof:
    def test_complete(self, group, pedersen, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        witness = acc.add(e)
        proof = AccumulatorMembershipProof.create(
            acc.public(), pedersen, LENGTHS, e, witness, b"ctx", rng
        )
        assert proof.verify(acc.public(), pedersen, LENGTHS, b"ctx")

    def test_context_bound(self, group, pedersen, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        witness = acc.add(e)
        proof = AccumulatorMembershipProof.create(
            acc.public(), pedersen, LENGTHS, e, witness, b"ctx1", rng
        )
        assert not proof.verify(acc.public(), pedersen, LENGTHS, b"ctx2")

    def test_stale_witness_rejected_at_create(self, group, pedersen, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        witness = acc.add(e)
        acc.add(_prime(rng))  # witness now stale
        with pytest.raises(ParameterError):
            AccumulatorMembershipProof.create(
                acc.public(), pedersen, LENGTHS, e, witness, rng=rng
            )

    def test_proof_against_wrong_value_rejected(self, group, pedersen, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        witness = acc.add(e)
        proof = AccumulatorMembershipProof.create(
            acc.public(), pedersen, LENGTHS, e, witness, rng=rng
        )
        acc.add(_prime(rng))  # accumulator moved on
        assert not proof.verify(acc.public(), pedersen, LENGTHS)

    def test_tampered_response_rejected(self, group, pedersen, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        witness = acc.add(e)
        proof = AccumulatorMembershipProof.create(
            acc.public(), pedersen, LENGTHS, e, witness, rng=rng
        )
        from dataclasses import replace
        assert not replace(proof, s_e=proof.s_e + 1).verify(
            acc.public(), pedersen, LENGTHS
        )
        assert not replace(proof, s_z=proof.s_z + 1).verify(
            acc.public(), pedersen, LENGTHS
        )

    def test_out_of_interval_response_rejected(self, group, pedersen, rng):
        acc = Accumulator(group, rng)
        e = _prime(rng)
        witness = acc.add(e)
        proof = AccumulatorMembershipProof.create(
            acc.public(), pedersen, LENGTHS, e, witness, rng=rng
        )
        from dataclasses import replace
        huge = 1 << (LENGTHS.epsilon * (LENGTHS.gamma2 + LENGTHS.k) + 5)
        assert not replace(proof, s_e=huge).verify(acc.public(), pedersen, LENGTHS)
