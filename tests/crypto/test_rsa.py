"""Tests for the RSA hidden-order group substrate."""

import math

import pytest

from repro.crypto.modmath import jacobi
from repro.crypto.rsa import RsaGroup, generators
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def group():
    return RsaGroup.from_precomputed(256)


class TestConstruction:
    def test_from_precomputed(self, group):
        assert group.has_trapdoor
        assert group.n == group.p * group.q
        assert group.validate_trapdoor(rounds=4)

    def test_public_view(self, group):
        public = group.public()
        assert not public.has_trapdoor
        assert public.n == group.n
        with pytest.raises(ParameterError):
            _ = public.qr_order

    def test_inconsistent_factors_rejected(self):
        with pytest.raises(ParameterError):
            RsaGroup(n=15, p=3, q=7)

    def test_generate_small(self, rng):
        g = RsaGroup.generate(32, rng)
        assert g.validate_trapdoor(rounds=8)
        assert g.p != g.q


class TestArithmetic:
    def test_qr_order(self, group):
        assert group.qr_order == ((group.p - 1) // 2) * ((group.q - 1) // 2)

    def test_random_generator_is_qr(self, group, rng):
        g = group.random_generator(rng)
        # Squares have Jacobi symbol +1 (necessary condition).
        assert jacobi(g, group.n) == 1
        # And indeed are QRs mod both factors.
        assert jacobi(g % group.p, group.p) == 1
        assert jacobi(g % group.q, group.q) == 1

    def test_exponent_inversion(self, group, rng):
        e = 65537
        inv = group.invert_exponent(e)
        base = group.random_generator(rng)
        assert group.exp(group.exp(base, e), inv) == base

    def test_invert_non_coprime_rejected(self, group):
        p_prime = (group.p - 1) // 2
        with pytest.raises(ParameterError):
            group.invert_exponent(p_prime)

    def test_mul_inv(self, group, rng):
        a = group.random_generator(rng)
        assert group.mul(a, group.inv(a)) == 1

    def test_plausible_element_checks(self, group):
        assert not group.is_plausible_element(0)
        assert not group.is_plausible_element(group.n)
        assert not group.is_plausible_element(group.p)  # shares a factor
        assert group.is_plausible_element(4)

    def test_coprime_to_order(self, group):
        assert group.coprime_to_order(65537)
        assert not group.coprime_to_order((group.p - 1) // 2)


def test_generators_distinct(group, rng):
    gens = generators(group, 6, rng)
    assert len(set(gens)) == 6
    assert all(math.gcd(g, group.n) == 1 for g in gens)
