"""RevocationService behaviour: queue/seal, delta log, lazy refresh,
registry aggregation, and the guard rails around all of it.

Membership here is mutated constantly, so every test world is private
(the conftest session worlds are read-only by contract).
"""

import random

import pytest

from repro import metrics
from repro.core.framework import GcdFramework
from repro.errors import ParameterError, RevocationError
from repro.revocation import (
    EpochDelta,
    RevocationService,
    registered_services,
    reset_registry,
    stats,
)


@pytest.fixture
def world(rng):
    framework = GcdFramework.create("rev-test", gsig_kind="acjt",
                                    gsig_profile="tiny", rng=rng)
    service = RevocationService(framework, register=False)
    members = {name: service.admit(name, rng) for name in ("a", "b", "c")}
    return framework, service, members


@pytest.fixture(autouse=True)
def _clean_registry():
    reset_registry()
    yield
    reset_registry()


class TestConstruction:
    def test_kty_framework_rejected(self, rng):
        framework = GcdFramework.create("kty-grp", gsig_kind="kty",
                                        gsig_profile="tiny", rng=rng)
        with pytest.raises(ParameterError):
            RevocationService(framework, register=False)

    def test_bad_horizon_rejected(self, rng):
        framework = GcdFramework.create("h-grp", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        with pytest.raises(ParameterError):
            RevocationService(framework, horizon=0, register=False)


class TestQueueAndSeal:
    def test_admissions_land_in_delta_log(self, world):
        _, service, _ = world
        log = service.delta_log()
        assert len(log) == 3
        assert all(len(d.added) == 1 and not d.deleted for d in log)
        epochs = [d.epoch for d in log]
        assert epochs == sorted(epochs)

    def test_revoke_queues_without_taking_effect(self, world, rng):
        framework, service, members = world
        service.revoke("c")
        assert service.pending() == ("c",)
        # Not sealed yet: the whole room still handshakes.
        outcomes = framework.handshake(["a", "b", "c"], rng=rng)
        assert all(o.success for o in outcomes)

    def test_unknown_member_rejected(self, world):
        _, service, _ = world
        with pytest.raises(RevocationError):
            service.revoke("nobody")

    def test_double_queue_rejected(self, world):
        _, service, _ = world
        service.revoke("c")
        with pytest.raises(RevocationError):
            service.revoke("c")

    def test_empty_seal_is_a_noop(self, world):
        _, service, _ = world
        epoch = service.epoch
        assert service.seal_epoch() is None
        assert service.epoch == epoch

    def test_seal_batches_one_epoch(self, world, rng):
        framework, service, members = world
        epoch_before = service.epoch
        service.revoke("b")
        service.revoke("c")
        delta = service.seal_epoch()
        assert isinstance(delta, EpochDelta)
        assert delta.revoked_users == ("b", "c")
        assert len(delta.deleted) == 2
        # The whole batch is ONE accumulator epoch.
        assert service.epoch == epoch_before + 1
        assert service.pending() == ()
        # The leavers cannot decrypt the epoch post (dual revocation):
        # their CGKD rekey fails and the handle flags itself revoked.
        assert members["b"].revoked
        assert members["c"].revoked
        # The survivor's witness tracked the batch.
        assert members["a"].credential.witness_is_current()
        outcomes = framework.handshake(["a", "b"], rng=rng)
        assert not all(o.success for o in outcomes)

    def test_manager_pays_one_trapdoor_modexp(self, world):
        _, service, _ = world
        for uid in ("b", "c"):
            service.revoke(uid)
        with metrics.detached() as recorder:
            service.seal_epoch()
        books = recorder.snapshot().get("rev:seal")
        assert books is not None and books.modexp > 0
        assert service.stats()["epochs_sealed"] == 1

    def test_sequential_epochs_accumulate(self, world):
        _, service, _ = world
        service.revoke("b")
        service.seal_epoch()
        service.revoke("c")
        service.seal_epoch()
        assert service.stats()["revoked"] == 2
        assert service.stats()["epochs_sealed"] == 2


class TestLazyRefresh:
    def test_current_member_untouched(self, world):
        _, service, members = world
        assert service.refresh(members["a"]) == "current"

    def test_replayed_within_horizon(self, rng):
        framework = GcdFramework.create("lazy", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, horizon=32, register=False)
        for name in ("a", "b"):
            service.admit(name, rng)
        sleeper = service.admit("sleeper", rng, enroll=False)
        start = sleeper.acc_epoch
        for i in range(3):
            service.admit(f"churn{i}", rng)
            service.revoke(f"churn{i}")
            service.seal_epoch()
        missed = service.epoch - start
        assert missed >= 6
        with metrics.detached() as recorder:
            assert service.refresh(sleeper) == "replayed"
        assert recorder.total().modexp <= 3
        assert sleeper.witness_is_current()
        assert sleeper.acc_epoch == service.epoch
        # Idempotent: a second refresh has nothing to do.
        assert service.refresh(sleeper) == "current"

    def test_reissued_past_horizon(self, rng):
        framework = GcdFramework.create("deep", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, horizon=2, register=False)
        service.admit("a", rng)
        sleeper = service.admit("sleeper", rng, enroll=False)
        for i in range(4):  # > horizon: log trimmed past the sleeper's gap
            service.admit(f"w{i}", rng)
        assert service.refresh(sleeper) == "reissued"
        assert sleeper.witness_is_current()

    def test_revoked_sleeper_detected_on_replay(self, rng):
        framework = GcdFramework.create("gone", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, register=False)
        service.admit("a", rng)
        sleeper = service.admit("sleeper", rng, enroll=False)
        service.revoke("sleeper")
        service.seal_epoch()
        assert service.refresh(sleeper) == "revoked"
        assert sleeper.revoked

    def test_revoked_sleeper_detected_past_horizon(self, rng):
        framework = GcdFramework.create("gone2", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, horizon=1, register=False)
        service.admit("a", rng)
        sleeper = service.admit("sleeper", rng, enroll=False)
        service.revoke("sleeper")
        service.seal_epoch()
        for i in range(3):  # push the sealed epoch out of the log
            service.admit(f"w{i}", rng)
        assert service.refresh(sleeper) == "revoked"
        assert sleeper.revoked

    def test_stale_update_after_refresh_is_ignored(self, rng):
        """A rekey replayed out of order after a lazy refresh must not
        corrupt the refreshed witness (the stale-epoch guard)."""
        framework = GcdFramework.create("stale", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, register=False)
        service.admit("a", rng)
        sleeper = service.admit("sleeper", rng, enroll=False)
        service.admit("late", rng)
        service.revoke("late")
        manager = framework.authority.gsig_manager
        update = manager.revoke_batch(["late"])
        service._log.append(EpochDelta(
            epoch=manager.member_view().acc_epoch, added=(),
            deleted=tuple(update.payload["deleted"]),
            acc_value=update.payload["acc_value"],
            revoked_users=("late",)))
        framework.update_all()
        assert service.refresh(sleeper) == "replayed"
        witness = sleeper.witness
        sleeper.apply_update(update)  # stale now — epoch already applied
        assert sleeper.witness == witness
        assert sleeper.witness_is_current()


class TestRegistry:
    def test_stats_aggregate(self, rng):
        framework = GcdFramework.create("reg", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, name="reg")
        assert service in registered_services()
        service.admit("a", rng)
        service.admit("b", rng)
        service.revoke("b")
        snap = stats()
        assert snap["services"] == 1
        assert snap["pending"] == 1
        assert snap["epoch"] == service.epoch
        service.seal_epoch()
        snap = stats()
        assert snap["pending"] == 0
        assert snap["revoked"] == 1
        assert snap["epochs_sealed"] == 1

    def test_empty_registry_all_zero(self):
        snap = stats()
        assert snap["services"] == 0
        assert snap["revoked"] == 0
