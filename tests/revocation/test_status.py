"""Revocation state on the STATUS channel and the `repro top` frame.

A relay colocated with a registered RevocationService embeds the
aggregate epoch/pending snapshot in its STATUS reply (and its rev:*
counters pass the svc: filter); a pure relay omits the section entirely.
"""

import asyncio
import random

import pytest

from repro import metrics
from repro.core.framework import GcdFramework
from repro.obs.telemetry import TimeSeries, render_top
from repro.revocation import RevocationService, reset_registry
from repro.service import RendezvousServer, ServerConfig, query_status

TEST_CAP = 60.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


@pytest.fixture(autouse=True)
def _clean_registry():
    reset_registry()
    yield
    reset_registry()


class TestServerStatus:
    def test_registered_service_surfaces_in_status(self, rng):
        framework = GcdFramework.create("status-grp", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, name="status-grp")
        for name in ("a", "b", "c"):
            service.admit(name, rng)
        service.revoke("c")

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                return await query_status("127.0.0.1", server.port)

        with metrics.using(metrics.Recorder()):
            status = _run(scenario())
        section = status.get("revocation")
        assert section is not None
        assert section["services"] == 1
        assert section["epoch"] == service.epoch
        assert section["pending"] == 1
        service.seal_epoch()
        assert service.stats()["pending"] == 0

    def test_rev_counters_pass_the_status_filter(self, rng):
        framework = GcdFramework.create("ctr-grp", gsig_kind="acjt",
                                        gsig_profile="tiny", rng=rng)
        service = RevocationService(framework, register=False)

        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                for name in ("a", "b", "c"):
                    service.admit(name, rng)
                service.revoke("c")
                service.seal_epoch()
                return await query_status("127.0.0.1", server.port)

        with metrics.using(metrics.Recorder()):
            status = _run(scenario())
        counters = status["counters"]
        assert counters.get("rev:epochs-sealed") == 1
        assert counters.get("rev:revocations") == 1

    def test_pure_relay_omits_the_section(self):
        async def scenario():
            async with RendezvousServer(ServerConfig()) as server:
                return await query_status("127.0.0.1", server.port)

        with metrics.using(metrics.Recorder()):
            status = _run(scenario())
        assert "revocation" not in status


class TestTopFrame:
    def test_revocation_line_rendered_when_present(self):
        series = TimeSeries()
        status = {"rooms": {"filling": 0, "active": 0, "closed": 1},
                  "connections": 0, "counters": {}, "outcomes": {},
                  "revocation": {"services": 1, "epoch": 9, "pending": 2,
                                 "epochs_sealed": 3, "revoked": 7}}
        series.add(status)
        frame = render_top(series)
        assert "revocation: epoch=9 pending=2 sealed=3 revoked=7" in frame

    def test_no_line_without_services(self):
        series = TimeSeries()
        series.add({"rooms": {}, "connections": 0, "counters": {},
                    "outcomes": {}})
        frame = render_top(series)
        assert "revocation:" not in frame
