"""The witness-maintenance cost model: closed forms and churn simulation.

These are the numbers BENCH_revocation.json validates against measured
books at small scale; here they get unit coverage (edges, validation,
and the scaling invariants the extrapolation relies on).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.revocation.model import (
    ChurnSpec,
    lazy_refresh_modexps,
    manager_modexps,
    member_update_modexps,
    rekey_broadcasts,
    simulate_churn,
)


class TestClosedForms:
    def test_manager_costs(self):
        assert manager_modexps(0, batched=True) == 0
        assert manager_modexps(0, batched=False) == 0
        assert manager_modexps(7, batched=False) == 7
        assert manager_modexps(7, batched=True) == 1
        with pytest.raises(ParameterError):
            manager_modexps(-1, batched=True)

    def test_member_costs(self):
        assert member_update_modexps(0, 0, coalesced=True) == 0
        assert member_update_modexps(3, 0, coalesced=False) == 3
        assert member_update_modexps(0, 4, coalesced=False) == 8
        assert member_update_modexps(3, 4, coalesced=False) == 11
        # Coalesced: bounded by 3 regardless of churn volume.
        assert member_update_modexps(100, 0, coalesced=True) == 1
        assert member_update_modexps(0, 100, coalesced=True) == 2
        assert member_update_modexps(100, 100, coalesced=True) == 3
        with pytest.raises(ParameterError):
            member_update_modexps(-1, 0, coalesced=True)

    def test_lazy_refresh_split(self):
        within = lazy_refresh_modexps(5, 9, within_horizon=True)
        assert within == {"member": 3, "manager": 0}
        beyond = lazy_refresh_modexps(5, 9, within_horizon=False)
        assert beyond == {"member": 0, "manager": 1}

    def test_broadcast_counts(self):
        assert rekey_broadcasts(0, batched=True) == 0
        assert rekey_broadcasts(5, batched=False) == 5
        assert rekey_broadcasts(5, batched=True) == 1


class TestChurnSpec:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ChurnSpec(members=0, epochs=1, revocations_per_epoch=1)
        with pytest.raises(ParameterError):
            ChurnSpec(members=10, epochs=0, revocations_per_epoch=1)
        with pytest.raises(ParameterError):
            ChurnSpec(members=10, epochs=1, revocations_per_epoch=-1)
        with pytest.raises(ParameterError):
            ChurnSpec(members=10, epochs=1, revocations_per_epoch=1,
                      sleepers=11)


class TestSimulateChurn:
    @given(st.integers(min_value=1, max_value=6),   # log10 members
           st.integers(min_value=1, max_value=100),  # epochs
           st.integers(min_value=1, max_value=50),   # revocations/epoch
           st.integers(min_value=0, max_value=25))   # joins/epoch
    @settings(max_examples=50, deadline=None)
    def test_batched_never_loses(self, exp, epochs, k, j):
        spec = ChurnSpec(members=10 ** exp, epochs=epochs,
                         revocations_per_epoch=k, joins_per_epoch=j)
        doc = simulate_churn(spec)
        assert (doc["batched"]["total_modexps"]
                <= doc["sequential"]["total_modexps"])
        assert doc["speedup_total"] >= 1.0
        # Manager books: exactly epochs vs epochs*k trapdoor modexps.
        assert doc["batched"]["manager_modexps"] == epochs
        assert doc["sequential"]["manager_modexps"] == epochs * k

    def test_strictly_better_with_real_churn(self):
        doc = simulate_churn(ChurnSpec(
            members=10_000, epochs=24, revocations_per_epoch=50,
            joins_per_epoch=25, sleepers=100, horizon=64))
        assert (doc["batched"]["total_modexps"]
                < doc["sequential"]["total_modexps"])
        assert doc["lazy_refresh"]["within_horizon"]
        assert doc["lazy_refresh"]["per_sleeper_member_modexps"] == 3
        assert doc["lazy_refresh"]["per_sleeper_manager_modexps"] == 0

    def test_past_horizon_switches_to_reissue(self):
        doc = simulate_churn(ChurnSpec(
            members=1000, epochs=100, revocations_per_epoch=5,
            sleepers=10, horizon=64))
        assert not doc["lazy_refresh"]["within_horizon"]
        assert doc["lazy_refresh"]["per_sleeper_member_modexps"] == 0
        assert doc["lazy_refresh"]["per_sleeper_manager_modexps"] == 1
        assert doc["lazy_refresh"]["sleepers_total_modexps"] == 10

    def test_sleepers_skip_online_updates(self):
        busy = simulate_churn(ChurnSpec(
            members=100, epochs=4, revocations_per_epoch=2))
        sleepy = simulate_churn(ChurnSpec(
            members=100, epochs=4, revocations_per_epoch=2, sleepers=50))
        assert (sleepy["batched"]["member_modexps_total"]
                < busy["batched"]["member_modexps_total"])
