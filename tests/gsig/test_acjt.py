"""Tests for ACJT group signatures with accumulator revocation."""

import random
from dataclasses import replace

import pytest

from repro.gsig import acjt
from repro.errors import (
    MembershipError,
    RevocationError,
    VerificationError,
)


class TestJoinProtocol:
    def test_interactive_join(self, acjt_world, rng):
        manager = acjt.AcjtManager("tiny", rng)
        request, x = acjt.begin_join(manager.public_key, "user", rng)
        response, update = manager.admit(request)
        credential = acjt.finish_join(manager.public_key, "user", x, response)
        assert credential.witness_is_current()
        # Certificate relation: A^e = a0 * a^x.
        pk = manager.public_key
        assert pow(credential.big_a, credential.e, pk.n) == (
            pk.a0 * pow(pk.a, credential.x, pk.n)
        ) % pk.n

    def test_duplicate_join_rejected(self, rng):
        manager = acjt.AcjtManager("tiny", rng)
        manager.join("user", rng)
        with pytest.raises(MembershipError):
            manager.join("user", rng)

    def test_forged_join_request_rejected(self, rng):
        manager = acjt.AcjtManager("tiny", rng)
        request, _ = acjt.begin_join(manager.public_key, "user", rng)
        forged = replace(request, commitment=(request.commitment * 2) % manager.public_key.n)
        with pytest.raises(VerificationError):
            manager.admit(forged)

    def test_bad_certificate_detected_by_user(self, rng):
        manager = acjt.AcjtManager("tiny", rng)
        request, x = acjt.begin_join(manager.public_key, "user", rng)
        response, _ = manager.admit(request)
        bad = replace(response, big_a=(response.big_a * 2) % manager.public_key.n)
        with pytest.raises(VerificationError):
            acjt.finish_join(manager.public_key, "user", x, bad)

    def test_certificate_prime_in_gamma(self, acjt_world):
        lengths = acjt_world.manager.lengths
        for cred in acjt_world.credentials.values():
            assert lengths.e_low < cred.e < lengths.e_high


class TestSignVerify:
    def test_valid_signature(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        sig = cred.sign(b"message", acjt_world.rng)
        assert acjt.verify(acjt_world.manager.public_key, b"message", sig,
                           acjt_world.manager.member_view())

    def test_wrong_message_rejected(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        sig = cred.sign(b"message", acjt_world.rng)
        assert not acjt.verify(acjt_world.manager.public_key, b"other", sig,
                               acjt_world.manager.member_view())

    def test_signatures_unlinkable_values(self, acjt_world):
        """Two signatures by the same member share no T values (fresh
        blinding each time) — the implementation-level unlinkability check."""
        cred = acjt_world.credentials["alice"]
        s1 = cred.sign(b"m", acjt_world.rng)
        s2 = cred.sign(b"m", acjt_world.rng)
        assert {s1.t1, s1.t2, s1.t3} & {s2.t1, s2.t2, s2.t3} == set()

    def test_tampered_fields_rejected(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        view = acjt_world.manager.member_view()
        pk = acjt_world.manager.public_key
        sig = cred.sign(b"m", acjt_world.rng)
        for fld in ("t1", "t2", "t3", "challenge", "s1", "s2", "s3", "s4",
                    "c_e", "c_u", "c_r", "s_z"):
            broken = replace(sig, **{fld: getattr(sig, fld) + 1})
            assert not acjt.verify(pk, b"m", broken, view), fld

    def test_wrong_epoch_rejected(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        sig = cred.sign(b"m", acjt_world.rng)
        bad = replace(sig, acc_epoch=sig.acc_epoch + 1)
        assert not acjt.verify(acjt_world.manager.public_key, b"m", bad,
                               acjt_world.manager.member_view())

    def test_response_interval_enforced(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        lengths = acjt_world.manager.lengths
        sig = cred.sign(b"m", acjt_world.rng)
        huge = 1 << (lengths.epsilon * (lengths.lambda2 + lengths.k) + 5)
        assert not acjt.verify(acjt_world.manager.public_key, b"m",
                               replace(sig, s2=huge),
                               acjt_world.manager.member_view())

    def test_element_range_checks(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        sig = cred.sign(b"m", acjt_world.rng)
        pk = acjt_world.manager.public_key
        view = acjt_world.manager.member_view()
        assert not acjt.verify(pk, b"m", replace(sig, t1=0), view)
        assert not acjt.verify(pk, b"m", replace(sig, c_u=pk.n), view)


class TestOpen:
    def test_open_identifies_signer(self, acjt_world):
        for name, cred in acjt_world.credentials.items():
            sig = cred.sign(b"msg", acjt_world.rng)
            assert acjt_world.manager.open(b"msg", sig) == name

    def test_open_rejects_invalid(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        sig = cred.sign(b"msg", acjt_world.rng)
        assert acjt_world.manager.open(b"other-msg", sig) is None


class TestRevocation:
    def _world(self, rng):
        manager = acjt.AcjtManager("tiny", rng)
        creds = {}
        for name in ("u1", "u2", "u3"):
            cred, update = manager.join(name, rng)
            for other in creds.values():
                other.apply_update(update)
            creds[name] = cred
        return manager, creds

    def test_revoked_member_cannot_sign_validly(self, rng):
        manager, creds = self._world(rng)
        pre_sig = creds["u2"].sign(b"old", rng)
        update = manager.revoke("u2")
        for cred in creds.values():
            cred.apply_update(update)
        assert creds["u2"].revoked
        with pytest.raises(RevocationError):
            creds["u2"].sign(b"new", rng)
        # Even ignoring the local flag, the stale witness fails verification
        # against the new accumulator state.
        creds["u2"].revoked = False
        sneaky = creds["u2"].sign(b"new", rng)
        assert not acjt.verify(manager.public_key, b"new", sneaky,
                               manager.member_view())
        # And the old signature no longer verifies under the new view.
        assert not acjt.verify(manager.public_key, b"old", pre_sig,
                               manager.member_view())

    def test_survivors_still_sign(self, rng):
        manager, creds = self._world(rng)
        update = manager.revoke("u2")
        for cred in creds.values():
            cred.apply_update(update)
        sig = creds["u1"].sign(b"still-here", rng)
        assert acjt.verify(manager.public_key, b"still-here", sig,
                           manager.member_view())

    def test_old_signature_still_opens(self, rng):
        """Tracing survives later rekeys (accumulator history)."""
        manager, creds = self._world(rng)
        sig = creds["u2"].sign(b"before", rng)
        update = manager.revoke("u3")
        for cred in creds.values():
            cred.apply_update(update)
        assert manager.open(b"before", sig) == "u2"

    def test_double_revoke_rejected(self, rng):
        manager, creds = self._world(rng)
        manager.revoke("u2")
        with pytest.raises(RevocationError):
            manager.revoke("u2")

    def test_unknown_member_revoke(self, rng):
        manager, _ = self._world(rng)
        with pytest.raises(MembershipError):
            manager.revoke("stranger")


class TestSchemeFactory:
    def test_factory(self, rng):
        scheme = acjt.AcjtScheme("tiny")
        manager = scheme.setup(rng)
        cred, _ = manager.join("u", rng)
        sig = cred.sign(b"m", rng)
        assert scheme.verify(manager.public_key, b"m", sig, manager.member_view())

    def test_factory_requires_view(self, acjt_world):
        scheme = acjt.AcjtScheme("tiny")
        cred = acjt_world.credentials["alice"]
        sig = cred.sign(b"m", acjt_world.rng)
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            scheme.verify(acjt_world.manager.public_key, b"m", sig)
