"""Tests for the Kiayias-Yung variant and its self-distinction mode."""

from dataclasses import replace

import pytest

from repro.errors import MembershipError, RevocationError, VerificationError
from repro.gsig import kty


class TestJoin:
    def test_certificate_relation(self, kty_world):
        pk = kty_world.manager.public_key
        for cred in kty_world.credentials.values():
            lhs = pow(cred.big_a, cred.e, pk.n)
            rhs = (pk.a0 * pow(pk.a, cred.x, pk.n) * pow(pk.b, cred.xt, pk.n)) % pk.n
            assert lhs == rhs

    def test_interactive_join(self, rng):
        manager = kty.KtyManager("tiny", rng)
        request, xt = kty.begin_join(manager.public_key, "user", rng)
        response, _ = manager.admit(request)
        credential = kty.finish_join(manager.public_key, "user", xt, response)
        assert credential.xt == xt
        assert credential.x == response.x

    def test_forged_request_rejected(self, rng):
        manager = kty.KtyManager("tiny", rng)
        request, _ = kty.begin_join(manager.public_key, "user", rng)
        forged = replace(request, response=request.response + 1)
        with pytest.raises(VerificationError):
            manager.admit(forged)

    def test_duplicate_join(self, rng):
        manager = kty.KtyManager("tiny", rng)
        manager.join("user", rng)
        with pytest.raises(MembershipError):
            manager.join("user", rng)

    def test_manager_does_not_learn_xt(self, rng):
        """No-misattribution hinges on the GM never seeing xt: the join
        request carries only b^xt plus a zero-knowledge PoK."""
        manager = kty.KtyManager("tiny", rng)
        request, xt = kty.begin_join(manager.public_key, "user", rng)
        assert xt not in vars(request).values()


class TestSignVerify:
    def test_valid(self, kty_world):
        cred = kty_world.credentials["alice"]
        sig = cred.sign(b"m", kty_world.rng)
        assert kty.verify(kty_world.manager.public_key, b"m", sig,
                          kty_world.manager.member_view())

    def test_wrong_message(self, kty_world):
        cred = kty_world.credentials["alice"]
        sig = cred.sign(b"m", kty_world.rng)
        assert not kty.verify(kty_world.manager.public_key, b"x", sig,
                              kty_world.manager.member_view())

    def test_tampered_fields_rejected(self, kty_world):
        cred = kty_world.credentials["alice"]
        pk = kty_world.manager.public_key
        view = kty_world.manager.member_view()
        sig = cred.sign(b"m", kty_world.rng)
        for fld in ("t1", "t2", "t3", "t4", "t5", "t6", "t7",
                    "challenge", "s_e", "s_x", "s_xt", "s_z", "s_w", "s_k"):
            broken = replace(sig, **{fld: getattr(sig, fld) + 1})
            assert not kty.verify(pk, b"m", broken, view), fld

    def test_unshielded_signatures_unlinkable_values(self, kty_world):
        cred = kty_world.credentials["alice"]
        s1 = cred.sign(b"m", kty_world.rng)
        s2 = cred.sign(b"m", kty_world.rng)
        shared = {s1.t1, s1.t2, s1.t4, s1.t5, s1.t6, s1.t7} & {
            s2.t1, s2.t2, s2.t4, s2.t5, s2.t6, s2.t7}
        assert shared == set()


class TestTracing:
    def test_open(self, kty_world):
        for name, cred in kty_world.credentials.items():
            sig = cred.sign(b"m", kty_world.rng)
            assert kty_world.manager.open(b"m", sig) == name

    def test_implicit_tracing_by_tag(self, kty_world):
        alice = kty_world.credentials["alice"]
        sig = alice.sign(b"m", kty_world.rng)
        assert kty_world.manager.signature_is_by(sig, "alice")
        assert not kty_world.manager.signature_is_by(sig, "bob")

    def test_trace_tag_unknown_user(self, kty_world):
        with pytest.raises(MembershipError):
            kty_world.manager.trace_tag("stranger")


class TestSelfDistinction:
    def test_common_shield_determinism(self, kty_world):
        pk = kty_world.manager.public_key
        assert kty.common_shield(pk, b"s1") == kty.common_shield(pk, b"s1")
        assert kty.common_shield(pk, b"s1") != kty.common_shield(pk, b"s2")

    def test_same_signer_same_tag(self, kty_world):
        pk = kty_world.manager.public_key
        shield = kty.common_shield(pk, b"session")
        cred = kty_world.credentials["alice"]
        s1 = cred.sign(b"m1", kty_world.rng, shield=shield)
        s2 = cred.sign(b"m2", kty_world.rng, shield=shield)
        assert s1.t6 == s2.t6 == cred.distinction_tag(shield)

    def test_distinct_signers_distinct_tags(self, kty_world):
        pk = kty_world.manager.public_key
        shield = kty.common_shield(pk, b"session")
        tags = {
            cred.sign(b"m", kty_world.rng, shield=shield).t6
            for cred in kty_world.credentials.values()
        }
        assert len(tags) == len(kty_world.credentials)

    def test_cross_session_tags_differ(self, kty_world):
        """Unlinkability across sessions survives shielding: different
        sessions impose different T7, so the same member's T6 changes."""
        pk = kty_world.manager.public_key
        cred = kty_world.credentials["alice"]
        t6_a = cred.sign(b"m", kty_world.rng, shield=kty.common_shield(pk, b"s1")).t6
        t6_b = cred.sign(b"m", kty_world.rng, shield=kty.common_shield(pk, b"s2")).t6
        assert t6_a != t6_b

    def test_expected_shield_enforced(self, kty_world):
        pk = kty_world.manager.public_key
        shield = kty.common_shield(pk, b"session")
        other = kty.common_shield(pk, b"other")
        cred = kty_world.credentials["alice"]
        view = kty_world.manager.member_view()
        sig = cred.sign(b"m", kty_world.rng, shield=shield)
        assert kty.verify(pk, b"m", sig, view, expected_shield=shield)
        assert not kty.verify(pk, b"m", sig, view, expected_shield=other)

    def test_check_self_distinction(self, kty_world):
        pk = kty_world.manager.public_key
        shield = kty.common_shield(pk, b"session")
        a = kty_world.credentials["alice"].sign(b"m", kty_world.rng, shield=shield)
        b = kty_world.credentials["bob"].sign(b"m", kty_world.rng, shield=shield)
        a2 = kty_world.credentials["alice"].sign(b"m", kty_world.rng, shield=shield)
        assert kty.check_self_distinction([a, b], shield)
        assert not kty.check_self_distinction([a, a2], shield)
        unshielded = kty_world.credentials["alice"].sign(b"m", kty_world.rng)
        assert not kty.check_self_distinction([a, unshielded], shield)


class TestClaiming:
    """The KTY claiming operation: prove authorship via (T6, T7)."""

    def test_claim_verifies(self, kty_world):
        cred = kty_world.credentials["alice"]
        sig = cred.sign(b"m", kty_world.rng)
        claim = cred.claim(sig, kty_world.rng)
        assert claim.verify(kty_world.manager.public_key, sig)

    def test_cannot_claim_others_signature(self, kty_world):
        alice = kty_world.credentials["alice"]
        bob = kty_world.credentials["bob"]
        sig = alice.sign(b"m", kty_world.rng)
        with pytest.raises(VerificationError):
            bob.claim(sig, kty_world.rng)

    def test_claim_bound_to_signature(self, kty_world):
        """A valid claim on one signature does not transfer to another."""
        cred = kty_world.credentials["alice"]
        sig1 = cred.sign(b"m1", kty_world.rng)
        sig2 = cred.sign(b"m2", kty_world.rng)
        claim = cred.claim(sig1, kty_world.rng)
        assert not claim.verify(kty_world.manager.public_key, sig2)

    def test_tampered_claim_rejected(self, kty_world):
        cred = kty_world.credentials["alice"]
        sig = cred.sign(b"m", kty_world.rng)
        claim = cred.claim(sig, kty_world.rng)
        bad = replace(claim, response=claim.response + 1)
        assert not bad.verify(kty_world.manager.public_key, sig)

    def test_out_of_range_claim_rejected(self, kty_world):
        cred = kty_world.credentials["alice"]
        lengths = kty_world.manager.lengths
        sig = cred.sign(b"m", kty_world.rng)
        claim = cred.claim(sig, kty_world.rng)
        huge = 1 << (lengths.epsilon * (lengths.lambda2 + lengths.k) + 5)
        assert not replace(claim, response=huge).verify(
            kty_world.manager.public_key, sig
        )

    def test_claim_works_on_shielded_signatures(self, kty_world):
        """A participant can later prove 'that was me' for a handshake
        signature (useful for voluntary de-anonymization)."""
        pk = kty_world.manager.public_key
        shield = kty.common_shield(pk, b"session")
        cred = kty_world.credentials["alice"]
        sig = cred.sign(b"m", kty_world.rng, shield=shield)
        claim = cred.claim(sig, kty_world.rng)
        assert claim.verify(pk, sig)


class TestRevocation:
    def _world(self, rng):
        manager = kty.KtyManager("tiny", rng)
        creds = {}
        for name in ("u1", "u2", "u3"):
            cred, update = manager.join(name, rng)
            for other in creds.values():
                other.apply_update(update)
            creds[name] = cred
        return manager, creds

    def test_crl_rejects_revoked(self, rng):
        manager, creds = self._world(rng)
        sig_before = creds["u2"].sign(b"m", rng)
        assert kty.verify(manager.public_key, b"m", sig_before,
                          manager.member_view())
        update = manager.revoke("u2")
        for cred in creds.values():
            cred.apply_update(update)
        # Old and new signatures by u2 now fail the CRL check.
        assert not kty.verify(manager.public_key, b"m", sig_before,
                              manager.member_view())
        with pytest.raises(RevocationError):
            creds["u2"].sign(b"m2", rng)
        creds["u2"].revoked = False  # adversarially ignore the flag
        sneaky = creds["u2"].sign(b"m2", rng)
        assert not kty.verify(manager.public_key, b"m2", sneaky,
                              manager.member_view())

    def test_member_side_crl_view(self, rng):
        manager, creds = self._world(rng)
        update = manager.revoke("u3")
        for cred in creds.values():
            cred.apply_update(update)
        # u1 verifies u2's signature with its *local* CRL view.
        sig = creds["u2"].sign(b"m", rng)
        assert kty.verify(manager.public_key, b"m", sig, creds["u1"].member_view())
        sneaky = creds["u3"]
        sneaky.revoked = False
        bad = sneaky.sign(b"m", rng)
        assert not kty.verify(manager.public_key, b"m", bad,
                              creds["u1"].member_view())

    def test_survivors_unaffected(self, rng):
        manager, creds = self._world(rng)
        update = manager.revoke("u2")
        for cred in creds.values():
            cred.apply_update(update)
        sig = creds["u1"].sign(b"m", rng)
        assert kty.verify(manager.public_key, b"m", sig, manager.member_view())
