"""Tests for F_p^2, curve arithmetic, the Tate pairing and SOK."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.pairing.curve import Curve, curve_params
from repro.pairing.fields import Fp2
from repro.pairing.sok import SokAuthority, shared_key
from repro.pairing.tate import tate_pairing

CURVE = curve_params("pf256")
P_MOD = CURVE.p

_elements = st.builds(
    lambda a, b: Fp2(a, b, P_MOD),
    st.integers(min_value=0, max_value=P_MOD - 1),
    st.integers(min_value=0, max_value=P_MOD - 1),
)


class TestFp2:
    @given(_elements, _elements, _elements)
    @settings(max_examples=30)
    def test_ring_laws(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x + y == y + x
        assert (x * y) * z == x * (y * z)
        assert x * y == y * x
        assert x * (y + z) == x * y + x * z

    @given(_elements)
    @settings(max_examples=30)
    def test_inverse(self, x):
        if x.is_zero:
            with pytest.raises(ParameterError):
                x.inv()
        else:
            assert (x * x.inv()).is_one

    @given(_elements)
    @settings(max_examples=20)
    def test_conjugate_norm(self, x):
        assert (x * x.conjugate()) == Fp2.of(x.norm(), P_MOD)

    def test_i_squared(self):
        i = Fp2.i(P_MOD)
        assert i * i == Fp2.of(-1, P_MOD)

    @given(_elements, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20)
    def test_pow_matches_repeated_multiplication(self, x, e):
        if x.is_zero:
            return
        expected = Fp2.one(P_MOD)
        for _ in range(e % 16):
            expected = expected * x
        assert x ** (e % 16) == expected

    def test_mixed_field_rejected(self):
        other = Fp2(1, 1, 103)
        with pytest.raises(ParameterError):
            _ = Fp2(1, 1, P_MOD) + other


class TestCurve:
    def test_params_consistent(self):
        assert CURVE.p % 4 == 3
        assert (CURVE.p + 1) == CURVE.q * CURVE.cofactor

    def test_bad_params_rejected(self):
        with pytest.raises(ParameterError):
            Curve(13, 7, 2)  # 13 = 1 mod 4
        with pytest.raises(ParameterError):
            Curve(11, 5, 3)  # order mismatch

    def test_point_membership(self, rng):
        point = CURVE.random_point(rng)
        assert CURVE.contains(point)
        assert CURVE.contains(None)

    def test_order_q(self, rng):
        point = CURVE.random_point(rng)
        assert CURVE.multiply(point, CURVE.q) is None

    def test_group_laws(self, rng):
        p1, p2 = CURVE.random_point(rng), CURVE.random_point(rng)
        assert CURVE.add(p1, None) == p1
        assert CURVE.add(None, p1) == p1
        assert CURVE.add(p1, CURVE.negate(p1)) is None
        assert CURVE.add(p1, p2) == CURVE.add(p2, p1)

    def test_scalar_distributes(self, rng):
        point = CURVE.random_point(rng)
        a, b = rng.randrange(1, 1000), rng.randrange(1, 1000)
        left = CURVE.multiply(point, a + b)
        right = CURVE.add(CURVE.multiply(point, a), CURVE.multiply(point, b))
        assert left == right

    def test_distortion_map_on_curve(self, rng):
        point = CURVE.random_point(rng)
        distorted = CURVE.distort(point)
        assert CURVE.contains(distorted)
        assert not distorted.x.b == distorted.y.b == 0  # off the base field

    def test_hash_to_point(self):
        p1 = CURVE.hash_to_point("alpha")
        p2 = CURVE.hash_to_point("alpha")
        p3 = CURVE.hash_to_point("beta")
        assert p1 == p2 != p3
        assert CURVE.contains(p1)
        assert CURVE.multiply(p1, CURVE.q) is None

    def test_unknown_curve(self):
        with pytest.raises(ParameterError):
            curve_params("nope")


class TestTatePairing:
    def test_nondegenerate(self, rng):
        point = CURVE.generator()
        value = tate_pairing(CURVE, point, point)
        assert not value.is_one
        assert (value ** CURVE.q).is_one

    def test_bilinearity(self, rng):
        p1, p2 = CURVE.random_point(rng), CURVE.random_point(rng)
        base = tate_pairing(CURVE, p1, p2)
        a, b = rng.randrange(2, CURVE.q), rng.randrange(2, CURVE.q)
        assert tate_pairing(CURVE, CURVE.multiply(p1, a), p2) == base ** a
        assert tate_pairing(CURVE, p1, CURVE.multiply(p2, b)) == base ** b
        assert tate_pairing(
            CURVE, CURVE.multiply(p1, a), CURVE.multiply(p2, b)
        ) == base ** ((a * b) % CURVE.q)

    def test_symmetry(self, rng):
        """The modified pairing on the base-field subgroup is symmetric."""
        p1, p2 = CURVE.random_point(rng), CURVE.random_point(rng)
        assert tate_pairing(CURVE, p1, p2) == tate_pairing(CURVE, p2, p1)

    def test_infinity_gives_one(self, rng):
        point = CURVE.random_point(rng)
        assert tate_pairing(CURVE, None, point).is_one
        assert tate_pairing(CURVE, point, None).is_one


class TestSok:
    def test_key_agreement(self, rng):
        authority = SokAuthority(CURVE, rng=rng)
        sa = authority.extract("alice")
        sb = authority.extract("bob")
        k_ab = shared_key(CURVE, sa, authority.identity_point("bob"),
                          True, "alice", "bob")
        k_ba = shared_key(CURVE, sb, authority.identity_point("alice"),
                          False, "bob", "alice")
        assert k_ab == k_ba

    def test_cross_authority_mismatch(self, rng):
        auth1 = SokAuthority(CURVE, rng=rng)
        auth2 = SokAuthority(CURVE, rng=rng)
        k1 = shared_key(CURVE, auth1.extract("alice"),
                        auth1.identity_point("bob"), True, "alice", "bob")
        k2 = shared_key(CURVE, auth2.extract("bob"),
                        auth2.identity_point("alice"), False, "bob", "alice")
        assert k1 != k2

    def test_zero_master_rejected(self):
        with pytest.raises(ParameterError):
            SokAuthority(CURVE, master_secret=CURVE.q)
