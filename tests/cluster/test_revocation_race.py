"""Mid-handshake revocation race on a 2-shard cluster.

A member is revoked *between* Phase I and Phase III of its own handshake:
the epoch seals after everyone derived k' from the pre-epoch group key
but before the group signatures are produced.  The survivors' credentials
absorb the epoch update, so at conclude time their verification view
carries the new accumulator value — the stale-epoch signature fails the
structural check and the room fails for everyone as a *crypto verdict*:
``success=False``, ``retryable=False``, the room itself "completed" (no
abort), and every party's message books show the full protocol ran.
A post-epoch room among the survivors then succeeds normally.
"""

import asyncio
import random

import pytest

from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.framework import GcdFramework
from repro.core.scheme1 import scheme1_policy
from repro.revocation import RevocationService
from repro.service import ClientConfig, run_room

TEST_CAP = 120.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


class _SealTrigger:
    """Seals the pending epoch exactly once, at the first Phase III
    signature of *any* party — the tightest race the protocol allows.
    Every party's Phase I consumed the old group key before anyone can
    reach Phase III (signing needs everyone's earlier broadcasts), so
    the epoch lands between Phase I and Phase III no matter how the
    event loop interleaves the parties.  Survivors then sign with the
    new epoch while the revoked member's view stays stale, making the
    all-parties-fail verdict schedule-independent."""

    def __init__(self, service):
        self._service = service
        self.sealed = False

    def fire(self):
        if not self.sealed and self._service.pending():
            self._service.seal_epoch()
            self.sealed = True


class _SealOnSign:
    """Member proxy that pulls the shared trigger before signing."""

    def __init__(self, member, trigger):
        self._member = member
        self._trigger = trigger

    def __getattr__(self, name):
        return getattr(self._member, name)

    def gsig_sign(self, message, rng=None, shield=None):
        self._trigger.fire()
        return self._member.gsig_sign(message, rng, shield=shield)


@pytest.fixture(scope="module")
def race_world():
    rng = random.Random(6060)
    framework = GcdFramework.create("race", gsig_kind="acjt",
                                    gsig_profile="tiny", rng=rng)
    service = RevocationService(framework, register=False)
    members = {name: service.admit(name, rng)
               for name in ("ann", "ben", "mallory")}
    return framework, service, members


class TestMidHandshakeRevocation:
    def test_race_fails_cleanly_on_two_shard_cluster(self, race_world):
        _, service, members = race_world
        policy = scheme1_policy()
        service.revoke("mallory")
        trigger = _SealTrigger(service)
        lineup = [_SealOnSign(members[u], trigger)
                  for u in ("ann", "ben", "mallory")]
        m = len(lineup)

        raced_rec = metrics.Recorder()
        survivor_rec = metrics.Recorder()

        async def scenario():
            async with ClusterRouter(ClusterConfig(shards=2)) as router:
                with metrics.using(raced_rec):
                    raced = await run_room(
                        lineup, ClientConfig(port=router.port, room="raced"),
                        policy)
                with metrics.using(survivor_rec):
                    survivors = await run_room(
                        [members["ann"], members["ben"]],
                        ClientConfig(port=router.port, room="after"),
                        policy)
                return raced, survivors

        raced, survivors = _run(scenario())

        # The epoch really sealed mid-handshake.
        assert trigger.sealed
        assert service.pending() == ()
        assert service.stats()["revoked"] == 1

        # The raced room fails for everyone, as a terminal crypto verdict
        # (typed outcome, not a retryable transport blip, not an abort).
        assert all(not o.success for o in raced)
        assert all(not o.retryable for o in raced)
        assert all(o.session_key is None for o in raced)

        # Books: the full protocol ran to conclusion in the raced room —
        # every party still broadcast all 4 protocol messages and heard
        # the other parties' — the failure is a verdict, not a hang.
        snap = raced_rec.snapshot()
        seal_books = snap.get("rev:seal")
        assert seal_books is not None and seal_books.modexp >= 1
        for i in range(m):
            books = snap.get(f"hs:{i}")
            assert books is not None, f"no books for hs:{i}"
            assert books.messages_sent == 4
            assert books.messages_received == 4 * (m - 1)

        # Post-epoch, the survivors handshake normally: their witnesses
        # tracked the sealed batch without any manager round-trip.
        assert all(o.success for o in survivors)
        keys = {o.session_key for o in survivors}
        assert len(keys) == 1 and None not in keys
        assert all(members[u].credential.witness_is_current()
                   for u in ("ann", "ben"))
