"""Trace continuity across shard failover + redaction of shipped telemetry.

Two PR acceptance criteria live here:

* **one room, one trace** — a room whose owning shard is SIGKILLed mid
  fill is re-placed onto the survivor; because every member of the room
  presents the *same* HELLO trace context (and a rejoining client reuses
  the context it first minted), the survivor's ``room``/``room:fill``
  spans and the router's second ``place`` span (``replaced=true``) share
  the original trace id — Perfetto shows one trace spanning the kill;
* **redaction holds for shipped telemetry** — span batches that crossed
  the shard→router pipe and the Prometheus exposition of the merged
  STATUS carry no member identifiers, no rendezvous room names, and no
  hex runs long enough to be key/payload material.
"""

import asyncio
import json
import random
import re

import pytest

from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.cluster.placement import HashRing
from repro.core.scheme1 import scheme1_policy
from repro.obs import spans as obs
from repro.obs import telemetry
from repro.service import ClientConfig, join_room, query_status

TEST_CAP = 120.0

#: Long hex = key/payload material.  Room tokens and trace ids are 16
#: hex chars and allowed; 20+ is a leak.
_MATERIAL = re.compile(r"[0-9a-f]{20,}")


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


def _room_on_shard(config, shard_id, prefix):
    ring = HashRing(replicas=config.ring_replicas)
    for i in range(config.shards):
        ring.add(i)
    i = 0
    while True:
        name = f"{prefix}-{i}"
        if ring.place(name) == shard_id:
            return name
        i += 1


@pytest.fixture(scope="module")
def failover_world(request):
    """One traced kill-failover run, shared by the continuity and the
    redaction tests (cluster spawns are expensive)."""
    world = request.getfixturevalue("scheme1_world")
    members = world.lineup(*sorted(world.members)[:2])
    policy = scheme1_policy()
    config = ClusterConfig(shards=2, heartbeat_interval=0.1, trace=True)
    room = _room_on_shard(config, 0, "secret-rendezvous")
    trace_id = obs.mint_trace_id()

    async def scenario():
        async with ClusterRouter(config) as router:
            cfg = ClientConfig(port=router.port, room=room, m=2,
                               backoff_base=0.05, backoff_max=0.3,
                               deadline=30.0, trace=trace_id)
            joined = asyncio.Event()
            first = asyncio.ensure_future(join_room(
                members[0], cfg, policy, random.Random(1), joined=joined))
            await joined.wait()        # room filling on shard 0
            router.kill_shard(0)       # mid-fill SIGKILL
            second = asyncio.ensure_future(join_room(
                members[1], cfg, policy, random.Random(2)))
            outcomes = await asyncio.gather(first, second)
            # Two heartbeats so the survivor ships its finished spans.
            await asyncio.sleep(3 * config.heartbeat_interval)
            shipped = router.shipped_spans()
            status = await query_status("127.0.0.1", router.port)
            return outcomes, shipped, status

    recorder = metrics.Recorder()
    recorder.tracing = True            # router placement + client spans
    with metrics.using(recorder):
        outcomes, shipped, status = _run(scenario())
    return {
        "members": members,
        "room": room,
        "trace_id": trace_id,
        "outcomes": outcomes,
        "shipped": shipped,
        "status": status,
        "local_spans": [s.as_dict() for s in recorder.spans()],
    }


class TestTraceContinuity:
    def test_room_completes_despite_kill(self, failover_world):
        assert all(o.success for o in failover_world["outcomes"])

    def test_replacement_span_shares_the_trace(self, failover_world):
        """The router placed the room twice — once on the doomed shard,
        once (``replaced=true``) on the survivor — and both placement
        spans carry the client's trace id."""
        places = [row for row in failover_world["local_spans"]
                  if row["name"] == "place"]
        assert len(places) >= 2
        assert all(row["trace_id"] == failover_world["trace_id"]
                   for row in places)
        assert any(row.get("attr.replaced") is True for row in places)
        assert any(row.get("attr.replaced") is False for row in places)

    def test_survivor_room_spans_share_the_trace(self, failover_world):
        """The re-placed room's server-side spans, shipped over the
        heartbeat channel from the surviving shard, carry the same trace
        id the client minted before the kill."""
        shipped = failover_world["shipped"]
        survivor = shipped.get(1) or {}
        rows = survivor.get("spans") or []
        rooms = [row for row in rows if row["name"] == "room"]
        assert rooms, "survivor shipped no room spans"
        assert any(row["trace_id"] == failover_world["trace_id"]
                   for row in rooms)
        # Children (fill/relay) link into the same trace.
        fills = [row for row in rows if row["name"] == "room:fill"
                 and row["trace_id"] == failover_world["trace_id"]]
        assert fills
        assert survivor.get("epoch") is not None

    def test_client_spans_share_the_trace(self, failover_world):
        handshakes = [row for row in failover_world["local_spans"]
                      if row["name"] == "handshake"]
        assert handshakes
        assert all(row["trace_id"] == failover_world["trace_id"]
                   for row in handshakes)

    def test_merged_trace_has_client_router_and_shard_lanes(
            self, failover_world):
        sources = [
            {"label": "client", "epoch": None,
             "spans": failover_world["local_spans"]},
        ] + [
            {"label": f"shard:{sid}", "epoch": batch.get("epoch"),
             "spans": batch.get("spans") or []}
            for sid, batch in sorted(failover_world["shipped"].items())
        ]
        doc = telemetry.merge_chrome_trace(sources)
        lanes = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "client" in lanes and "shard:1" in lanes
        traced = {e["args"].get("trace_id")
                  for e in doc["traceEvents"] if e["ph"] == "X"}
        assert failover_world["trace_id"] in traced


#: Any integer this large in telemetry is group-element/key material —
#: counts, indices and ports all fit in 64 bits.
_BIGINT = 1 << 64


def _scan_doc(value, failures, path="$"):
    """Walk a JSON-able document: long hex in strings and oversized ints
    are material; floats are timestamps/durations and never are (their
    digit runs are what a naive text regex false-positives on)."""
    if isinstance(value, str):
        if _MATERIAL.search(value):
            failures.append(f"{path}: hex material {value[:40]!r}")
    elif isinstance(value, bool):
        pass
    elif isinstance(value, int):
        if abs(value) >= _BIGINT:
            failures.append(f"{path}: bigint material ({value.bit_length()}b)")
    elif isinstance(value, dict):
        for key, item in value.items():
            _scan_doc(key, failures, f"{path}.{key}")
            _scan_doc(item, failures, f"{path}.{key}")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _scan_doc(item, failures, f"{path}[{i}]")


class TestShippedTelemetryRedaction:
    def _scan(self, doc, failover_world):
        text = json.dumps(doc)
        for member in failover_world["members"]:
            ident = getattr(member, "user_id", None)
            if ident:
                assert ident not in text
        assert failover_world["room"] not in text
        failures = []
        _scan_doc(doc, failures)
        assert not failures, failures[:5]

    def test_shipped_span_batches_leak_nothing(self, failover_world):
        shipped = failover_world["shipped"]
        assert any(row["name"] == "room" for batch in shipped.values()
                   for row in batch.get("spans") or [])
        self._scan(shipped, failover_world)

    def test_local_spans_leak_nothing(self, failover_world):
        self._scan(failover_world["local_spans"], failover_world)

    def test_prometheus_output_leaks_nothing(self, failover_world):
        text = telemetry.prometheus_exposition(failover_world["status"])
        assert "repro_up 1" in text
        assert "repro_counter_total" in text
        for member in failover_world["members"]:
            ident = getattr(member, "user_id", None)
            if ident:
                assert ident not in text
        assert failover_world["room"] not in text
        # Scan each line with its numeric sample value stripped — metric
        # values are floats whose digits would false-positive as hex.
        for line in text.splitlines():
            head, _, tail = line.rpartition(" ")
            scannable = head if _is_number(tail) else line
            for run in _MATERIAL.findall(scannable):
                pytest.fail(f"suspicious hex material: {run[:40]}…")

    def test_trace_ids_stay_below_material_threshold(self, failover_world):
        assert _MATERIAL.match(failover_world["trace_id"]) is None


def _is_number(token):
    try:
        float(token)
    except ValueError:
        return False
    return True
