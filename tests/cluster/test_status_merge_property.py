"""Property test: merging per-shard histogram summaries is exact.

``merge_histogram_summaries`` claims the merged distribution is what one
histogram would hold had every observation landed in it — not an
approximation.  Hypothesis checks that claim over arbitrary samples,
arbitrary shard partitions, and arbitrary summary orderings:

* **order-insensitive** — any permutation of the shard summaries merges
  to the *byte-identical* document: the merge folds the per-shard sums
  with :func:`math.fsum`, whose result is the correctly-rounded exact
  sum and hence independent of the fold order, so ``sum`` and ``mean``
  compare with ``==`` here, not approximately;
* **equals the single recorder** — count, buckets, extrema, clamped and
  the derived percentiles match a reference histogram that observed the
  union of the samples directly.  ``sum``/``mean`` still compare
  approximately against the *reference* recorder, whose running
  ``+=`` accumulation is a different (inexact) float fold.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import merge_histogram_summaries
from repro.metrics import Histogram

#: Deliberately narrow bounds so generated samples exercise every bucket
#: including overflow (values above 1.0 -> clamped).
BOUNDS = (0.001, 0.01, 0.1, 1.0)

_samples = st.lists(
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    max_size=60)


def _shard_summaries(samples, parts, rng):
    shards = [Histogram("svc:relay-latency", BOUNDS)
              for _ in range(parts)]
    for value in samples:
        shards[rng.randrange(parts)].observe(value)
    summaries = [h.summary() for h in shards]
    rng.shuffle(summaries)
    return summaries


@settings(max_examples=80, deadline=None)
@given(samples=_samples, parts=st.integers(1, 5),
       seed=st.integers(0, 2**16))
def test_merge_equals_single_recorder(samples, parts, seed):
    rng = random.Random(seed)
    summaries = _shard_summaries(samples, parts, rng)
    merged = merge_histogram_summaries("svc:relay-latency", summaries)

    reference = Histogram("svc:relay-latency", BOUNDS)
    for value in samples:
        reference.observe(value)
    want = reference.summary()

    assert merged is not None
    # Exact fields: integer counts and extrema that are picked, not
    # accumulated, so shard partitioning cannot perturb them.
    for field in ("count", "min", "max", "clamped", "buckets"):
        assert merged[field] == want[field], field
    # Percentiles read only buckets + extrema, so they merge exactly too.
    for field in ("p50", "p90", "p99"):
        assert merged[field] == want[field], field
    # Float folds: same values, different grouping.
    assert merged["sum"] == pytest.approx(want["sum"])
    assert merged["mean"] == pytest.approx(want["mean"])


@settings(max_examples=40, deadline=None)
@given(samples=_samples, parts=st.integers(2, 5),
       seed=st.integers(0, 2**16))
def test_merge_is_order_insensitive(samples, parts, seed):
    rng = random.Random(seed)
    summaries = _shard_summaries(samples, parts, rng)
    forward = merge_histogram_summaries("h", list(summaries))
    backward = merge_histogram_summaries("h", list(reversed(summaries)))
    assert forward is not None and backward is not None
    # fsum makes the float folds exact, so the whole document — sum and
    # mean included — is equal, not merely approximately equal.
    assert forward == backward


def test_merge_of_nothing_is_none():
    assert merge_histogram_summaries("h", []) is None
    # Summaries with no buckets (malformed shard line) are skipped.
    assert merge_histogram_summaries("h", [{"count": 3}]) is None
