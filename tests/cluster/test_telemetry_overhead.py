"""Cluster telemetry overhead guard (CI satellite).

PR 3 proved spans are observationally free inside one process; this is
the cluster-wide restatement now that telemetry crosses processes: with
trace propagation, span shipping *and* a live STATUS sampler all on, a
seeded 3-party room routed through a 2-shard cluster produces per-party
(modexp, sent, received) books and session keys byte-identical to the
same run with every telemetry feature off.  A regression here means
instrumentation leaked into protocol logic — or into the seeded RNG
streams (trace ids must come from :mod:`secrets`, never
:mod:`random`)."""

import asyncio
import random

from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.scheme1 import scheme1_policy
from repro.obs import telemetry
from repro.service import ClientConfig, run_room

TEST_CAP = 120.0
M = 3


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


def _per_party(recorder):
    snap = recorder.snapshot()
    return [
        (snap[f"hs:{i}"].modexp,
         snap[f"hs:{i}"].messages_sent,
         snap[f"hs:{i}"].messages_received)
        for i in range(M)
    ]


def _leg(scheme1_world, telemetry_on, prom_dir=None):
    """One seeded cluster room; with ``telemetry_on`` the full stack is
    live: shard tracing + span shipping, client trace minting, and a
    StatusSampler polling (and optionally writing Prometheus files)
    throughout the room's lifetime."""
    members = scheme1_world.lineup(*sorted(scheme1_world.members)[:M])
    policy = scheme1_policy()
    config = ClusterConfig(shards=2, token_seeds=[4242, 4242],
                           heartbeat_interval=0.1, trace=telemetry_on)
    rngs = [random.Random(9100 + i) for i in range(M)]

    recorder = metrics.Recorder()
    recorder.tracing = telemetry_on

    async def scenario():
        async with ClusterRouter(config) as router:
            sampler = sampler_task = None
            if telemetry_on:
                sampler = telemetry.StatusSampler(
                    "127.0.0.1", router.port, interval=0.1,
                    client_recorder=recorder, prom_dir=prom_dir)
                sampler_task = asyncio.ensure_future(sampler.run())
            cfg = ClientConfig(port=router.port, room="freeness", m=M)
            outcomes = await run_room(members, cfg, policy, rngs=rngs)
            shipped = {}
            if telemetry_on:
                await asyncio.sleep(3 * config.heartbeat_interval)
                await sampler.stop(sampler_task)
                shipped = router.shipped_spans()
            return outcomes, shipped, sampler

    with metrics.using(recorder):
        outcomes, shipped, sampler = _run(scenario())
    assert all(o.success for o in outcomes)
    keys = [o.session_key for o in outcomes]
    return _per_party(recorder), keys, recorder, shipped, sampler


def test_full_telemetry_stack_is_observationally_free(scheme1_world,
                                                      tmp_path):
    books_off, keys_off, rec_off, shipped_off, _ = _leg(
        scheme1_world, telemetry_on=False)
    books_on, keys_on, rec_on, shipped_on, sampler = _leg(
        scheme1_world, telemetry_on=True, prom_dir=str(tmp_path))

    # The freeness theorem, cluster-wide: identical books ...
    assert books_on == books_off
    # ... and byte-identical session keys (same seeds, same keys).
    assert None not in keys_off
    assert keys_on == keys_off

    # The on-leg really exercised the whole stack — this guard must not
    # pass vacuously.
    assert any(batch.get("spans") for batch in shipped_on.values())
    assert sampler is not None and len(sampler.series) >= 2
    assert list(tmp_path.glob("repro-*.prom"))

    # And the off-leg really was silent: no spans recorded locally, none
    # shipped over the heartbeat channel.
    assert rec_off.spans() == []
    assert shipped_off == {}
    assert rec_off.total().extra.get("svc-cluster:span-batches", 0) == 0
