"""End-to-end tests for the multi-process cluster (router + shards).

The load-bearing assertions here are the PR's acceptance criteria: a
5-party handshake routed through a 2-shard cluster produces per-party
E1/E2 counter books and session keys identical to the single-process
server, and killing a shard mid-burst yields only clean retryable client
outcomes — never a hang, never an unhandled router exception.
"""

import asyncio
import random

import pytest

from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter, merge_histogram_summaries
from repro.cluster.placement import HashRing
from repro.core.scheme1 import scheme1_policy
from repro.service import (
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    join_room,
    query_status,
    run_room,
)

#: Outer cap per test; cluster tests pay ~2s of process spawn on top of
#: the handshakes themselves.
TEST_CAP = 120.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


def _lineup(world, count):
    names = sorted(world.members)[:count]
    return world.lineup(*names)


def _rooms_on_shard(router_config, shard_id, count, prefix="pick"):
    """Room names the cluster will place on ``shard_id`` — computed on an
    identical offline ring, valid because placement is deterministic."""
    ring = HashRing(replicas=router_config.ring_replicas)
    for i in range(router_config.shards):
        ring.add(i)
    names = []
    i = 0
    while len(names) < count:
        name = f"{prefix}-{i}"
        if ring.place(name) == shard_id:
            names.append(name)
        i += 1
    return names


class TestClusterSmoke:
    def test_two_shard_room_and_aggregated_status(self, scheme1_world):
        members = _lineup(scheme1_world, 2)

        async def scenario():
            config = ClusterConfig(shards=2, heartbeat_interval=0.1)
            async with ClusterRouter(config) as router:
                cfg = ClientConfig(port=router.port, room="smoke")
                outcomes = await run_room(members, cfg, scheme1_policy())
                # Let the owning shard's next heartbeat carry the books.
                await asyncio.sleep(0.4)
                status = await query_status("127.0.0.1", router.port)
                return outcomes, status

        # Fresh recorder: the router's svc-cluster:* counters land in the
        # ambient recorder, which is process-global across tests.
        with metrics.using(metrics.Recorder()):
            outcomes, status = _run(scenario())
        assert all(o.success for o in outcomes)
        assert status["cluster"]["shards"] == 2
        assert status["cluster"]["states"].get("up") == [0, 1]
        assert status["outcomes"].get("completed", 0) >= 1
        assert status["counters"].get("svc-cluster:placements", 0) == 2
        # The merged histogram section carries real shard observations.
        relay = status["histograms"].get("svc:relay-latency")
        assert relay is not None and relay["count"] > 0

    def test_rooms_spread_and_books_merge_across_shards(self, scheme1_world):
        """Rooms hashed to different shards run concurrently; the
        aggregated STATUS sums both shards' room counts and counters."""
        members = _lineup(scheme1_world, 2)
        config = ClusterConfig(shards=2, heartbeat_interval=0.1)
        on_zero = _rooms_on_shard(config, 0, 2, prefix="spread")
        on_one = _rooms_on_shard(config, 1, 2, prefix="spread")

        async def scenario():
            async with ClusterRouter(config) as router:
                jobs = [
                    run_room(members,
                             ClientConfig(port=router.port, room=name),
                             scheme1_policy())
                    for name in on_zero + on_one
                ]
                results = await asyncio.gather(*jobs)
                await asyncio.sleep(0.4)
                status = await query_status("127.0.0.1", router.port)
                return results, status

        results, status = _run(scenario())
        assert all(o.success for room in results for o in room)
        assert status["outcomes"].get("completed") == 4
        assert status["counters"].get("svc:rooms-completed") == 4
        # Both shards really hosted rooms (placement spread the keys).
        for line in status["shards"].values():
            assert line["rooms"]["closed"] >= 1


class TestClusterParity:
    def test_five_party_books_and_keys_match_single_process(
            self, service_world):
        """Acceptance criterion: routing through the cluster changes
        nothing observable — identical per-party (modexp, sent, received)
        books in scope ``hs:<i>`` and identical session keys, against the
        single-process server with the same seeds.  Token seeds align the
        room's session id across legs; client rngs align the DGKA
        contributions the keys derive from."""
        members = _lineup(service_world, 5)
        policy = scheme1_policy()
        m = len(members)

        def fresh_rngs():
            return [random.Random(9100 + i) for i in range(m)]

        def per_party(recorder):
            snap = recorder.snapshot()
            return [
                (snap[f"hs:{i}"].modexp,
                 snap[f"hs:{i}"].messages_sent,
                 snap[f"hs:{i}"].messages_received)
                for i in range(m)
            ]

        async def single_leg():
            config = ServerConfig(token_rng=random.Random(4242))
            async with RendezvousServer(config) as server:
                cfg = ClientConfig(port=server.port, room="parity")
                return await run_room(members, cfg, policy,
                                      rngs=fresh_rngs())

        async def cluster_leg():
            config = ClusterConfig(shards=2, token_seeds=[4242, 4242])
            async with ClusterRouter(config) as router:
                cfg = ClientConfig(port=router.port, room="parity")
                return await run_room(members, cfg, policy,
                                      rngs=fresh_rngs())

        single_rec = metrics.Recorder()
        with metrics.using(single_rec):
            single_outcomes = _run(single_leg())
        cluster_rec = metrics.Recorder()
        with metrics.using(cluster_rec):
            cluster_outcomes = _run(cluster_leg())

        assert all(o.success for o in single_outcomes)
        assert all(o.success for o in cluster_outcomes)
        single_keys = [o.session_key for o in single_outcomes]
        cluster_keys = [o.session_key for o in cluster_outcomes]
        assert None not in single_keys
        assert single_keys == cluster_keys
        single_books = per_party(single_rec)
        assert per_party(cluster_rec) == single_books
        # And the books are the paper's profile, not merely equal junk:
        # 4 broadcasts per party, each received by the other m-1.
        assert all(sent == 4 and received == 4 * (m - 1)
                   for _, sent, received in single_books)


class TestAdmissionControl:
    def test_full_shard_sheds_busy_then_admits(self, scheme1_world):
        """A shard at its ``max_rooms`` ceiling sheds new rooms with BUSY;
        shed clients back off and re-HELLO (through the router, landing on
        the same owner — capacity never splits a room across shards) and
        are admitted once the slot frees."""
        members = _lineup(scheme1_world, 2)
        policy = scheme1_policy()
        config = ClusterConfig(shards=2, max_rooms_per_shard=1,
                               heartbeat_interval=0.1)
        # Both rooms on the same shard, so the second is shed while the
        # first holds the only slot.
        holder_room, queued_room = _rooms_on_shard(config, 0, 2)

        async def scenario():
            async with ClusterRouter(config) as router:
                holder_cfg = ClientConfig(port=router.port, room=holder_room)
                joined = asyncio.Event()
                first = asyncio.ensure_future(join_room(
                    members[0], holder_cfg, policy, random.Random(1),
                    joined=joined))
                await joined.wait()     # shard 0's slot is now taken
                shed_cfg = ClientConfig(port=router.port, room=queued_room,
                                        backoff_base=0.05, backoff_max=0.2)
                shed = [asyncio.ensure_future(join_room(
                            member, shed_cfg, policy, random.Random(10 + i)))
                        for i, member in enumerate(members)]
                await asyncio.sleep(0.4)    # guarantee at least one BUSY
                second = asyncio.ensure_future(join_room(
                    members[1], holder_cfg, policy, random.Random(2)))
                return await asyncio.gather(first, second, *shed)

        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcomes = _run(scenario())
        assert all(o.success for o in outcomes)
        assert recorder.total().extra.get("svc-client:busy-retries", 0) >= 1


class TestFailover:
    def test_kill_shard_mid_burst_only_retryable_outcomes(
            self, scheme1_world):
        """Acceptance criterion: SIGKILL one shard while a burst of rooms
        is in flight.  Every client outcome is either a success (the room
        re-placed onto the survivor) or an explicitly retryable failure —
        no hangs, no unhandled exceptions — and the router keeps
        answering STATUS afterwards."""
        members = _lineup(scheme1_world, 2)
        policy = scheme1_policy()
        config = ClusterConfig(shards=2, heartbeat_interval=0.1)
        # Three rooms on each shard: the kill provably hits live rooms.
        rooms = (_rooms_on_shard(config, 0, 3, prefix="burst")
                 + _rooms_on_shard(config, 1, 3, prefix="burst"))

        async def scenario():
            async with ClusterRouter(config) as router:
                jobs = [
                    asyncio.ensure_future(run_room(
                        members,
                        ClientConfig(port=router.port, room=name,
                                     backoff_base=0.05, backoff_max=0.3,
                                     deadline=30.0),
                        policy))
                    for name in rooms
                ]
                await asyncio.sleep(0.15)      # burst underway
                router.kill_shard(0)
                results = await asyncio.gather(*jobs)
                status = await query_status("127.0.0.1", router.port)
                return results, status

        results, status = _run(scenario())
        flat = [o for room in results for o in room]
        assert all(o.success or o.retryable for o in flat)
        # The survivor keeps completing rooms: at least the burst half
        # that lived on shard 1 plus every re-placed room that made it.
        assert sum(o.success for o in flat) >= 6
        assert status["cluster"]["states"].get("dead") == [0]
        assert status["cluster"]["states"].get("up") == [1]

    def test_drain_shard_migrates_unfilled_room_live(self, scheme1_world):
        """Graceful drain is a live migration: the half-filled room moves
        to the survivor with its waiting member attached in place — the
        client sees one MIGRATED frame, never an abort, never a retry.
        The second member's later HELLO is re-placed onto the survivor
        and lands in the *same* migrated room."""
        members = _lineup(scheme1_world, 2)
        policy = scheme1_policy()
        config = ClusterConfig(shards=2, heartbeat_interval=0.1)
        (room,) = _rooms_on_shard(config, 0, 1, prefix="drainee")

        async def scenario():
            async with ClusterRouter(config) as router:
                cfg = ClientConfig(port=router.port, room=room,
                                   backoff_base=0.05, backoff_max=0.3)
                joined = asyncio.Event()
                first = asyncio.ensure_future(join_room(
                    members[0], cfg, policy, random.Random(1),
                    joined=joined))
                await joined.wait()         # room filling on shard 0
                report = await router.drain_shard(0)
                second = asyncio.ensure_future(join_room(
                    members[1], cfg, policy, random.Random(2)))
                outcomes = await asyncio.gather(first, second)
                status = await query_status("127.0.0.1", router.port)
                return outcomes, status, report

        recorder = metrics.Recorder()
        with metrics.using(recorder):
            outcomes, status, report = _run(scenario())
        assert all(o.success for o in outcomes)
        assert report == {"migrated": 1, "completed": 0, "failed": 0}
        extra = recorder.total().extra
        # The waiting member was moved, not shed: one MIGRATED hop,
        # zero client retries (the old shed path forced a rejoin).
        assert extra.get("svc-client:migrations", 0) == 1
        assert extra.get("svc-client:retries", 0) == 0
        assert extra.get("svc-cluster:migrations", 0) == 1
        # The second HELLO crossed shards: placement recorded an explicit
        # re-placement away from the (draining) primary owner.
        assert extra.get("svc-cluster:replacements", 0) >= 1
        assert 0 not in status["cluster"]["states"].get("up", [])

    def test_no_live_shards_is_retryable_not_a_hang(self, scheme1_world):
        members = _lineup(scheme1_world, 2)
        config = ClusterConfig(shards=2, heartbeat_interval=0.1)

        async def scenario():
            async with ClusterRouter(config) as router:
                router.kill_shard(0)
                router.kill_shard(1)
                cfg = ClientConfig(port=router.port, room="nowhere",
                                   backoff_base=0.05, backoff_max=0.2,
                                   deadline=2.0)
                outcome = await join_room(members[0], cfg, scheme1_policy(),
                                          random.Random(5))
                status = await query_status("127.0.0.1", router.port)
                return outcome, status

        outcome, status = _run(scenario())
        assert not outcome.success
        assert outcome.retryable
        assert status["cluster"]["states"].get("dead") == [0, 1]


class TestStatusMerge:
    def test_merge_histogram_summaries_is_exact(self):
        """Merging two shard summaries equals one histogram that saw all
        observations — the raw bucket counts make the merge lossless."""
        bounds = [0.001, 0.01, 0.1, 1.0]
        one = metrics.Histogram("h", bounds)
        two = metrics.Histogram("h", bounds)
        both = metrics.Histogram("h", bounds)
        rng = random.Random(77)
        for _ in range(200):
            value = rng.random() * rng.choice([0.001, 0.01, 0.1, 2.0])
            (one if rng.random() < 0.5 else two).observe(value)
            both.observe(value)
        merged = merge_histogram_summaries(
            "h", [one.summary(), two.summary()])
        expected = both.summary()
        # sum/mean differ only by float-addition order; counts are exact.
        for key in ("sum", "mean"):
            assert merged.pop(key) == pytest.approx(expected.pop(key))
        assert merged == expected

    def test_merge_skips_incompatible_bounds(self):
        a = metrics.Histogram("h", [0.1, 1.0])
        b = metrics.Histogram("h", [0.5, 2.0])
        a.observe(0.05)
        b.observe(0.05)
        merged = merge_histogram_summaries("h", [a.summary(), b.summary()])
        assert merged == a.summary()     # the conflicting part is refused

    def test_merge_of_nothing_is_none(self):
        assert merge_histogram_summaries("h", []) is None
