"""Unit tests for shard-liveness bookkeeping (no processes spawned).

The regression pinned here: a :class:`ShardHandle` used to initialize
``last_heartbeat`` to ``0.0``, so ``heartbeat_age()`` reported the full
monotonic-clock epoch (hours) until the worker's *first* beat arrived —
one sweep in that window marked a perfectly healthy, slow-starting shard
DEAD at spawn.  Creation now counts as the first sign of life.
"""

import time

from repro.cluster.health import DEAD, UP, HealthMonitor, ShardHandle
from repro.cluster.shard import ShardSpec


def _monitor(stale_after=0.5):
    return HealthMonitor([ShardSpec(shard_id=0)], stale_after=stale_after)


class TestDelayedFirstHeartbeat:
    def test_fresh_handle_age_is_small_not_epochal(self):
        handle = ShardHandle(ShardSpec(shard_id=7))
        # Pre-fix this was ~time.monotonic() (the full clock epoch).
        assert handle.heartbeat_age() < 0.5

    def test_sweep_spares_a_shard_awaiting_its_first_beat(self):
        """The delayed-first-heartbeat regression: a worker marked UP
        whose first beat has not arrived yet must survive a sweep (its
        creation time is recent), not be declared heartbeat-stale."""
        monitor = _monitor(stale_after=0.5)
        handle = monitor.handles[0]
        handle.state = UP            # ("up", ...) seen, no ("hb", ...) yet
        monitor.sweep()
        assert handle.state == UP

    def test_sweep_still_catches_a_genuinely_stale_shard(self):
        monitor = _monitor(stale_after=0.5)
        handle = monitor.handles[0]
        handle.state = UP
        handle.last_heartbeat = time.monotonic() - 1.0   # wedged worker
        monitor.sweep()
        assert handle.state == DEAD

    def test_age_tracks_the_monotonic_clock(self):
        handle = ShardHandle(ShardSpec(shard_id=0))
        handle.last_heartbeat = time.monotonic() - 2.5
        assert 2.4 < handle.heartbeat_age() < 3.5
