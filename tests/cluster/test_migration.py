"""Live-migration acceptance tests: drain is a move, not a shed.

One traced 5-party room is caught **mid-Phase-II** (every party has
broadcast at least one DGKA round) and its shard drained.  The room is
checkpointed, restored on the peer shard and re-spliced; the claims
pinned here are the PR's acceptance criteria:

* every party succeeds with **zero** client retries and exactly one
  MIGRATED frame — no re-HELLO, no Phase I–III crypto re-run;
* per-party (modexp, sent, received) books and session keys are
  byte-identical to an unmigrated single-process run with the same
  seeds — the hop is invisible to the cryptography;
* the donor's room-scope relay book survives its death (replayed into
  the target's recorder from the checkpoint);
* span lanes from the donor shard, the target shard and the clients
  share one trace id across the hop.
"""

import asyncio
import random

import pytest

from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.cluster.placement import HashRing
from repro.core.scheme1 import scheme1_policy
from repro.obs import spans as obs
from repro.service import (
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    join_room,
    query_status,
)

TEST_CAP = 120.0


def _run(coroutine):
    async def capped():
        return await asyncio.wait_for(coroutine, TEST_CAP)
    return asyncio.run(capped())


def _room_on_shard(config, shard_id, prefix):
    ring = HashRing(replicas=config.ring_replicas)
    for i in range(config.shards):
        ring.add(i)
    i = 0
    while True:
        name = f"{prefix}-{i}"
        if ring.place(name) == shard_id:
            return name
        i += 1


def _fresh_rngs(m):
    return [random.Random(9100 + i) for i in range(m)]


def _per_party(recorder, m):
    snap = recorder.snapshot()
    return [
        (snap[f"hs:{i}"].modexp,
         snap[f"hs:{i}"].messages_sent,
         snap[f"hs:{i}"].messages_received)
        for i in range(m)
    ]


async def _mid_phase2(recorder, m):
    """Block until every party has broadcast at least one DGKA round —
    the room is provably ACTIVE and relaying (Phase II), with three more
    full fan-out rounds still ahead of it."""
    while True:
        snap = recorder.snapshot()
        if all(f"hs:{i}" in snap and snap[f"hs:{i}"].messages_sent >= 1
               for i in range(m)):
            return
        await asyncio.sleep(0.002)


@pytest.fixture(scope="module")
def migration_world(request):
    """One traced mid-Phase-II drain migration plus the unmigrated
    single-process control leg, shared by all assertions below (cluster
    spawns and 5-party handshakes are expensive)."""
    world = request.getfixturevalue("service_world")
    members = world.lineup(*sorted(world.members)[:5])
    policy = scheme1_policy()
    m = len(members)
    config = ClusterConfig(shards=2, heartbeat_interval=0.1, trace=True,
                           token_seeds=[4242, 4242])
    room = _room_on_shard(config, 0, "midflight")
    trace_id = obs.mint_trace_id()

    async def single_leg():
        server_config = ServerConfig(token_rng=random.Random(4242))
        async with RendezvousServer(server_config) as server:
            cfg = ClientConfig(port=server.port, room=room, m=m)
            rngs = _fresh_rngs(m)
            tasks = []
            for i, member in enumerate(members):
                joined = asyncio.Event()
                tasks.append(asyncio.ensure_future(join_room(
                    member, cfg, policy, rngs[i], joined=joined)))
                await joined.wait()    # roster order fixed, like run_room
            return await asyncio.gather(*tasks)

    async def migrated_leg(recorder):
        async with ClusterRouter(config) as router:
            cfg = ClientConfig(port=router.port, room=room, m=m,
                               backoff_base=0.05, backoff_max=0.3,
                               deadline=30.0, trace=trace_id)
            rngs = _fresh_rngs(m)
            tasks = []
            for i, member in enumerate(members):
                joined = asyncio.Event()
                tasks.append(asyncio.ensure_future(join_room(
                    member, cfg, policy, rngs[i], joined=joined)))
                await joined.wait()
            await _mid_phase2(recorder, m)
            report = await router.drain_shard(0)
            outcomes = await asyncio.gather(*tasks)
            # Two heartbeats so the target ships spans + final books.
            await asyncio.sleep(3 * config.heartbeat_interval)
            shipped = router.shipped_spans()
            status = await query_status("127.0.0.1", router.port)
            return outcomes, report, shipped, status

    single_rec = metrics.Recorder()
    with metrics.using(single_rec):
        single_outcomes = _run(single_leg())
    cluster_rec = metrics.Recorder()
    cluster_rec.tracing = True
    with metrics.using(cluster_rec):
        outcomes, report, shipped, status = _run(migrated_leg(cluster_rec))
    return {
        "m": m,
        "room": room,
        "trace_id": trace_id,
        "single_outcomes": single_outcomes,
        "single_rec": single_rec,
        "outcomes": outcomes,
        "report": report,
        "shipped": shipped,
        "status": status,
        "cluster_rec": cluster_rec,
        "local_spans": [s.as_dict() for s in cluster_rec.spans()],
    }


class TestMigrationIsInvisible:
    def test_room_was_actually_migrated_mid_flight(self, migration_world):
        assert migration_world["report"] == {
            "migrated": 1, "completed": 0, "failed": 0}
        counters = migration_world["status"]["counters"]
        assert counters.get("svc-cluster:migrations") == 1
        # The restore landed on the survivor: one room came in, five
        # members re-attached in place of HELLOs.
        assert counters.get("svc:rooms-migrated-in") == 1
        assert counters.get("svc:attaches") == migration_world["m"]

    def test_every_party_succeeds_with_zero_retries(self, migration_world):
        assert all(o.success for o in migration_world["outcomes"])
        extra = migration_world["cluster_rec"].total().extra
        # The old shed path forced aborts + re-HELLOs; the live migration
        # must complete the room with no client retry of any kind.
        assert extra.get("svc-client:retries", 0) == 0
        assert extra.get("svc-client:rejoin-retries", 0) == 0
        assert extra.get("svc-client:room-aborts", 0) == 0
        # Each of the five members saw exactly one MIGRATED frame.
        assert extra.get("svc-client:migrations") == migration_world["m"]

    def test_books_and_keys_match_the_unmigrated_run(self, migration_world):
        """The crypto cannot tell it was moved: same per-party
        (modexp, sent, received) books, same session keys, as the
        single-process control with identical seeds."""
        m = migration_world["m"]
        single_keys = [o.session_key
                       for o in migration_world["single_outcomes"]]
        migrated_keys = [o.session_key for o in migration_world["outcomes"]]
        assert None not in single_keys
        assert migrated_keys == single_keys
        single_books = _per_party(migration_world["single_rec"], m)
        assert _per_party(migration_world["cluster_rec"], m) == single_books
        # And the profile is the paper's: 4 broadcasts per party, each
        # received by the other m-1.
        assert all(sent == 4 and received == 4 * (m - 1)
                   for _, sent, received in single_books)

    def test_relay_book_survives_the_donor_shard(self, migration_world):
        """Frames relayed by the donor before the hop are replayed from
        the checkpoint into the target's recorder, so the merged cluster
        book equals the single-process control even though the donor is
        dead and excluded from the merge."""
        single_total = migration_world["single_rec"].total().extra
        merged = migration_world["status"]["counters"]
        assert merged.get("svc:messages-relayed") == \
            single_total.get("svc:messages-relayed")
        assert merged.get("svc:rooms-completed") == 1
        states = migration_world["status"]["cluster"]["states"]
        assert 0 not in states.get("up", [])


class TestTraceContinuity:
    def test_one_trace_spans_the_hop(self, migration_world):
        """Donor room spans, target restore/relay spans and the clients'
        handshake spans all carry the trace id minted before the drain —
        the hop reads as one trace."""
        trace_id = migration_world["trace_id"]
        shipped = migration_world["shipped"]
        donor_rows = (shipped.get(0) or {}).get("spans") or []
        target_rows = (shipped.get(1) or {}).get("spans") or []
        donor_rooms = [row for row in donor_rows if row["name"] == "room"
                       and row["trace_id"] == trace_id]
        assert donor_rooms, "donor shipped no traced room span"
        assert any(row.get("attr.outcome") == "migrated"
                   for row in donor_rooms)
        target_traced = [row for row in target_rows
                         if row["trace_id"] == trace_id]
        assert any(row["name"] == "room" for row in target_traced)
        assert any(row["name"] == "room:restore" for row in target_traced)
        handshakes = [row for row in migration_world["local_spans"]
                      if row["name"] == "handshake"]
        assert len(handshakes) == migration_world["m"]
        assert all(row["trace_id"] == trace_id for row in handshakes)
