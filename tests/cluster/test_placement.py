"""Unit tests for the consistent-hash placement ring."""

import pytest

from repro.cluster.placement import HashRing


def _ring(n, replicas=64):
    ring = HashRing(replicas=replicas)
    for i in range(n):
        ring.add(i)
    return ring


KEYS = [f"room-{i}" for i in range(500)]


class TestDeterminism:
    def test_same_key_same_shard(self):
        ring = _ring(4)
        assert all(ring.place(k) == ring.place(k) for k in KEYS)

    def test_independent_rings_agree(self):
        """Two routers (or a restarted one) must place identically — the
        reason hashing is SHA-256 and never PYTHONHASHSEED-dependent."""
        a, b = _ring(4), _ring(4)
        assert [a.place(k) for k in KEYS] == [b.place(k) for k in KEYS]

    def test_insertion_order_irrelevant(self):
        a = HashRing()
        for i in (0, 1, 2, 3):
            a.add(i)
        b = HashRing()
        for i in (3, 1, 0, 2):
            b.add(i)
        assert [a.place(k) for k in KEYS] == [b.place(k) for k in KEYS]


class TestSpread:
    def test_two_shards_roughly_even(self):
        counts = _ring(2).spread(KEYS)
        assert set(counts) == {0, 1}
        # Virtual nodes keep a 2-shard split within a loose band; a gross
        # imbalance would mean vnode hashing broke.
        assert min(counts.values()) > len(KEYS) * 0.25

    def test_every_shard_owns_something(self):
        counts = _ring(5).spread(KEYS)
        assert set(counts) == set(range(5))


class TestStability:
    def test_removal_moves_only_the_lost_shards_keys(self):
        """Consistent hashing's contract: dropping one shard re-homes its
        keys and *only* its keys."""
        ring = _ring(4)
        before = {k: ring.place(k) for k in KEYS}
        ring.remove(2)
        after = {k: ring.place(k) for k in KEYS}
        for key in KEYS:
            if before[key] != 2:
                assert after[key] == before[key]
            else:
                assert after[key] != 2

    def test_readding_restores_ownership(self):
        ring = _ring(4)
        before = {k: ring.place(k) for k in KEYS}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.place(k) for k in KEYS} == before


class TestFailover:
    def test_place_only_skips_excluded(self):
        ring = _ring(3)
        for key in KEYS[:100]:
            owner = ring.place(key)
            fallback = ring.place(key, only=set(range(3)) - {owner})
            assert fallback is not None and fallback != owner

    def test_fallback_follows_preference_order(self):
        """Explicit re-placement: the shard chosen when the primary is
        down is the *next* entry of the preference list, so every router
        lands on the same one."""
        ring = _ring(4)
        for key in KEYS[:100]:
            order = ring.preference(key)
            assert order[0] == ring.place(key)
            assert ring.place(key, only=set(order[1:])) == order[1]

    def test_no_candidates_yields_none(self):
        ring = _ring(2)
        assert ring.place("x", only=set()) is None
        assert HashRing().place("x") is None

    def test_preference_lists_every_shard_once(self):
        ring = _ring(5)
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert sorted(order) == list(range(5))


class TestValidation:
    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_double_add_remove_are_idempotent(self):
        ring = _ring(2)
        ring.add(0)
        placements = [ring.place(k) for k in KEYS[:50]]
        ring.remove(7)               # never present: no-op
        assert [ring.place(k) for k in KEYS[:50]] == placements
