"""End-to-end integration tests, including a property-based sweep over
random group assignments: for ANY seating of members from two groups, the
partial handshake must discover exactly the ground-truth partition."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.handshake import run_handshake
from repro.core.partial import subsets, subsets_are_consistent
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy


@given(st.lists(st.sampled_from(["A", "B"]), min_size=2, max_size=6),
       st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_partial_handshake_matches_ground_truth(scheme1_world,
                                                other_scheme1_world,
                                                assignment, seed):
    rng = random.Random(seed)
    pool = {"A": list(scheme1_world.members.values()),
            "B": list(other_scheme1_world.members.values())}
    counters = {"A": 0, "B": 0}
    lineup = []
    for label in assignment:
        members = pool[label]
        lineup.append(members[counters[label] % len(members)])
        counters[label] += 1
    # Skip seatings that reuse one member twice (multi-role is a separate
    # experiment; here we test the partition semantics).
    if len({id(m) for m in lineup}) != len(lineup):
        return
    outcomes = run_handshake(lineup, scheme1_policy(partial_success=True), rng)
    expected = set()
    for label in ("A", "B"):
        clique = frozenset(i for i, l in enumerate(assignment) if l == label)
        if len(clique) > 1:
            expected.add(clique)
    assert set(subsets(outcomes)) == expected, assignment
    assert subsets_are_consistent(outcomes)
    # Full success iff everyone is in one group.
    uniform = len(set(assignment)) == 1
    assert all(o.success == uniform for o in outcomes)


class TestFullLifecycle:
    """The paper's complete story in one test: create, admit, handshake,
    trace, revoke, update, handshake again — for both instantiations."""

    @pytest.mark.parametrize("kind", ["scheme1", "scheme2"])
    def test_lifecycle(self, kind, rng):
        from repro.core.scheme1 import create_scheme1
        from repro.core.scheme2 import create_scheme2
        if kind == "scheme1":
            framework = create_scheme1("lc1", rng=rng)
            policy = scheme1_policy()
        else:
            framework = create_scheme2("lc2", rng=rng)
            policy = scheme2_policy()

        members = {n: framework.admit_member(n, rng) for n in "abcd"}
        outcomes = run_handshake(list(members.values()), policy, rng)
        assert all(o.success for o in outcomes)

        result = framework.trace(outcomes[0].transcript)
        assert sorted(result.identified) == list("abcd")

        framework.remove_user("c")
        survivors = [members[n] for n in "abd"]
        outcomes = run_handshake(survivors, policy, rng)
        assert all(o.success for o in outcomes)

        # The revoked member spoils any session it joins.
        outcomes = run_handshake(survivors + [members["c"]], policy, rng)
        assert not any(o.success for o in outcomes)

        # Late joiner integrates seamlessly.
        eve = framework.admit_member("e", rng)
        outcomes = run_handshake(survivors + [eve], policy, rng)
        assert all(o.success for o in outcomes)


class TestCrossInstantiation:
    def test_scheme1_and_scheme2_members_never_match(self, scheme1_world,
                                                     scheme2_world):
        """Different groups — even with different GSIG flavours — simply
        fail, without errors or information leaks."""
        lineup = (scheme1_world.lineup("alice")
                  + scheme2_world.lineup("xavier"))
        outcomes = run_handshake(lineup, scheme1_policy(), scheme1_world.rng)
        assert not any(o.success for o in outcomes)

    def test_transcripts_cross_traced_safely(self, scheme1_world,
                                             scheme2_world):
        outcomes = run_handshake(scheme2_world.lineup("xavier", "yvonne"),
                                 scheme2_policy(), scheme2_world.rng)
        foreign = scheme1_world.framework.trace(outcomes[0].transcript)
        assert foreign.identified == ()
