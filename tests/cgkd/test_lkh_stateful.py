"""Stateful property testing of the LKH key tree with hypothesis.

The machine drives an arbitrary interleaving of joins, leaves, rekey
deliveries and *withheld* deliveries (members that temporarily miss
messages), checking the core CGKD invariants after every step:

* every up-to-date member holds exactly the controller's group key;
* a member that missed messages catches up by replaying them in order;
* an evicted member can never process the eviction rekey or anything
  after it;
* member storage stays logarithmic in the tree capacity.
"""

import math
import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.cgkd.lkh import LkhController, LkhMember


class LkhMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.rng = random.Random(1234)
        self.gc = LkhController(2, self.rng)
        self.members = {}        # user -> LkhMember
        self.backlog = {}        # user -> list of undelivered RekeyMessages
        self.evicted = {}        # user -> (member, eviction message)
        self.counter = 0

    # --- rules ------------------------------------------------------------

    @rule()
    def join(self):
        user = f"u{self.counter}"
        self.counter += 1
        welcome, message = self.gc.join(user)
        for other in self.members:
            self.backlog[other].append(message)
        self.members[user] = LkhMember(welcome)
        self.backlog[user] = []

    @precondition(lambda self: len(self.members) >= 2)
    @rule(data=st.data())
    def leave(self, data):
        user = data.draw(st.sampled_from(sorted(self.members)), label="leaver")
        message = self.gc.leave(user)
        gone = self.members.pop(user)
        self.backlog.pop(user)
        self.evicted[user] = (gone, message)
        for other in self.members:
            self.backlog[other].append(message)

    @precondition(lambda self: any(self.backlog.values()))
    @rule(data=st.data())
    def deliver_one(self, data):
        lagging = sorted(u for u, msgs in self.backlog.items() if msgs)
        user = data.draw(st.sampled_from(lagging), label="receiver")
        message = self.backlog[user].pop(0)
        assert self.members[user].rekey(message)

    @rule()
    def deliver_all(self):
        for user in sorted(self.backlog):
            for message in self.backlog[user]:
                assert self.members[user].rekey(message)
            self.backlog[user] = []

    # --- invariants ----------------------------------------------------------

    @invariant()
    def up_to_date_members_share_group_key(self):
        for user, member in self.members.items():
            if not self.backlog[user]:
                assert member.group_key == self.gc.group_key, user

    @invariant()
    def evicted_members_locked_out(self):
        for user, (member, message) in self.evicted.items():
            assert not member.rekey(message), user

    @invariant()
    def storage_logarithmic(self):
        bound = int(math.log2(self.gc.capacity)) + 1
        for user, member in self.members.items():
            assert member.key_count() <= bound, (user, member.key_count())


TestLkhStateful = LkhMachine.TestCase
TestLkhStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
