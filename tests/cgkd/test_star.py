"""Tests for the naive star CGKD baseline."""

import pytest

from repro.cgkd.star import StarController, StarMember
from repro.errors import MembershipError


class TestStar:
    def test_lifecycle(self, rng):
        gc = StarController(rng)
        members = {}
        for i in range(4):
            welcome, message = gc.join(f"u{i}")
            for member in members.values():
                assert member.rekey(message)
            members[f"u{i}"] = StarMember(welcome)
        assert all(m.group_key == gc.group_key for m in members.values())

    def test_leave_excludes(self, rng):
        gc = StarController(rng)
        members = {}
        for i in range(3):
            welcome, message = gc.join(f"u{i}")
            for member in members.values():
                member.rekey(message)
            members[f"u{i}"] = StarMember(welcome)
        message = gc.leave("u1")
        gone = members.pop("u1")
        assert not gone.rekey(message)
        for member in members.values():
            assert member.rekey(message)
            assert member.group_key == gc.group_key

    def test_rekey_cost_linear(self, rng):
        gc = StarController(rng)
        for i in range(10):
            _, message = gc.join(f"u{i}")
        assert message.size == 10  # one ciphertext per member

    def test_constant_member_storage(self, rng):
        gc = StarController(rng)
        welcome, _ = gc.join("u")
        assert StarMember(welcome).key_count() == 2

    def test_duplicate_join(self, rng):
        gc = StarController(rng)
        gc.join("u")
        with pytest.raises(MembershipError):
            gc.join("u")

    def test_unknown_leave(self, rng):
        gc = StarController(rng)
        with pytest.raises(MembershipError):
            gc.leave("ghost")

    def test_fresh_keys_per_event(self, rng):
        gc = StarController(rng)
        gc.join("a")
        k1 = gc.group_key
        gc.join("b")
        assert gc.group_key != k1
