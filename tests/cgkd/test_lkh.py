"""Tests for the LKH key tree, including property-based lifecycle checks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgkd.lkh import LkhController, LkhMember, renumber_after_grow
from repro.errors import MembershipError


def _join(gc, members, user_id):
    welcome, message = gc.join(user_id)
    for member in members.values():
        assert member.rekey(message), f"{member.user_id} failed join rekey"
    members[user_id] = LkhMember(welcome)


def _leave(gc, members, user_id):
    message = gc.leave(user_id)
    gone = members.pop(user_id)
    assert not gone.rekey(message), "revoked member decrypted its own eviction"
    for member in members.values():
        assert member.rekey(message), f"{member.user_id} failed leave rekey"
    return gone


class TestRenumbering:
    def test_root(self):
        assert renumber_after_grow(1) == 2

    def test_preserves_structure(self):
        # Children map to children.
        for node in range(1, 64):
            for child in (2 * node, 2 * node + 1):
                assert renumber_after_grow(child) in (
                    2 * renumber_after_grow(node),
                    2 * renumber_after_grow(node) + 1,
                )


class TestLifecycle:
    def test_all_members_share_group_key(self, rng):
        gc = LkhController(4, rng)
        members = {}
        for i in range(6):
            _join(gc, members, f"u{i}")
            assert all(m.group_key == gc.group_key for m in members.values())

    def test_growth_beyond_capacity(self, rng):
        gc = LkhController(2, rng)
        members = {}
        for i in range(9):
            _join(gc, members, f"u{i}")
        assert gc.capacity >= 9
        assert all(m.group_key == gc.group_key for m in members.values())

    def test_leave_forward_secrecy(self, rng):
        gc = LkhController(4, rng)
        members = {}
        for i in range(5):
            _join(gc, members, f"u{i}")
        old_key = gc.group_key
        gone = _leave(gc, members, "u2")
        assert gc.group_key != old_key
        assert gone.group_key == old_key  # leaver stuck at the old epoch
        assert all(m.group_key == gc.group_key for m in members.values())

    def test_join_backward_secrecy(self, rng):
        gc = LkhController(4, rng)
        members = {}
        _join(gc, members, "u0")
        old_key = gc.group_key
        _join(gc, members, "u1")
        assert gc.group_key != old_key

    def test_rekey_cost_logarithmic(self, rng):
        gc = LkhController(2, rng)
        members = {}
        for i in range(64):
            _join(gc, members, f"u{i}")
        message = gc.leave("u10")
        # 64 leaves -> depth 6; at most 2 ciphertexts per level.
        assert message.size <= 12
        for name in list(members):
            if name != "u10":
                members[name].rekey(message)

    def test_member_storage_logarithmic(self, rng):
        gc = LkhController(2, rng)
        members = {}
        for i in range(32):
            _join(gc, members, f"u{i}")
        assert all(m.key_count() <= 7 for m in members.values())

    def test_duplicate_join_rejected(self, rng):
        gc = LkhController(4, rng)
        gc.join("u")
        with pytest.raises(MembershipError):
            gc.join("u")

    def test_unknown_leave_rejected(self, rng):
        gc = LkhController(4, rng)
        with pytest.raises(MembershipError):
            gc.leave("ghost")

    def test_empty_group_has_no_key(self, rng):
        gc = LkhController(4, rng)
        with pytest.raises(MembershipError):
            _ = gc.group_key

    def test_bad_capacity(self, rng):
        with pytest.raises(MembershipError):
            LkhController(3, rng)

    def test_stale_rekey_ignored(self, rng):
        gc = LkhController(4, rng)
        members = {}
        _join(gc, members, "u0")
        welcome, msg1 = gc.join("u1")
        members["u0"].rekey(msg1)
        key = members["u0"].group_key
        assert members["u0"].rekey(msg1)  # replay: no-op, still accepted state
        assert members["u0"].group_key == key


@given(st.lists(st.sampled_from(["join", "leave"]), min_size=4, max_size=24),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_random_churn_invariant(operations, seed):
    """Whatever the join/leave sequence, all current members end with the
    controller's group key and evicted members are locked out."""
    rng = random.Random(seed)
    gc = LkhController(2, rng)
    members = {}
    counter = 0
    for op in operations:
        if op == "join" or not members:
            _join(gc, members, f"u{counter}")
            counter += 1
        else:
            victim = rng.choice(sorted(members))
            _leave(gc, members, victim)
    assert all(m.group_key == gc.group_key for m in members.values())
