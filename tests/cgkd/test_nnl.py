"""Tests for the NNL complete-subtree and subset-difference schemes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgkd.nnl import (
    FULL_COVER,
    CompleteSubtreeScheme,
    NnlController,
    NnlMember,
    SDSubset,
    SubsetDifferenceScheme,
)
from repro.errors import MembershipError, ParameterError


class TestCompleteSubtree:
    def test_cover_disjoint_and_exact(self, rng):
        cs = CompleteSubtreeScheme(16, rng)
        revoked = {17, 21, 30}
        cover = cs.cover(revoked)
        covered = set()
        for node in cover:
            depth = 5 - node.bit_length()
            leaves = range(node << depth, (node + 1) << depth)
            assert covered.isdisjoint(leaves), "cover overlaps"
            covered.update(leaves)
        assert covered == set(cs.leaves()) - revoked

    def test_no_revoked_single_subset(self, rng):
        cs = CompleteSubtreeScheme(8, rng)
        assert cs.cover(set()) == [1]

    def test_all_revoked_empty_cover(self, rng):
        cs = CompleteSubtreeScheme(8, rng)
        assert cs.cover(set(cs.leaves())) == []

    def test_decrypt_semantics(self, rng):
        cs = CompleteSubtreeScheme(8, rng)
        keys = {leaf: cs.user_keys(leaf) for leaf in cs.leaves()}
        revoked = {8, 13}
        header = cs.encrypt(revoked, b"payload")
        for leaf in cs.leaves():
            got = cs.decrypt(keys[leaf], leaf, header)
            assert (got == b"payload") == (leaf not in revoked)

    def test_user_storage(self, rng):
        cs = CompleteSubtreeScheme(16, rng)
        assert len(cs.user_keys(16)) == 5  # log2(16) + 1

    def test_bad_leaf_rejected(self, rng):
        cs = CompleteSubtreeScheme(8, rng)
        with pytest.raises(ParameterError):
            cs.user_keys(3)
        with pytest.raises(ParameterError):
            cs.cover({99})

    def test_bad_capacity(self, rng):
        with pytest.raises(ParameterError):
            CompleteSubtreeScheme(12, rng)


class TestSubsetDifference:
    def test_subset_contains(self):
        s = SDSubset(2, 9)
        assert s.contains(8)
        assert not s.contains(9)
        assert not s.contains(12)  # not under 2 (capacity-8 tree leaves 8..15)
        assert SDSubset(*FULL_COVER).contains(12)

    def test_cover_bound(self, rng):
        sd = SubsetDifferenceScheme(32, rng)
        leaves = list(sd.leaves())
        for r in (1, 2, 5, 10, 31):
            revoked = set(random.Random(r).sample(leaves, r))
            cover = sd.cover(revoked)
            assert len(cover) <= max(1, 2 * r - 1), (r, len(cover))

    def test_cover_partition(self, rng):
        sd = SubsetDifferenceScheme(16, rng)
        revoked = {16, 19, 28}
        cover = sd.cover(revoked)
        counts = {leaf: 0 for leaf in sd.leaves()}
        for subset in cover:
            for leaf in sd.leaves():
                if subset.contains(leaf):
                    counts[leaf] += 1
        for leaf, count in counts.items():
            assert count == (0 if leaf in revoked else 1), leaf

    def test_decrypt_semantics(self, rng):
        sd = SubsetDifferenceScheme(16, rng)
        keys = {leaf: sd.user_keys(leaf) for leaf in sd.leaves()}
        for revoked in [set(), {16}, {18, 25}, {16, 17, 30, 31}]:
            header = sd.encrypt(revoked, b"sd")
            for leaf in sd.leaves():
                got = sd.decrypt(keys[leaf], leaf, header)
                assert (got == b"sd") == (leaf not in revoked), (revoked, leaf)

    def test_storage_quadratic_log(self, rng):
        sd = SubsetDifferenceScheme(16, rng)
        # log N = 4 -> 4+3+2+1 = 10 labels + 1 full-cover key.
        assert len(sd.user_keys(16)) == 11

    def test_subset_key_matches_user_derivation(self, rng):
        sd = SubsetDifferenceScheme(16, rng)
        revoked = {17}
        header = sd.encrypt(revoked, b"m")
        keys_16 = sd.user_keys(16)
        # Leaf 16 shares every ancestor with 17 yet must still decrypt.
        assert sd.decrypt(keys_16, 16, header) == b"m"


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=16))
@settings(max_examples=25, deadline=None)
def test_sd_cover_correct_for_random_revocations(seed, r):
    """Property: the SD cover covers exactly the non-revoked leaves and
    respects the 2r-1 bound, for random revocation sets."""
    rng = random.Random(seed)
    sd = SubsetDifferenceScheme(16, rng)
    leaves = list(sd.leaves())
    revoked = set(rng.sample(leaves, min(r, len(leaves))))
    cover = sd.cover(revoked)
    assert len(cover) <= max(1, 2 * len(revoked) - 1) or not revoked
    for leaf in leaves:
        hit = sum(1 for s in cover if s.contains(leaf))
        assert hit == (0 if leaf in revoked else 1)


class TestNnlController:
    def test_lifecycle(self, rng):
        gc = NnlController(8, "sd", rng)
        members = {}
        for i in range(5):
            welcome, message = gc.join(f"u{i}")
            for member in members.values():
                assert member.rekey(message)
            members[f"u{i}"] = NnlMember(welcome)
        assert all(m.group_key == gc.group_key for m in members.values())
        message = gc.leave("u2")
        gone = members.pop("u2")
        assert not gone.rekey(message)
        for member in members.values():
            assert member.rekey(message)
            assert member.group_key == gc.group_key

    def test_cs_method(self, rng):
        gc = NnlController(8, "cs", rng)
        w1, _ = gc.join("a")
        w2, m2 = gc.join("b")
        a = NnlMember(w1)
        assert a.rekey(m2)
        b = NnlMember(w2)
        assert a.group_key == b.group_key == gc.group_key

    def test_capacity_exhausted(self, rng):
        gc = NnlController(2, "sd", rng)
        gc.join("a")
        gc.join("b")
        with pytest.raises(MembershipError):
            gc.join("c")

    def test_rejoining_after_leave_reuses_slot(self, rng):
        gc = NnlController(2, "sd", rng)
        gc.join("a")
        gc.join("b")
        gc.leave("a")
        welcome, _ = gc.join("c")  # reuses a's slot
        member = NnlMember(welcome)
        assert member.group_key == gc.group_key

    def test_bad_method(self, rng):
        with pytest.raises(ParameterError):
            NnlController(8, "xyz", rng)
