"""Tests for the network simulator, channels and adversary hooks."""

import dataclasses

import pytest

from repro import metrics
from repro.errors import ProtocolError, VerificationError
from repro.net.adversary import CorruptionLog, Eavesdropper, ManInTheMiddle
from repro.net.channels import AuthenticatedChannel, BulletinBoard
from repro.net.simulator import BROADCAST, Message, Network, Party


class Recorder(Party):
    def __init__(self, name):
        super().__init__(name)
        self.inbox = []

    def on_message(self, message):
        self.inbox.append(message)


class Echoer(Party):
    def on_message(self, message):
        if message.payload == "ping":
            self.send(message.sender, "pong")


class TestDelivery:
    def test_p2p(self):
        net = Network()
        a, b = net.register(Recorder("a")), net.register(Recorder("b"))
        a.send("b", "hello")
        net.run()
        assert [m.payload for m in b.inbox] == ["hello"]
        assert b.inbox[0].sender == "a"
        assert not a.inbox

    def test_in_order(self):
        net = Network()
        net.register(Recorder("a"))
        b = net.register(Recorder("b"))
        for i in range(5):
            net.send("a", "b", i)
        net.run()
        assert [m.payload for m in b.inbox] == list(range(5))

    def test_broadcast_excludes_sender(self):
        net = Network()
        parties = [net.register(Recorder(n)) for n in "abc"]
        parties[0].broadcast("hi")
        net.run()
        assert not parties[0].inbox
        assert all(p.inbox[0].payload == "hi" for p in parties[1:])

    def test_anonymous_channel_strips_sender(self):
        net = Network()
        net.register(Recorder("a"))
        b = net.register(Recorder("b"))
        net.send("a", "b", "secret", channel="anonymous")
        net.run()
        assert b.inbox[0].sender is None

    def test_reply_chain(self):
        net = Network()
        a = net.register(Recorder("a"))
        net.register(Echoer("b"))
        a.send("b", "ping")
        net.run()
        assert [m.payload for m in a.inbox] == ["pong"]

    def test_unknown_recipient_dropped(self):
        net = Network()
        net.register(Recorder("a"))
        net.send("a", "ghost", "x")
        assert net.run() == 0 or net.history == []

    def test_storm_detection(self):
        net = Network()

        class Storm(Party):
            def on_message(self, message):
                self.send(message.sender, "again")

        net.register(Storm("a"))
        net.register(Storm("b"))
        net.send("a", "b", "go")
        with pytest.raises(ProtocolError):
            net.run(max_steps=50)

    def test_duplicate_names_rejected(self):
        net = Network()
        net.register(Recorder("a"))
        with pytest.raises(ProtocolError):
            net.register(Recorder("a"))

    def test_unattached_party(self):
        with pytest.raises(ProtocolError):
            Recorder("lonely").send("x", "y")

    def test_message_counting(self):
        metrics.reset()
        net = Network()
        net.register(Recorder("a"))
        net.register(Recorder("b"))
        net.send("a", "b", "x")
        net.run()
        assert metrics.total().messages_sent == 1
        assert metrics.total().messages_received == 1


class TestAdversaries:
    def test_eavesdropper_sees_all(self):
        net = Network()
        net.register(Recorder("a"))
        net.register(Recorder("b"))
        eve = Eavesdropper(net)
        net.send("a", "b", "sensitive")
        net.run()
        assert len(eve.log) == 1
        assert eve.senders() == {"a"}
        assert eve.traffic_volume() > 0

    def test_mitm_rewrites(self):
        net = Network()
        net.register(Recorder("a"))
        b = net.register(Recorder("b"))
        mitm = ManInTheMiddle(net)
        from dataclasses import replace
        mitm.add_rule(lambda m: replace(m, payload="tampered"))
        net.send("a", "b", "original")
        net.run()
        assert b.inbox[0].payload == "tampered"
        assert mitm.intercepted[0].payload == "original"

    def test_mitm_drops(self):
        net = Network()
        net.register(Recorder("a"))
        b = net.register(Recorder("b"))
        mitm = ManInTheMiddle(net)
        mitm.add_rule(lambda m: None)
        net.send("a", "b", "x")
        net.run()
        assert not b.inbox

    def test_mitm_injects(self):
        net = Network()
        b = net.register(Recorder("b"))
        mitm = ManInTheMiddle(net)
        mitm.inject(Message(999, "forged", "b", "p2p", "evil"))
        net.run()
        assert b.inbox[0].payload == "evil"

    def test_corruption_log(self):
        log = CorruptionLog()
        log.corrupt_user("u1")
        assert log.is_corrupt("u1") and not log.is_corrupt("u2")
        log.corrupt_ga("trace")
        assert log.corrupted_ga_trace and not log.corrupted_ga_admit
        with pytest.raises(ValueError):
            log.corrupt_ga("everything")


class TestBulletinBoard:
    def test_post_and_read(self, rng):
        board = BulletinBoard()
        public, secret = board.make_poster_key(rng)
        board.post("topic", b"payload-1", public, secret, rng)
        board.post("other", b"payload-2", public, secret, rng)
        posts = board.read_since(0, "topic")
        assert len(posts) == 1 and posts[0].payload == b"payload-1"
        assert len(board.read_since(0)) == 2

    def test_cursor(self, rng):
        board = BulletinBoard()
        public, secret = board.make_poster_key(rng)
        board.post("t", b"1", public, secret, rng)
        board.post("t", b"2", public, secret, rng)
        assert [p.payload for p in board.read_since(1)] == [b"2"]

    def test_forged_post_detected(self, rng):
        board = BulletinBoard()
        public, secret = board.make_poster_key(rng)
        post = board.post("t", b"real", public, secret, rng)
        object.__setattr__(post, "payload", b"forged")
        with pytest.raises(VerificationError):
            board.read_since(0)

    def test_negative_cursor_clamped(self, rng):
        board = BulletinBoard()
        public, secret = board.make_poster_key(rng)
        board.post("t", b"1", public, secret, rng)
        assert [p.payload for p in board.read_since(-5)] == [b"1"]

    def test_poll_pagination_sees_each_post_once(self, rng):
        board = BulletinBoard()
        public, secret = board.make_poster_key(rng)
        board.post("t", b"1", public, secret, rng)
        board.post("t", b"2", public, secret, rng)
        posts, cursor = board.poll()
        assert [p.payload for p in posts] == [b"1", b"2"] and cursor == 2
        posts, cursor = board.poll(cursor)
        assert posts == [] and cursor == 2
        board.post("t", b"3", public, secret, rng)
        posts, cursor = board.poll(cursor)
        assert [p.payload for p in posts] == [b"3"] and cursor == 3

    def test_poll_topic_filter_keeps_global_cursor(self, rng):
        """The cursor tracks the whole board, not the filtered view, so a
        topic reader never re-sees skipped posts."""
        board = BulletinBoard()
        public, secret = board.make_poster_key(rng)
        board.post("a", b"1", public, secret, rng)
        board.post("b", b"2", public, secret, rng)
        posts, cursor = board.poll(0, topic="b")
        assert [p.payload for p in posts] == [b"2"] and cursor == 2

    def test_reads_return_defensive_copies(self, rng):
        board = BulletinBoard()
        public, secret = board.make_poster_key(rng)
        board.post("t", b"1", public, secret, rng)
        first = board.read_since(0)
        # Mutating the returned list never touches board state …
        first.clear()
        assert len(board.read_since(0)) == 1
        # … the entries are fresh copies, not handles into the board …
        again = board.read_since(0)[0]
        assert again == board.read_since(0)[0]
        assert again is not board.read_since(0)[0]
        # … and the records themselves are immutable.
        with pytest.raises(dataclasses.FrozenInstanceError):
            again.payload = b"evil"


class TestAuthenticatedChannel:
    def test_roundtrip(self, rng):
        channel = AuthenticatedChannel(rng=rng)
        public, secret = channel.keygen()
        sealed = channel.seal(secret, b"message")
        assert channel.open(public, sealed) == b"message"

    def test_forgery_rejected(self, rng):
        channel = AuthenticatedChannel(rng=rng)
        public, secret = channel.keygen()
        payload, signature = channel.seal(secret, b"message")
        with pytest.raises(VerificationError):
            channel.open(public, (b"other", signature))
