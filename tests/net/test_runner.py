"""Tests for the network-driven handshake runner and the network MITM."""

import pytest

from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.net.adversary import Eavesdropper, ManInTheMiddle
from repro.net.mitm import NetworkBdSplitter
from repro.net.runner import SessionPlan, run_handshake_over_network
from repro.net.simulator import Network
from repro.security.adversaries import TranscriptDistinguisher


class TestSessionPlan:
    def test_roster(self):
        plan = SessionPlan("s", ["a", "b", "c"])
        assert plan.m == 3
        assert plan.index_of("b") == 1
        assert plan.channel == "handshake/s"


class TestChainDgkaRejected:
    def test_gdh_policy_raises_up_front(self, scheme1_world):
        """GDH.2 has per-round single speakers; the broadcast driver would
        deadlock waiting for silent parties, so device construction must
        fail fast with a clear error instead."""
        from repro.core.handshake import HandshakePolicy
        from repro.dgka.gdh import GdhParty
        from repro.errors import ProtocolError
        from repro.net.runner import HandshakeDevice

        policy = HandshakePolicy(
            dgka_factory=lambda i, m, rng: GdhParty(i, m, rng=rng))
        plan = SessionPlan("chain", ["device-0", "device-1"])
        with pytest.raises(ProtocolError, match="chain-style"):
            HandshakeDevice("device-0", scheme1_world.members["alice"],
                            plan, policy, scheme1_world.rng)

    def test_run_over_network_propagates(self, scheme1_world):
        from repro.core.handshake import HandshakePolicy
        from repro.dgka.gdh import GdhParty
        from repro.errors import ProtocolError

        policy = HandshakePolicy(
            dgka_factory=lambda i, m, rng: GdhParty(i, m, rng=rng))
        with pytest.raises(ProtocolError, match="chain-style"):
            run_handshake_over_network(
                scheme1_world.lineup("alice", "bob"), policy,
                scheme1_world.rng, session_id="chain-net")


class TestNetworkHandshake:
    def test_same_group_succeeds(self, scheme1_world):
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob", "carol"),
            scheme1_policy(), scheme1_world.rng,
        )
        assert all(o.success for o in outcomes)
        assert len({o.session_key for o in outcomes}) == 1

    def test_matches_local_engine_semantics(self, scheme1_world,
                                            other_scheme1_world):
        lineup = (scheme1_world.lineup("alice", "bob")
                  + other_scheme1_world.lineup("dan"))
        outcomes = run_handshake_over_network(
            lineup, scheme1_policy(partial_success=True), scheme1_world.rng,
        )
        assert outcomes[0].confirmed_peers == {1}
        assert outcomes[2].confirmed_peers == set()
        assert not any(o.success for o in outcomes)

    def test_transcript_traceable(self, scheme1_world):
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob"),
            scheme1_policy(), scheme1_world.rng,
        )
        result = scheme1_world.framework.trace(outcomes[0].transcript)
        assert sorted(result.identified) == ["alice", "bob"]

    def test_scheme2_self_distinction_over_network(self, scheme2_world):
        lineup = scheme2_world.lineup("xavier", "yvonne", "xavier")
        outcomes = run_handshake_over_network(
            lineup, scheme2_policy(), scheme2_world.rng, session_id="rogue",
        )
        assert outcomes[1].distinct is False
        assert not outcomes[1].success

    def test_untraceable_policy(self, scheme1_world):
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob"),
            scheme1_policy(traceable=False), scheme1_world.rng,
        )
        assert all(o.success for o in outcomes)
        assert all(o.transcript is None for o in outcomes)

    def test_eavesdropper_sees_only_noise(self, scheme1_world):
        net = Network()
        eve = Eavesdropper(net)
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob"),
            scheme1_policy(), scheme1_world.rng, network=net,
        )
        assert all(o.success for o in outcomes)
        # 2 parties x (2 DGKA rounds + tag + phase3) broadcasts.
        assert len(eve.log) == 8
        # No member identities or group names appear on the wire.
        wire_text = str([m.payload for m in eve.log])
        assert "alice" not in wire_text and "fbi" not in wire_text
        features = TranscriptDistinguisher().features(outcomes[0].transcript)
        assert len(features) == 2 * len(outcomes[0].transcript.entries)


class TestNetworkMitm:
    def test_split_attack_detected(self, scheme1_world):
        net = Network()
        splitter = NetworkBdSplitter(net, m=4, cut=2, session_id="mitm",
                                     rng=scheme1_world.rng)
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob", "carol", "dave"),
            scheme1_policy(), scheme1_world.rng, network=net,
            session_id="mitm",
        )
        assert splitter.intercepted == 8  # 4 parties x 2 rounds
        assert not any(o.success for o in outcomes)

    def test_split_attack_partial_never_crosses(self, scheme1_world):
        net = Network()
        NetworkBdSplitter(net, m=4, cut=2, session_id="mitm2",
                          rng=scheme1_world.rng)
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob", "carol", "dave"),
            scheme1_policy(partial_success=True), scheme1_world.rng,
            network=net, session_id="mitm2",
        )
        crossings = [
            (o.index, peer) for o in outcomes
            for peer in o.confirmed_peers if (o.index < 2) != (peer < 2)
        ]
        assert crossings == []
        # Within each half the handshake degrades gracefully.
        assert outcomes[0].confirmed_peers == {1}
        assert outcomes[2].confirmed_peers == {3}

    def test_message_dropper_stalls_not_crashes(self, scheme1_world):
        """A MITM that blackholes one party's DGKA traffic leaves everyone
        without an outcome — the handshake just never completes (the
        paper's model guarantees delivery; this probes our failure mode)."""
        net = Network()
        mitm = ManInTheMiddle(net)
        mitm.add_rule(
            lambda msg: None
            if isinstance(msg.payload, tuple) and msg.payload[0] == "dgka"
            and msg.payload[3] == 0 else msg
        )
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob"),
            scheme1_policy(), scheme1_world.rng, network=net,
            session_id="drop",
        )
        assert not any(o.success for o in outcomes)
