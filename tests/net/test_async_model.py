"""The model-agnostic flexibility claim (Section 1.1): the handshake must
work unchanged in an asynchronous network with guaranteed delivery but
*arbitrary reordering*."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.net.runner import run_handshake_over_network
from repro.net.simulator import Network, Party


class Recorder(Party):
    def __init__(self, name):
        super().__init__(name)
        self.inbox = []

    def on_message(self, message):
        self.inbox.append(message.payload)


class TestReorderingNetwork:
    def test_reordering_actually_reorders(self):
        net = Network(reorder_rng=random.Random(1))
        net.register(Recorder("a"))
        b = net.register(Recorder("b"))
        for i in range(20):
            net.send("a", "b", i)
        net.run()
        assert sorted(b.inbox) == list(range(20))
        assert b.inbox != list(range(20))  # order was scrambled

    def test_guaranteed_delivery(self):
        net = Network(reorder_rng=random.Random(2))
        net.register(Recorder("a"))
        b = net.register(Recorder("b"))
        for i in range(50):
            net.send("a", "b", i)
        net.run()
        assert len(b.inbox) == 50


class TestAsyncHandshake:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_handshake_survives_any_interleaving(self, scheme1_world, seed):
        net = Network(reorder_rng=random.Random(seed))
        outcomes = run_handshake_over_network(
            scheme1_world.lineup("alice", "bob", "carol"),
            scheme1_policy(), scheme1_world.rng, network=net,
            session_id=f"async-{seed}",
        )
        assert all(o.success for o in outcomes)
        assert len({o.session_key for o in outcomes}) == 1

    def test_scheme2_async(self, scheme2_world):
        net = Network(reorder_rng=random.Random(7))
        outcomes = run_handshake_over_network(
            scheme2_world.lineup("xavier", "yvonne", "zelda"),
            scheme2_policy(), scheme2_world.rng, network=net,
            session_id="async-s2",
        )
        assert all(o.success and o.distinct for o in outcomes)

    def test_mixed_groups_async(self, scheme1_world, other_scheme1_world):
        net = Network(reorder_rng=random.Random(11))
        lineup = (scheme1_world.lineup("alice", "bob")
                  + other_scheme1_world.lineup("dan"))
        outcomes = run_handshake_over_network(
            lineup, scheme1_policy(partial_success=True),
            scheme1_world.rng, network=net, session_id="async-mixed",
        )
        assert outcomes[0].confirmed_peers == {1}
        assert not any(o.success for o in outcomes)
