"""Equivalence of the two handshake drivers.

The synchronous engine (`repro.core.handshake.run_handshake`) and the
asynchronous network runner (`repro.net.runner`) execute the same Fig. 6
protocol; for any membership configuration they must reach the same
verdicts (success flags, confirmed-peer sets, distinctness) even though
the message interleavings differ."""

import random

import pytest

from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.net.runner import run_handshake_over_network
from repro.net.simulator import Network


def _verdicts(outcomes):
    return [
        (o.index, o.success, frozenset(o.confirmed_peers), o.distinct)
        for o in outcomes
    ]


CONFIGS = [
    ("same-group pair", ["alice", "bob"], [], False),
    ("same-group trio", ["alice", "bob", "carol"], [], False),
    ("mixed 2+1", ["alice", "bob"], ["dan"], False),
    ("mixed 2+2 partial", ["alice", "bob"], ["dan", "eve"], True),
]


@pytest.mark.parametrize("label,ours,theirs,partial", CONFIGS)
def test_sync_async_same_verdicts(label, ours, theirs, partial,
                                  scheme1_world, other_scheme1_world):
    lineup = scheme1_world.lineup(*ours) + other_scheme1_world.lineup(*theirs)
    policy = scheme1_policy(partial_success=partial)
    sync_outcomes = run_handshake(lineup, policy, scheme1_world.rng)
    async_outcomes = run_handshake_over_network(
        lineup, policy, scheme1_world.rng,
        network=Network(reorder_rng=random.Random(5)),
        session_id=f"eq-{label}",
    )
    sync_v, async_v = _verdicts(sync_outcomes), _verdicts(async_outcomes)
    for (si, ss, sc, sd), (ai, as_, ac, ad) in zip(sync_v, async_v):
        assert si == ai
        assert ss == as_, (label, si)
        # Success participants agree on confirmed peers; decoy publishers
        # may differ benignly (the sync engine zeroes them out).
        if ss:
            assert sc == ac, (label, si)


def test_sync_async_scheme2_rogue(scheme2_world):
    lineup = scheme2_world.lineup("xavier", "yvonne", "xavier")
    sync_outcomes = run_handshake(lineup, scheme2_policy(), scheme2_world.rng)
    async_outcomes = run_handshake_over_network(
        lineup, scheme2_policy(), scheme2_world.rng,
        network=Network(reorder_rng=random.Random(9)),
        session_id="eq-rogue",
    )
    assert sync_outcomes[1].distinct is False
    assert async_outcomes[1].distinct is False
    assert not sync_outcomes[1].success and not async_outcomes[1].success


def test_five_party_service_transport_count_parity(service_world):
    """The acceptance bar for the socket transport: a 5-party handshake
    over real loopback TCP performs exactly the same per-party work —
    modexp, messages sent, messages received in scope ``hs:<i>`` — as the
    synchronous engine and the in-process simulator.

    The simulator and socket legs run with span tracing *enabled* while
    the engine leg runs with it off: parity across the three recorders
    therefore also proves instrumentation is observationally free."""
    import asyncio

    from repro import metrics
    from repro.service import ClientConfig, RendezvousServer, ServerConfig, run_room

    lineup = service_world.lineup(*sorted(service_world.members))
    policy = scheme1_policy()
    m = len(lineup)

    def per_party(recorder):
        snap = recorder.snapshot()
        return [
            (snap[f"hs:{i}"].modexp,
             snap[f"hs:{i}"].messages_sent,
             snap[f"hs:{i}"].messages_received)
            for i in range(m)
        ]

    sync_rec = metrics.Recorder()
    with metrics.using(sync_rec):
        sync_outcomes = run_handshake(lineup, policy, service_world.rng)

    sim_rec = metrics.Recorder()
    sim_rec.tracing = True
    with metrics.using(sim_rec):
        sim_outcomes = run_handshake_over_network(
            lineup, policy, service_world.rng, session_id="parity-5")

    async def over_sockets():
        async with RendezvousServer(ServerConfig()) as server:
            cfg = ClientConfig(port=server.port, room="parity")
            return await asyncio.wait_for(
                run_room(lineup, cfg, policy), 60)

    svc_rec = metrics.Recorder()
    svc_rec.tracing = True
    with metrics.using(svc_rec):
        svc_outcomes = asyncio.run(over_sockets())

    assert all(o.success for o in sync_outcomes)
    assert all(o.success for o in sim_outcomes)
    assert all(o.success for o in svc_outcomes)
    sync_counts = per_party(sync_rec)
    assert per_party(sim_rec) == sync_counts
    assert per_party(svc_rec) == sync_counts
    # The profile itself is the paper's: 4 broadcasts per party (2 DGKA
    # rounds + tag + phase3), each received by the other m-1 parties.
    assert all(sent == 4 and received == 4 * (m - 1)
               for _, sent, received in sync_counts)
    # The traced legs really did trace: every party has a root span with
    # nested phase spans (the Perfetto acceptance artifact's skeleton).
    for rec in (sim_rec, svc_rec):
        names = [s.name for s in rec.spans()]
        for i in range(m):
            assert f"hs:{i}" in names
        assert names.count("phase:I") == m
        assert names.count("phase:III") == m


def test_both_transcripts_trace_identically(scheme1_world):
    lineup = scheme1_world.lineup("alice", "bob")
    sync_outcomes = run_handshake(lineup, scheme1_policy(), scheme1_world.rng)
    async_outcomes = run_handshake_over_network(
        lineup, scheme1_policy(), scheme1_world.rng, session_id="eq-trace",
    )
    t1 = scheme1_world.framework.trace(sync_outcomes[0].transcript)
    t2 = scheme1_world.framework.trace(async_outcomes[0].transcript)
    assert sorted(t1.identified) == sorted(t2.identified) == ["alice", "bob"]
