"""Tests for the Appendix-A oracle world."""

import pytest

from repro.errors import ParameterError
from repro.security.oracles import OracleWorld


@pytest.fixture
def world(rng):
    w = OracleWorld(rng)
    w.o_create_group("g")
    return w


class TestOracles:
    def test_create_group_once(self, world):
        with pytest.raises(ParameterError):
            world.o_create_group("g")

    def test_admit_and_handshake(self, world):
        a = world.o_admit_member("g", "a")
        b = world.o_admit_member("g", "b")
        outcomes = world.o_handshake([a, b])
        assert all(o.success for o in outcomes)
        assert len(world.handshakes) == 1

    def test_trace_oracle(self, world):
        a = world.o_admit_member("g", "a")
        b = world.o_admit_member("g", "b")
        outcomes = world.o_handshake([a, b])
        result = world.o_trace("g", outcomes[0].transcript)
        assert sorted(result.identified) == ["a", "b"]

    def test_adversarial_admission_marks_corrupt(self, world):
        world.o_admit_member("g", "mallory", adversarial=True)
        assert not world.user_is_fresh("mallory")
        world.o_admit_member("g", "honest")
        assert world.user_is_fresh("honest")

    def test_corrupt_user_oracle(self, world):
        world.o_admit_member("g", "a")
        member = world.o_corrupt_user("g", "a")
        assert member.credential is not None
        assert not world.user_is_fresh("a")

    def test_corrupt_ga_capabilities(self, world):
        manager = world.o_corrupt_ga("g", "admit")
        assert manager is world.frameworks["g"].authority.gsig_manager
        assert world.corruptions.corrupted_ga_admit
        authority = world.o_corrupt_ga("g", "trace")
        assert authority is world.frameworks["g"].authority
        with pytest.raises(ParameterError):
            world.o_corrupt_ga("g", "everything")

    def test_revoke_corrupted_hygiene(self, world):
        a = world.o_admit_member("g", "a")
        world.o_admit_member("g", "b")
        world.o_corrupt_user("g", "a")
        world.revoke_corrupted("g")
        assert a.revoked
        # Idempotent: calling again does not raise.
        world.revoke_corrupted("g")

    def test_remove_user_oracle(self, world):
        a = world.o_admit_member("g", "a")
        world.o_remove_user("g", "a")
        assert a.revoked
