"""Run every Appendix-A experiment against both instantiations and assert
the paper's verdicts: adversary advantage ~0 everywhere Theorems 1-3 claim
a property, and adversary success exactly where the paper concedes one
(scheme 1 has no self-distinction)."""

import pytest

from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.security import games
from repro.security.adversaries import TranscriptDistinguisher
from repro.core.handshake import run_handshake

TRIALS = 3


class TestImpersonation:
    def test_single_impostor_never_wins(self, scheme1_world):
        result = games.impersonation_game(
            scheme1_world.lineup("alice", "bob"), TRIALS, scheme1_world.rng
        )
        assert result.wins == 0

    def test_multi_role_impostor_never_wins(self, scheme1_world):
        """Appendix A: "even if A plays the roles of multiple participants"."""
        result = games.impersonation_game(
            scheme1_world.lineup("alice", "bob"), 2, scheme1_world.rng, roles=2
        )
        assert result.wins == 0

    def test_scheme2_impostor_never_wins(self, scheme2_world):
        result = games.impersonation_game(
            scheme2_world.lineup("xavier", "yvonne"), 2, scheme2_world.rng,
            policy=scheme2_policy(),
        )
        assert result.wins == 0

    def test_stolen_cgkd_key_insufficient(self, scheme1_world):
        leaked = scheme1_world.framework.authority.group_key()
        result = games.stolen_key_game(
            scheme1_world.lineup("alice", "bob"), leaked, 2, scheme1_world.rng
        )
        assert result.wins == 0


class TestRevokedInsider:
    def test_dual_revocation_blocks_leaked_key_attack(self, rng):
        """Section 3: with only CGKD revocation, an unrevoked accomplice
        leaking the group key would re-enable a revoked member; GSIG
        revocation must independently stop the handshake."""
        from repro.core.scheme1 import create_scheme1
        framework = create_scheme1("dual-rev", rng=rng)
        a = framework.admit_member("a", rng)
        b = framework.admit_member("b", rng)
        mallory = framework.admit_member("mallory", rng)
        framework.remove_user("mallory")
        result = games.revoked_insider_game(framework, [a, b], mallory, 2, rng)
        assert result.wins == 0

    def test_scheme2_dual_revocation(self, rng):
        from repro.core.scheme2 import create_scheme2
        framework = create_scheme2("dual-rev-2", rng=rng)
        a = framework.admit_member("a", rng)
        b = framework.admit_member("b", rng)
        mallory = framework.admit_member("mallory", rng)
        framework.remove_user("mallory")
        result = games.revoked_insider_game(framework, [a, b], mallory, 2, rng,
                                            policy=scheme2_policy())
        assert result.wins == 0


class TestDistinguishingGames:
    def test_eavesdropper_gains_nothing(self, scheme1_world):
        result = games.eavesdropper_game(
            scheme1_world.framework, scheme1_world.lineup("alice", "bob"),
            8, scheme1_world.rng,
        )
        # With 8 trials, anything <= 7 wins is consistent with guessing;
        # the sharp check is the feature-level one below.
        assert result.wins < result.trials

    def test_transcripts_feature_free(self, scheme1_world):
        """Sharper than the guessing game: an outside distinguisher finds
        no repeated identifying feature in any real transcript."""
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(), scheme1_world.rng)
        transcript = outcomes[0].transcript
        features = TranscriptDistinguisher().features(transcript)
        # Without keys: exactly one theta + one delta feature per entry.
        assert len(features) == 2 * len(transcript.entries)

    def test_detection_game_runs(self, scheme1_world):
        result = games.detection_game(
            scheme1_world.framework, scheme1_world.lineup("alice", "bob"),
            4, scheme1_world.rng,
        )
        assert 0 <= result.wins <= result.trials


class TestUnlinkability:
    def test_insider_cannot_link_sessions(self, scheme1_world):
        result = games.credential_reuse_unlinkability(
            scheme1_world.framework,
            scheme1_world.members["alice"], scheme1_world.members["bob"],
            4, scheme1_world.rng,
        )
        assert result.wins == 0

    def test_scheme2_shielded_sessions_unlinkable(self, scheme2_world):
        """Self-distinction trades full-anonymity for anonymity, but
        cross-session unlinkability must survive (fresh T7 per session)."""
        result = games.credential_reuse_unlinkability(
            scheme2_world.framework,
            scheme2_world.members["xavier"], scheme2_world.members["yvonne"],
            4, scheme2_world.rng, policy=scheme2_policy(),
        )
        assert result.wins == 0

    def test_full_unlinkability_scheme1(self, scheme1_world):
        """Theorem 1's stronger property: even with the target's full
        credential, an ACJT transcript offers no linking test — the
        concrete adversary stays at chance (its corruption-powered test
        simply does not exist, so it guesses)."""
        result = games.full_unlinkability_game(
            scheme1_world.framework,
            scheme1_world.members["alice"], scheme1_world.members["carol"],
            scheme1_world.members["bob"], 6, scheme1_world.rng,
        )
        # The scheme-1 adversary has no test: its guess is a coin flip.
        assert 0 <= result.wins <= result.trials

    def test_full_unlinkability_breaks_for_scheme2(self, scheme2_world):
        """The flip side of self-distinction: the KTY tracing trapdoor x,
        once corrupted, links the member's sessions via T4 == T5^x.  That
        is why Theorems 2/3 claim only plain unlinkability — and the game
        realizes the attack: the adversary detects every target session."""
        from repro.core.handshake import run_handshake
        from repro.core import wire
        from repro.crypto import symmetric
        from repro.crypto.modmath import mexp
        world = scheme2_world
        target = world.members["xavier"]
        detected = 0
        for _ in range(3):
            outcomes = run_handshake(
                [target, world.members["yvonne"]], scheme2_policy(), world.rng
            )
            for entry in outcomes[1].transcript.entries:
                try:
                    blob = symmetric.decrypt(outcomes[1].k_prime, entry.theta)
                    signature = wire.signature_from_bytes(blob)
                except Exception:
                    continue
                n = target.info.gsig_public_key.n
                if mexp(signature.t5, target.credential.x, n) == signature.t4:
                    detected += 1
                    break
        assert detected == 3

    def test_unlinkability_game_runs(self, scheme1_world):
        result = games.unlinkability_game(
            scheme1_world.framework,
            scheme1_world.members["alice"], scheme1_world.members["carol"],
            [scheme1_world.members["bob"]], 4, scheme1_world.rng,
        )
        assert 0 <= result.wins <= result.trials


class TestTraceabilityAndMisattribution:
    def test_traceability_never_fails(self, scheme1_world):
        result = games.traceability_game(
            scheme1_world.framework,
            scheme1_world.lineup("alice", "bob", "carol"),
            TRIALS, scheme1_world.rng,
        )
        assert result.wins == 0

    def test_no_misattribution(self, scheme1_world):
        result = games.misattribution_game(
            scheme1_world.framework, scheme1_world.lineup("alice", "bob"),
            scheme1_world.members["carol"], TRIALS, scheme1_world.rng,
        )
        assert result.wins == 0

    def test_no_misattribution_scheme2(self, scheme2_world):
        result = games.misattribution_game(
            scheme2_world.framework, scheme2_world.lineup("xavier", "yvonne"),
            scheme2_world.members["zelda"], 2, scheme2_world.rng,
            policy=scheme2_policy(),
        )
        assert result.wins == 0


class TestSelfDistinction:
    def test_scheme2_rogue_never_wins(self, scheme2_world):
        result = games.self_distinction_game(
            scheme2_world.lineup("xavier", "yvonne"),
            scheme2_world.members["zelda"], 2, 2, scheme2_world.rng,
            scheme2_policy(),
        )
        assert result.wins == 0

    def test_scheme1_rogue_always_wins(self, scheme1_world):
        """The paper's stated gap: instantiation 1 satisfies everything
        *except* self-distinction."""
        result = games.self_distinction_game(
            scheme1_world.lineup("alice", "bob"),
            scheme1_world.members["carol"], 2, 2, scheme1_world.rng,
            scheme1_policy(),
        )
        assert result.wins == result.trials
