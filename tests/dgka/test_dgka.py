"""Tests for the DGKA protocols (Burmester-Desmedt, GDH.2) and the session
driver — correctness for random sizes, Fig. 5 outputs, MITM divergence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import metrics
from repro.dgka import burmester_desmedt as bd
from repro.dgka import gdh
from repro.dgka.base import run_locally
from repro.errors import ProtocolError, SessionError


@pytest.mark.parametrize("make", [bd.make_parties, gdh.make_parties],
                         ids=["bd", "gdh"])
class TestCorrectness:
    def test_two_parties(self, make, rng):
        parties = make(2, rng=rng)
        run_locally(parties)
        assert all(p.acc for p in parties)
        assert len({p.session_key for p in parties}) == 1

    def test_many_parties(self, make, rng):
        parties = make(7, rng=rng)
        run_locally(parties)
        assert len({p.session_key for p in parties}) == 1

    def test_sid_agreement(self, make, rng):
        parties = make(4, rng=rng)
        run_locally(parties)
        assert len({p.sid for p in parties}) == 1

    def test_pid(self, make, rng):
        parties = make(3, rng=rng)
        assert parties[0].pid == (0, 1, 2)

    def test_independent_sessions_different_keys(self, make, rng):
        first = make(3, rng=rng)
        second = make(3, rng=rng)
        run_locally(first)
        run_locally(second)
        assert first[0].session_key != second[0].session_key

    def test_key_unavailable_before_completion(self, make, rng):
        parties = make(3, rng=rng)
        with pytest.raises(SessionError):
            _ = parties[0].session_key

    def test_unique_strings_per_party(self, make, rng):
        parties = make(3, rng=rng)
        run_locally(parties)
        strings = {parties[0].unique_string(i) for i in range(3)}
        assert len(strings) == 3
        # All observers agree on each party's unique string.
        for i in range(3):
            assert len({p.unique_string(i) for p in parties}) == 1


@given(st.integers(min_value=2, max_value=9),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_bd_key_agreement_property(m, seed):
    parties = bd.make_parties(m, rng=random.Random(seed))
    run_locally(parties)
    assert len({p.session_key for p in parties}) == 1


@given(st.integers(min_value=2, max_value=9),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_gdh_key_agreement_property(m, seed):
    parties = gdh.make_parties(m, rng=random.Random(seed))
    run_locally(parties)
    assert len({p.session_key for p in parties}) == 1


class TestCostProfiles:
    def test_bd_constant_large_exponentiations(self, rng):
        """BD: full-size exponentiations per party do not grow with m (the
        key-assembly powers use small exponents; we count the round ops)."""
        costs = {}
        for m in (3, 8):
            metrics.reset()
            parties = bd.make_parties(m, rng=rng)
            with metrics.scope("one"):
                payload0 = parties[0].emit(0)
            costs[m] = metrics.snapshot()["one"].modexp
        assert costs[3] == costs[8]  # round-0 cost independent of m

    def test_gdh_last_party_linear(self, rng):
        for m in (3, 6):
            metrics.reset()
            parties = gdh.make_parties(m, rng=rng)
            run_locally(parties)
        # Smoke: ran to completion; detailed counts live in benchmark E9.


class TestAdversarialDelivery:
    def test_mitm_splits_bd_keys(self, rng):
        parties = bd.make_parties(4, rng=rng)
        adv_z = parties[0].group.power_of_g(rng.randrange(1, parties[0].group.q))

        def mitm(round_no, sender, receiver, payload):
            if (sender < 2) != (receiver < 2):
                return adv_z if round_no == 0 else payload
            return payload

        run_locally(parties, tamper=mitm)
        left = {parties[0].session_key, parties[1].session_key}
        right = {parties[2].session_key, parties[3].session_key}
        assert not left & right

    def test_dropped_message_detected(self, rng):
        parties = bd.make_parties(3, rng=rng)

        def dropper(round_no, sender, receiver, payload):
            return None if sender == 1 and receiver == 0 else payload

        with pytest.raises(ProtocolError):
            run_locally(parties, tamper=dropper)

    def test_bad_payload_rejected(self, rng):
        parties = bd.make_parties(2, rng=rng)

        def corrupter(round_no, sender, receiver, payload):
            return 0 if sender != receiver else payload

        with pytest.raises(ProtocolError):
            run_locally(parties, tamper=corrupter)

    def test_gdh_wrong_arity_rejected(self, rng):
        parties = gdh.make_parties(3, rng=rng)

        def padder(round_no, sender, receiver, payload):
            if round_no == 0 and isinstance(payload, tuple):
                return payload + (1,)
            return payload

        with pytest.raises(ProtocolError):
            run_locally(parties, tamper=padder)


class TestDriver:
    def test_duplicate_indices_rejected(self, rng):
        a = bd.BurmesterDesmedtParty(0, 2, rng=rng)
        b = bd.BurmesterDesmedtParty(0, 2, rng=rng)
        with pytest.raises(SessionError):
            run_locally([a, b])

    def test_bad_index(self, rng):
        with pytest.raises(SessionError):
            bd.BurmesterDesmedtParty(5, 3, rng=rng)
        with pytest.raises(SessionError):
            bd.BurmesterDesmedtParty(0, 1, rng=rng)
