"""Tests for the Katz-Yung authenticated DGKA (the road GCD deliberately
does not take — authentication at the cost of anonymity)."""

import random

import pytest

from repro.crypto.params import dh_group
from repro.dgka import katz_yung as ky
from repro.dgka.base import run_locally
from repro.errors import ProtocolError
from repro.security.adversaries import BdMitmSplitter


class TestCorrectness:
    @pytest.mark.parametrize("m", [2, 3, 5])
    def test_key_agreement(self, m, rng):
        parties = ky.make_parties(m, rng=rng)
        run_locally(parties)
        assert all(p.acc for p in parties)
        assert len({p.session_key for p in parties}) == 1

    def test_fresh_keys_per_session(self, rng):
        group = dh_group(256)
        keys = [ky.keygen(group, rng) for _ in range(3)]
        directory = {i: keys[i][0] for i in range(3)}

        def session():
            parties = [
                ky.KatzYungParty(i, 3, keys[i][1], directory, group, rng)
                for i in range(3)
            ]
            run_locally(parties)
            return parties[0].session_key

        assert session() != session()

    def test_directory_must_cover_everyone(self, rng):
        group = dh_group(256)
        _, secret = ky.keygen(group, rng)
        with pytest.raises(ProtocolError):
            ky.KatzYungParty(0, 3, secret, {0: 1}, group, rng)


class TestAuthentication:
    def test_mitm_splitter_detected(self, rng):
        """The attack that silently defeats raw BD is caught: the
        adversary cannot sign its substituted contributions."""
        group = dh_group(256)
        parties = ky.make_parties(4, group, rng)
        splitter = BdMitmSplitter(group, 4, 2, rng)

        def tamper(round_no, sender, receiver, payload):
            if round_no == 0:
                return payload  # nonce round untouched
            kind, inner, challenge, response = payload
            new_inner = splitter(round_no - 1, sender, receiver, inner)
            if new_inner == inner:
                return payload
            # The adversary must forge a signature on its substitution.
            return (kind, new_inner, challenge, response)

        with pytest.raises(ProtocolError, match="authentication failure"):
            run_locally(parties, tamper=tamper)

    def test_replayed_signature_rejected_across_sessions(self, rng):
        """Nonces bind signatures to the session: replaying a recorded
        signed message in a new session fails verification."""
        group = dh_group(256)
        keys = [ky.keygen(group, rng) for _ in range(2)]
        directory = {i: keys[i][0] for i in range(2)}
        recorded = {}

        def recorder(round_no, sender, receiver, payload):
            recorded[(round_no, sender)] = payload
            return payload

        first = [ky.KatzYungParty(i, 2, keys[i][1], directory, group, rng)
                 for i in range(2)]
        run_locally(first, tamper=recorder)

        def replayer(round_no, sender, receiver, payload):
            if round_no >= 1 and sender == 0:
                return recorded[(round_no, sender)]
            return payload

        second = [ky.KatzYungParty(i, 2, keys[i][1], directory, group, rng)
                  for i in range(2)]
        with pytest.raises(ProtocolError, match="authentication failure"):
            run_locally(second, tamper=replayer)

    def test_identities_exposed_on_the_wire(self, rng):
        """Why GCD does not use KY: verifying the signatures requires (and
        the wire reveals) *which* long-lived public keys participated —
        the antithesis of a secret handshake."""
        parties = ky.make_parties(2, rng=rng)
        observed = []

        def observer(round_no, sender, receiver, payload):
            observed.append((round_no, sender, payload))
            return payload

        run_locally(parties, tamper=observer)
        # Every protocol message past round 0 carries a signature that
        # anyone with the public directory can attribute to its sender.
        group = parties[0].group
        directory = parties[0]._directory
        from repro.crypto import hashing
        from repro.crypto.sigma import SchnorrSignature
        nonces = tuple(sorted(
            payload[1] for r, s, payload in observed if r == 0
        ))
        attributed = 0
        for round_no, sender, payload in observed:
            if round_no == 0:
                continue
            kind, inner, challenge, response = payload
            body = hashing.encode("ky-auth", sender, round_no, inner,
                                  tuple(parties[0]._nonces[i]
                                        for i in sorted(parties[0]._nonces)))
            if SchnorrSignature(challenge, response).verify(
                group, directory[sender], body
            ):
                attributed += 1
        assert attributed == len([o for o in observed if o[0] >= 1]) / 2 * 2
        assert attributed > 0
