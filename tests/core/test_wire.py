"""Tests for the wire codec and signature serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.errors import EncodingError
from repro.gsig.base import StateUpdate

_scalars = st.one_of(
    st.integers(min_value=-(1 << 300), max_value=1 << 300),
    st.binary(max_size=64),
    st.text(max_size=32),
    st.booleans(),
    st.none(),
)
_values = st.recursive(_scalars, lambda inner: st.lists(inner, max_size=4).map(tuple),
                       max_leaves=12)


class TestCodec:
    @given(_values)
    @settings(max_examples=150)
    def test_roundtrip(self, value):
        assert wire.loads(wire.dumps(value)) == value

    def test_lists_become_tuples(self):
        assert wire.loads(wire.dumps([1, [2, 3]])) == (1, (2, 3))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(EncodingError):
            wire.loads(wire.dumps(1) + b"\x00")

    def test_truncated_rejected(self):
        blob = wire.dumps((1, 2, 3))
        with pytest.raises(EncodingError):
            wire.loads(blob[:-2])

    def test_junk_rejected(self):
        with pytest.raises(EncodingError):
            wire.loads(b"\xff\x00\x00\x00\x01x")

    def test_unserializable(self):
        with pytest.raises(EncodingError):
            wire.dumps(3.14)

    def test_empty_input(self):
        with pytest.raises(EncodingError):
            wire.loads(b"")

    @given(_values, st.data())
    @settings(max_examples=150)
    def test_every_strict_prefix_rejected(self, value, data):
        """Truncation anywhere — mid-tag, mid-length, mid-body — must fail
        loudly rather than decode to a different value (frame safety for
        the service transport, which trusts the codec's self-delimiting)."""
        blob = wire.dumps(value)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises(EncodingError):
            wire.loads(blob[:cut])

    @given(_values, st.binary(min_size=1, max_size=16))
    @settings(max_examples=150)
    def test_any_suffix_rejected(self, value, suffix):
        """A frame carrying trailing garbage after a valid encoding is
        malformed — oversized/padded payloads never silently round-trip."""
        with pytest.raises(EncodingError):
            wire.loads(wire.dumps(value) + suffix)


class TestSignatureCodec:
    def test_acjt_roundtrip(self, acjt_world):
        cred = acjt_world.credentials["alice"]
        sig = cred.sign(b"m", acjt_world.rng)
        blob = wire.signature_to_bytes(sig)
        assert wire.signature_from_bytes(blob) == sig

    def test_kty_roundtrip(self, kty_world):
        cred = kty_world.credentials["alice"]
        sig = cred.sign(b"m", kty_world.rng)
        blob = wire.signature_to_bytes(sig)
        assert wire.signature_from_bytes(blob) == sig

    def test_unknown_type_rejected(self):
        with pytest.raises(EncodingError):
            wire.signature_to_bytes("not a signature")

    def test_junk_blob_rejected(self):
        with pytest.raises(EncodingError):
            wire.signature_from_bytes(wire.dumps(("mystery", 1, 2)))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(EncodingError):
            wire.signature_from_bytes(wire.dumps(("gsig/acjt", 1, 2)))


class TestStateUpdateCodec:
    def test_roundtrip(self):
        update = StateUpdate(epoch=7, kind="revoke",
                             payload={"deleted_e": 12345, "acc_value": 678})
        blob = wire.state_update_to_bytes(update)
        restored = wire.state_update_from_bytes(blob)
        assert restored == update

    def test_junk_rejected(self):
        with pytest.raises(EncodingError):
            wire.state_update_from_bytes(wire.dumps(("other", 1)))
