"""Handshake-engine tests for both instantiations: correctness matrix,
outcome structure, policies, MITM, self-distinction, decoys."""

import pytest

from repro.core.handshake import HandshakePolicy, run_handshake, xor_keys
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.dgka.gdh import GdhParty
from repro.errors import ParameterError, ProtocolError


class TestXorKeys:
    def test_involution(self):
        a, b = b"\x01" * 32, b"\xf0" * 32
        assert xor_keys(xor_keys(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            xor_keys(b"ab", b"abc")


class TestScheme1Correctness:
    def test_same_group_succeeds(self, scheme1_world):
        outcomes = run_handshake(
            scheme1_world.lineup("alice", "bob", "carol"),
            scheme1_policy(), scheme1_world.rng,
        )
        assert all(o.success for o in outcomes)

    def test_two_party(self, scheme1_world):
        outcomes = run_handshake(
            scheme1_world.lineup("alice", "bob"),
            scheme1_policy(), scheme1_world.rng,
        )
        assert all(o.success for o in outcomes)

    def test_session_keys_agree(self, scheme1_world):
        outcomes = run_handshake(
            scheme1_world.lineup("alice", "bob", "carol"),
            scheme1_policy(), scheme1_world.rng,
        )
        assert len({o.session_key for o in outcomes}) == 1
        assert outcomes[0].session_key is not None

    def test_session_keys_fresh_per_session(self, scheme1_world):
        first = run_handshake(scheme1_world.lineup("alice", "bob"),
                              scheme1_policy(), scheme1_world.rng)
        second = run_handshake(scheme1_world.lineup("alice", "bob"),
                               scheme1_policy(), scheme1_world.rng)
        assert first[0].session_key != second[0].session_key

    def test_mixed_groups_fail(self, scheme1_world, other_scheme1_world):
        lineup = scheme1_world.lineup("alice") + other_scheme1_world.lineup("dan")
        outcomes = run_handshake(lineup, scheme1_policy(), scheme1_world.rng)
        assert not any(o.success for o in outcomes)
        assert all(o.session_key is None for o in outcomes)

    def test_mixed_groups_publish_decoys(self, scheme1_world, other_scheme1_world):
        lineup = scheme1_world.lineup("alice", "bob") + other_scheme1_world.lineup("dan")
        outcomes = run_handshake(lineup, scheme1_policy(), scheme1_world.rng)
        # Strict policy: everyone published decoys; outcomes carry no
        # transcript for the honest parties (they went CASE 2).
        assert not any(o.success for o in outcomes)

    def test_single_party_rejected(self, scheme1_world):
        with pytest.raises(ProtocolError):
            run_handshake(scheme1_world.lineup("alice"), scheme1_policy(),
                          scheme1_world.rng)

    def test_transcript_shape(self, scheme1_world):
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(), scheme1_world.rng)
        transcript = outcomes[0].transcript
        assert transcript.m == 2
        assert len(transcript.sid) == 32
        for entry in transcript.entries:
            assert len(entry.delta) == 4
            assert isinstance(entry.theta, bytes)


class TestPolicies:
    def test_untraceable_policy_skips_phase3(self, scheme1_world):
        outcomes = run_handshake(
            scheme1_world.lineup("alice", "bob"),
            scheme1_policy(traceable=False), scheme1_world.rng,
        )
        assert all(o.success for o in outcomes)
        assert all(o.transcript is None for o in outcomes)
        assert outcomes[0].session_key is not None

    def test_untraceable_policy_mixed_fails(self, scheme1_world, other_scheme1_world):
        lineup = scheme1_world.lineup("alice") + other_scheme1_world.lineup("dan")
        outcomes = run_handshake(lineup, scheme1_policy(traceable=False),
                                 scheme1_world.rng)
        assert not any(o.success for o in outcomes)

    def test_gdh_dgka_swap(self, scheme1_world):
        policy = HandshakePolicy(
            dgka_factory=lambda i, m, rng: GdhParty(i, m, rng=rng)
        )
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob", "carol"),
                                 policy, scheme1_world.rng)
        assert all(o.success for o in outcomes)


class TestPartialSuccess:
    def test_subsets_discovered(self, scheme1_world, other_scheme1_world):
        lineup = (scheme1_world.lineup("alice", "bob")
                  + other_scheme1_world.lineup("dan", "eve")
                  + scheme1_world.lineup("carol"))
        outcomes = run_handshake(lineup, scheme1_policy(partial_success=True),
                                 scheme1_world.rng)
        assert outcomes[0].confirmed_peers == {1, 4}
        assert outcomes[1].confirmed_peers == {0, 4}
        assert outcomes[2].confirmed_peers == {3}
        assert outcomes[3].confirmed_peers == {2}
        assert outcomes[4].confirmed_peers == {0, 1}
        # Full success still requires everyone in one group.
        assert not any(o.success for o in outcomes)
        # But subset members derived usable (equal) channel keys.
        assert outcomes[0].session_key == outcomes[1].session_key is not None
        assert outcomes[2].session_key == outcomes[3].session_key is not None
        assert outcomes[0].session_key != outcomes[2].session_key

    def test_full_group_partial_policy_succeeds(self, scheme1_world):
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(partial_success=True),
                                 scheme1_world.rng)
        assert all(o.success for o in outcomes)


class TestScheme2:
    def test_same_group_succeeds(self, scheme2_world):
        outcomes = run_handshake(scheme2_world.lineup("xavier", "yvonne", "zelda"),
                                 scheme2_policy(), scheme2_world.rng)
        assert all(o.success and o.distinct for o in outcomes)

    def test_rogue_two_roles_detected(self, scheme2_world):
        lineup = scheme2_world.lineup("xavier", "yvonne", "xavier")
        outcomes = run_handshake(lineup, scheme2_policy(), scheme2_world.rng)
        honest = outcomes[1]
        assert honest.distinct is False
        assert not honest.success
        assert honest.duplicate_indices == {0, 2}

    def test_rogue_three_roles_detected(self, scheme2_world):
        lineup = scheme2_world.lineup("xavier", "xavier", "yvonne", "xavier")
        outcomes = run_handshake(lineup, scheme2_policy(), scheme2_world.rng)
        honest = outcomes[2]
        assert honest.distinct is False
        assert honest.duplicate_indices == {0, 1, 3}

    def test_scheme1_rogue_undetected(self, scheme1_world):
        """The contrast the paper draws: without self-distinction the same
        attack sails through."""
        lineup = scheme1_world.lineup("alice", "bob", "alice")
        outcomes = run_handshake(lineup, scheme1_policy(), scheme1_world.rng)
        assert all(o.success for o in outcomes)

    def test_scheme2_without_distinction_policy(self, scheme2_world):
        """Self-distinction is selectable: switching it off reverts to
        plain (unshielded) KTY signing and the rogue goes unnoticed."""
        lineup = scheme2_world.lineup("xavier", "yvonne", "xavier")
        outcomes = run_handshake(lineup, scheme2_policy(), scheme2_world.rng)
        assert not outcomes[1].success
        relaxed = HandshakePolicy(self_distinction=False)
        outcomes = run_handshake(lineup, relaxed, scheme2_world.rng)
        assert outcomes[1].success


class TestMitm:
    def test_mitm_on_dgka_downgrades_to_failure(self, scheme1_world):
        """The Fig. 5 remark: raw DGKA is MITM-vulnerable, but Phase II
        MACs keyed with k' = k* XOR k expose the split."""
        from repro.crypto.params import dh_group
        rng = scheme1_world.rng
        bd_group = dh_group(256)  # the default DGKA group
        adv = bd_group.power_of_g(rng.randrange(1, bd_group.q))

        def mitm(round_no, sender, receiver, payload):
            if round_no == 0 and (sender < 2) != (receiver < 2):
                return adv
            return payload

        lineup = scheme1_world.lineup("alice", "bob", "carol", "dave")
        outcomes = run_handshake(lineup, scheme1_policy(), rng, tamper=mitm)
        assert not any(o.success for o in outcomes)

    def test_partial_policy_mitm_still_links_within_halves(self, scheme1_world):
        from repro.crypto.params import dh_group
        rng = scheme1_world.rng
        bd_group = dh_group(256)
        adv = bd_group.power_of_g(987654321 % bd_group.q)

        def mitm(round_no, sender, receiver, payload):
            if round_no == 0 and (sender < 2) != (receiver < 2):
                return adv
            return payload

        lineup = scheme1_world.lineup("alice", "bob", "carol", "dave")
        outcomes = run_handshake(lineup, scheme1_policy(partial_success=True),
                                 rng, tamper=mitm)
        # The MITM split means each half only confirms its own side.
        assert outcomes[0].confirmed_peers <= {1}
        assert outcomes[2].confirmed_peers <= {3}
