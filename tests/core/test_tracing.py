"""Tests for GCD.TraceUser and the transcript machinery."""

import pytest

from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.core.transcript import HandshakeTranscript, signed_message
from repro.errors import TracingError


class TestTraceScheme1:
    def test_full_trace(self, scheme1_world):
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob", "carol"),
                                 scheme1_policy(), scheme1_world.rng)
        result = scheme1_world.framework.trace(outcomes[0].transcript)
        assert sorted(result.identified) == ["alice", "bob", "carol"]
        assert result.unresolved == ()
        assert result.distinct_signers == 3

    def test_exhaustive_search_variant(self, scheme1_world):
        """The paper's worst case: the GA searches all recovered session
        keys for each theta instead of assuming pairing by position."""
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(), scheme1_world.rng)
        result = scheme1_world.framework.trace(outcomes[0].transcript,
                                               exhaustive=True)
        assert sorted(result.identified) == ["alice", "bob"]

    def test_foreign_authority_cannot_trace(self, scheme1_world,
                                            other_scheme1_world):
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(), scheme1_world.rng)
        result = other_scheme1_world.framework.trace(outcomes[0].transcript)
        assert result.identified == ()
        assert len(result.unresolved) == 2

    def test_decoy_entries_unresolved(self, scheme1_world, other_scheme1_world):
        lineup = (scheme1_world.lineup("alice", "bob")
                  + other_scheme1_world.lineup("dan"))
        outcomes = run_handshake(lineup, scheme1_policy(partial_success=True),
                                 scheme1_world.rng)
        result = scheme1_world.framework.trace(outcomes[0].transcript)
        assert sorted(result.identified) == ["alice", "bob"]
        assert 2 in result.unresolved

    def test_trace_after_membership_churn(self, rng):
        """Transcripts remain traceable after later joins/revocations."""
        from repro.core.scheme1 import create_scheme1
        framework = create_scheme1("churn", rng=rng)
        a = framework.admit_member("a", rng)
        b = framework.admit_member("b", rng)
        outcomes = run_handshake([a, b], scheme1_policy(), rng)
        transcript = outcomes[0].transcript
        framework.admit_member("late", rng)
        framework.remove_user("b")
        result = framework.trace(transcript)
        assert sorted(result.identified) == ["a", "b"]


class TestTraceScheme2:
    def test_full_trace(self, scheme2_world):
        outcomes = run_handshake(scheme2_world.lineup("xavier", "yvonne"),
                                 scheme2_policy(), scheme2_world.rng)
        result = scheme2_world.framework.trace(outcomes[0].transcript)
        assert sorted(result.identified) == ["xavier", "yvonne"]

    def test_trace_reveals_multi_role(self, scheme2_world):
        """Even when verification catches the rogue, tracing shows the
        duplicate identity (distinct_signers < m)."""
        lineup = scheme2_world.lineup("xavier", "yvonne", "xavier")
        outcomes = run_handshake(lineup, scheme2_policy(), scheme2_world.rng)
        transcript = outcomes[1].transcript
        result = scheme2_world.framework.trace(transcript)
        assert result.distinct_signers == 2
        assert len(result.participants) == 3


class TestTranscriptMechanics:
    def test_signed_message_binds_sid_and_delta(self):
        m1 = signed_message(b"sid1", (1, 2, 3, 4))
        m2 = signed_message(b"sid2", (1, 2, 3, 4))
        m3 = signed_message(b"sid1", (1, 2, 3, 5))
        assert len({m1, m2, m3}) == 3

    def test_splice_resistant(self, scheme1_world):
        """An entry moved into another session's transcript never opens."""
        first = run_handshake(scheme1_world.lineup("alice", "bob"),
                              scheme1_policy(), scheme1_world.rng)[0].transcript
        second = run_handshake(scheme1_world.lineup("carol", "dave"),
                               scheme1_policy(), scheme1_world.rng)[0].transcript
        frankenstein = HandshakeTranscript(
            sid=second.sid, entries=(first.entries[0], second.entries[1])
        )
        result = scheme1_world.framework.trace(frankenstein, exhaustive=True)
        assert "alice" not in result.identified

    def test_decrypt_tracing_rejects_decoys(self, scheme1_world, rng):
        from repro.crypto.cramer_shoup import CramerShoup
        pk = scheme1_world.framework.authority.public_info().tracing_public_key
        decoy = CramerShoup.random_ciphertext(pk, rng)
        with pytest.raises(TracingError):
            scheme1_world.framework.authority.decrypt_tracing(decoy.as_tuple())
