"""Regression: double revoke raises RevocationError, not bare
MembershipError.

`GroupAuthority.remove_user` used to raise `MembershipError` for a
second revocation of the same user while the gsig layers (`acjt.revoke`,
`kty.revoke`) raise `RevocationError` for the identical condition — a
caller distinguishing "unknown member" from "already revoked" got
different exception types depending on which layer noticed first.
`RevocationError` subclasses `MembershipError`, so pre-existing handlers
keep working.
"""

import random

import pytest

from repro.core.scheme1 import create_scheme1
from repro.errors import MembershipError, RevocationError


@pytest.fixture(scope="module")
def small_world():
    rng = random.Random(8118)
    framework = create_scheme1("revoc-regress", rng=rng)
    members = [framework.admit_member(f"u{i}", rng) for i in range(2)]
    return framework, members


def test_double_revoke_raises_revocation_error(small_world):
    framework, _ = small_world
    framework.remove_user("u1")
    with pytest.raises(RevocationError):
        framework.remove_user("u1")


def test_revocation_error_still_satisfies_membership_handlers(small_world):
    """Callers that caught MembershipError before the fix must keep
    working — the subclass relationship is the compatibility contract."""
    framework, _ = small_world
    with pytest.raises(MembershipError):
        framework.remove_user("u1")      # already revoked by the test above
    assert issubclass(RevocationError, MembershipError)


def test_unknown_user_remains_membership_error(small_world):
    """Only the *double revoke* was reclassified; removing a user that
    was never admitted is still a plain membership failure."""
    framework, _ = small_world
    with pytest.raises(MembershipError) as excinfo:
        framework.remove_user("never-admitted")
    assert not isinstance(excinfo.value, RevocationError)
