"""Observability overhead guard (CI satellite).

Tracing must be *observationally free*: enabling it cannot change what the
protocol computes (E1-style per-party modexp counts, message counts, the
session keys themselves) and may only cost a bounded amount of wall
clock.  A regression here means instrumentation leaked into protocol
logic."""

import random
import time

from repro import metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import create_scheme1, scheme1_policy

M = 3
SEED = 424242


def _run_world(tracing: bool):
    """One fully seeded handshake under a fresh recorder; returns
    (per-party counts, session keys, elapsed wall time)."""
    rng = random.Random(SEED)
    framework = create_scheme1("overhead", rng=rng)
    members = [framework.admit_member(f"user-{i}", rng) for i in range(M)]
    rec = metrics.Recorder()
    rec.tracing = tracing
    with metrics.using(rec):
        started = time.perf_counter()
        outcomes = run_handshake(members, scheme1_policy(), rng)
        elapsed = time.perf_counter() - started
    assert all(o.success for o in outcomes)
    snap = rec.snapshot()
    counts = [
        (snap[f"hs:{i}"].modexp,
         snap[f"hs:{i}"].messages_sent,
         snap[f"hs:{i}"].messages_received)
        for i in range(M)
    ]
    keys = [o.session_key for o in outcomes]
    return counts, keys, elapsed


def test_tracing_does_not_change_the_protocol():
    counts_off, keys_off, t_off = _run_world(tracing=False)
    counts_on, keys_on, t_on = _run_world(tracing=True)
    # E1 invariant: identical per-party operation counts ...
    assert counts_on == counts_off
    # ... and byte-identical outputs (same seed, same keys).
    assert keys_on == keys_off
    # Wall-clock budget: generous enough for CI noise, tight enough to
    # catch accidental per-operation span allocation.
    assert t_on <= 3.0 * t_off + 1.0, (t_on, t_off)


def test_tracing_off_records_no_spans():
    rng = random.Random(SEED)
    framework = create_scheme1("overhead-quiet", rng=rng)
    members = [framework.admit_member(f"user-{i}", rng) for i in range(2)]
    rec = metrics.Recorder()
    with metrics.using(rec):
        run_handshake(members, scheme1_policy(), rng)
    assert rec.spans() == []
    assert rec.events() == []


def test_tracing_on_produces_phase_spans_per_party():
    counts, _, _ = _run_world(tracing=True)  # sanity reuse
    rng = random.Random(SEED)
    framework = create_scheme1("overhead-spans", rng=rng)
    members = [framework.admit_member(f"user-{i}", rng) for i in range(M)]
    rec = metrics.Recorder()
    rec.tracing = True
    with metrics.using(rec):
        run_handshake(members, scheme1_policy(), rng)
    names = [s.name for s in rec.spans()]
    for phase in ("phase:I", "phase:II", "phase:III"):
        assert phase in names
    assert "handshake" in names
    assert names.count("gsig:sign") == M
    # hs:latency histogram observed exactly once for the run.
    assert rec.histograms()["hs:latency"].total == 1
