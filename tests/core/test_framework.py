"""Framework lifecycle tests: SHS.CreateGroup / AdmitMember / RemoveUser /
Update over the bulletin board, plus the dual-revocation mechanics."""

import random

import pytest

from repro.core.framework import GcdFramework
from repro.core.scheme1 import create_scheme1, scheme1_policy
from repro.core.scheme2 import create_scheme2, scheme2_policy
from repro.core.handshake import run_handshake
from repro.errors import MembershipError, RevocationError


@pytest.fixture
def fresh_world(rng):
    framework = create_scheme1("lifecycle", rng=rng)
    members = {n: framework.admit_member(n, rng) for n in ("a", "b", "c")}
    return framework, members


class TestLifecycle:
    def test_members_synchronized_after_joins(self, fresh_world):
        framework, members = fresh_world
        authority_key = framework.authority.group_key()
        assert all(m.group_key == authority_key for m in members.values())

    def test_board_carries_encrypted_updates(self, fresh_world):
        framework, _ = fresh_world
        posts = framework.authority.board.read_since(0)
        assert len(posts) == 3  # one per admit
        assert all(p.topic == "gcd/lifecycle" for p in posts)

    def test_remove_user(self, fresh_world, rng):
        framework, members = fresh_world
        framework.remove_user("b")
        assert members["b"].revoked
        assert not members["a"].revoked
        assert members["a"].group_key == framework.authority.group_key()
        with pytest.raises(RevocationError):
            _ = members["b"].group_key
        assert framework.authority.crl == ("b",)

    def test_double_remove_rejected(self, fresh_world):
        framework, _ = fresh_world
        framework.remove_user("b")
        with pytest.raises(MembershipError):
            framework.remove_user("b")

    def test_remove_unknown(self, fresh_world):
        framework, _ = fresh_world
        with pytest.raises(MembershipError):
            framework.remove_user("ghost")

    def test_duplicate_admit_rejected(self, fresh_world, rng):
        framework, _ = fresh_world
        with pytest.raises(MembershipError):
            framework.admit_member("a", rng)

    def test_member_accessors(self, fresh_world):
        framework, members = fresh_world
        assert framework.member("a") is members["a"]
        with pytest.raises(MembershipError):
            framework.member("ghost")
        framework.remove_user("c")
        assert {m.user_id for m in framework.members()} == {"a", "b"}

    def test_late_update_catches_up(self, rng):
        """A member that missed several posts catches up in one update()."""
        framework = create_scheme1("late", rng=rng)
        a = framework.authority.admit_member("a", rng)
        from repro.core.member import GcdMember
        member_a = GcdMember(a, framework.authority.board)
        # Two more members join while a never updates.
        framework.authority.admit_member("b", rng)
        framework.authority.admit_member("c", rng)
        applied = member_a.update()
        assert applied == 2
        assert member_a.group_key == framework.authority.group_key()

    def test_handshake_via_framework_helper(self, fresh_world):
        framework, _ = fresh_world
        outcomes = framework.handshake(["a", "c"], scheme1_policy(),
                                       random.Random(5))
        assert all(o.success for o in outcomes)


class TestRevocationInteraction:
    def test_revoked_member_fails_handshake(self, fresh_world, rng):
        framework, members = fresh_world
        framework.remove_user("b")
        lineup = [members["a"], members["b"], members["c"]]
        outcomes = run_handshake(lineup, scheme1_policy(), rng)
        assert not any(o.success for o in outcomes)

    def test_survivors_handshake_after_revocation(self, fresh_world, rng):
        framework, members = fresh_world
        framework.remove_user("b")
        outcomes = run_handshake([members["a"], members["c"]],
                                 scheme1_policy(), rng)
        assert all(o.success for o in outcomes)

    def test_readmission_cycle(self, rng):
        framework = create_scheme1("cycle", rng=rng)
        a = framework.admit_member("a", rng)
        framework.admit_member("b", rng)
        framework.remove_user("a")
        # A new identity for the same human re-enrols cleanly.
        a2 = framework.admit_member("a-again", rng)
        outcomes = run_handshake([a2, framework.member("b")],
                                 scheme1_policy(), rng)
        assert all(o.success for o in outcomes)
        del a

    def test_scheme2_lifecycle(self, rng):
        framework = create_scheme2("s2-lifecycle", rng=rng)
        members = {n: framework.admit_member(n, rng) for n in ("x", "y", "z")}
        framework.remove_user("y")
        outcomes = run_handshake([members["x"], members["z"]],
                                 scheme2_policy(), rng)
        assert all(o.success for o in outcomes)
        lineup = [members["x"], members["y"], members["z"]]
        outcomes = run_handshake(lineup, scheme2_policy(), rng)
        assert not any(o.success for o in outcomes)


class TestCustomAssembly:
    def test_nnl_backed_framework(self, rng):
        framework = create_scheme1("nnl-backed", cgkd="sd", nnl_capacity=8,
                                   rng=rng)
        a = framework.admit_member("a", rng)
        b = framework.admit_member("b", rng)
        outcomes = run_handshake([a, b], scheme1_policy(), rng)
        assert all(o.success for o in outcomes)
        framework.remove_user("b")
        assert b.revoked

    def test_cs_backed_framework(self, rng):
        framework = create_scheme1("cs-backed", cgkd="cs", nnl_capacity=8,
                                   rng=rng)
        a = framework.admit_member("a", rng)
        b = framework.admit_member("b", rng)
        outcomes = run_handshake([a, b], scheme1_policy(), rng)
        assert all(o.success for o in outcomes)

    def test_bad_cgkd_choice(self, rng):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            create_scheme1("bad", cgkd="wrong", rng=rng)

    def test_create_generic(self, rng):
        framework = GcdFramework.create("generic", gsig_kind="kty", rng=rng)
        assert framework.group_id == "generic"
        a = framework.admit_member("a", rng)
        assert a.supports_self_distinction
