"""Tests for multi-group wallets and clearance-level handshakes (the
generalizations the paper sketches in Sections 1-2)."""

import random

import pytest

from repro.core.handshake import run_handshake
from repro.core.roles import ClearanceAuthority, handshake_at_level
from repro.core.scheme1 import create_scheme1, scheme1_policy
from repro.core.wallet import MembershipWallet
from repro.errors import MembershipError, ParameterError


@pytest.fixture(scope="module")
def two_groups():
    rng = random.Random(61)
    fbi = create_scheme1("fbi-w", rng=rng)
    cia = create_scheme1("cia-w", rng=rng)
    fbi_only = fbi.admit_member("fbi-only", rng)
    cia_only = cia.admit_member("cia-only", rng)
    double = MembershipWallet("double-agent")
    double.enroll(fbi, rng, alias="da-fbi")
    double.enroll(cia, rng, alias="da-cia")
    return fbi, cia, fbi_only, cia_only, double, rng


class TestWallet:
    def test_groups_listing(self, two_groups):
        *_, double, _ = two_groups
        assert double.groups() == ["cia-w", "fbi-w"]

    def test_duplicate_enroll_rejected(self, two_groups):
        fbi, _, _, _, double, rng = two_groups
        with pytest.raises(MembershipError):
            double.enroll(fbi, rng, alias="da-fbi-2")

    def test_missing_credential(self, two_groups):
        *_, double, _ = two_groups
        with pytest.raises(MembershipError):
            double.credential_for("mi6")

    def test_handshake_with_either_side(self, two_groups):
        fbi, cia, fbi_only, cia_only, double, rng = two_groups
        outcomes = run_handshake(
            [double.credential_for("fbi-w"), fbi_only], scheme1_policy(), rng
        )
        assert all(o.success for o in outcomes)
        outcomes = run_handshake(
            [double.credential_for("cia-w"), cia_only], scheme1_policy(), rng
        )
        assert all(o.success for o in outcomes)

    def test_wrong_credential_fails(self, two_groups):
        _, _, fbi_only, _, double, rng = two_groups
        outcomes = run_handshake(
            [double.credential_for("cia-w"), fbi_only], scheme1_policy(), rng
        )
        assert not any(o.success for o in outcomes)

    def test_probe_discovers_shared_affiliations(self, two_groups):
        _, _, fbi_only, cia_only, double, rng = two_groups
        results = double.probe([fbi_only, cia_only], rng=rng)
        fbi_own, _ = results["fbi-w"]
        cia_own, _ = results["cia-w"]
        assert fbi_own.confirmed_peers == {1}  # fbi_only at index 1
        assert cia_own.confirmed_peers == {2}  # cia_only at index 2

    def test_cross_group_aliases_unlinkable_by_authorities(self, two_groups):
        """Colluding GAs tracing the double agent's sessions see two
        unrelated aliases — wallet-level pseudonymity."""
        fbi, cia, fbi_only, _, double, rng = two_groups
        outcomes = run_handshake(
            [double.credential_for("fbi-w"), fbi_only], scheme1_policy(), rng
        )
        traced = fbi.trace(outcomes[0].transcript)
        assert "da-fbi" in traced.identified
        assert "double-agent" not in traced.identified
        assert "da-cia" not in traced.identified

    def test_revocation_reflected(self, rng):
        group = create_scheme1("wr", rng=rng)
        wallet = MembershipWallet("w")
        wallet.enroll(group, rng)
        assert wallet.active_groups() == ["wr"]
        group.remove_user("w")
        wallet.update_all()
        assert wallet.active_groups() == []
        wallet.drop("wr")
        assert wallet.groups() == []


@pytest.fixture(scope="module")
def agency():
    rng = random.Random(62)
    authority = ClearanceAuthority("agency", levels=3, rng=rng)
    agents = {
        "junior": authority.admit("junior", 1, rng),
        "field": authority.admit("field", 2, rng),
        "chief": authority.admit("chief", 3, rng),
        "chief2": authority.admit("chief2", 3, rng),
    }
    return authority, agents, rng


class TestClearanceLevels:
    def test_admission_enrolls_all_lower_levels(self, agency):
        _, agents, _ = agency
        assert agents["chief"].wallet.groups() == [
            "agency/clearance-1", "agency/clearance-2", "agency/clearance-3",
        ]
        assert agents["junior"].wallet.groups() == ["agency/clearance-1"]

    def test_everyone_meets_at_level_one(self, agency):
        _, agents, rng = agency
        outcomes = handshake_at_level(
            [agents["junior"], agents["field"], agents["chief"]], 1, rng=rng
        )
        assert all(o.success for o in outcomes)

    def test_level_two_excludes_junior(self, agency):
        """The paper's scenario: clearance-2 agents reveal themselves only
        to peers with at least clearance 2."""
        _, agents, rng = agency
        outcomes = handshake_at_level(
            [agents["field"], agents["chief"], agents["junior"]], 2, rng=rng
        )
        assert not any(o.success for o in outcomes)
        # Without the junior, the level-2 handshake succeeds.
        outcomes = handshake_at_level(
            [agents["field"], agents["chief"]], 2, rng=rng
        )
        assert all(o.success for o in outcomes)

    def test_level_three_chiefs_only(self, agency):
        _, agents, rng = agency
        outcomes = handshake_at_level(
            [agents["chief"], agents["chief2"]], 3, rng=rng
        )
        assert all(o.success for o in outcomes)

    def test_under_cleared_agent_learns_nothing(self, agency):
        """The junior bluffing into a level-2 handshake gets a failed
        outcome with zero confirmed peers."""
        _, agents, rng = agency
        outcomes = handshake_at_level(
            [agents["field"], agents["junior"]], 2, rng=rng
        )
        assert not outcomes[1].success
        assert outcomes[1].confirmed_peers == set()

    def test_credential_at_checks_level(self, agency):
        _, agents, _ = agency
        with pytest.raises(MembershipError):
            agents["junior"].credential_at(2)

    def test_downgrade(self, rng):
        authority = ClearanceAuthority("dg", levels=3, rng=rng)
        boss = authority.admit("boss", 3, rng)
        peer = authority.admit("peer", 3, rng)
        authority.downgrade(boss, 1)
        assert boss.level == 1
        outcomes = handshake_at_level([boss, peer], 3, rng=rng)
        assert not any(o.success for o in outcomes)
        outcomes = handshake_at_level([boss, peer], 1, rng=rng)
        assert all(o.success for o in outcomes)

    def test_full_revocation(self, rng):
        authority = ClearanceAuthority("rv", levels=2, rng=rng)
        spy = authority.admit("spy", 2, rng)
        peer = authority.admit("peer", 2, rng)
        authority.revoke(spy)
        assert spy.wallet.active_groups() == []
        outcomes = handshake_at_level([peer, spy], 1, rng=rng)
        assert not any(o.success for o in outcomes)

    def test_bad_parameters(self, agency):
        authority, agents, rng = agency
        with pytest.raises(ParameterError):
            authority.admit("x", 9, rng)
        with pytest.raises(ParameterError):
            ClearanceAuthority("bad", 0)
        with pytest.raises(ParameterError):
            authority.framework(99)
        with pytest.raises(ParameterError):
            authority.downgrade(agents["junior"], 5)