"""Tests for the partially-successful-handshake analysis helpers."""

from repro.core.handshake import HandshakeOutcome, run_handshake
from repro.core.partial import partition_matches, subsets, subsets_are_consistent
from repro.core.scheme1 import scheme1_policy


def _outcome(index, peers):
    return HandshakeOutcome(index=index, success=False,
                            confirmed_peers=set(peers))


class TestHelpers:
    def test_subsets_extraction(self):
        outcomes = [_outcome(0, {1}), _outcome(1, {0}), _outcome(2, set())]
        assert subsets(outcomes) == [frozenset({0, 1})]

    def test_consistency_holds(self):
        outcomes = [_outcome(0, {1}), _outcome(1, {0})]
        assert subsets_are_consistent(outcomes)

    def test_consistency_violated(self):
        outcomes = [_outcome(0, {1, 2}), _outcome(1, {0}), _outcome(2, set())]
        assert not subsets_are_consistent(outcomes)

    def test_partition_matches_ignores_singletons(self):
        outcomes = [_outcome(0, {1}), _outcome(1, {0}), _outcome(2, set())]
        assert partition_matches(outcomes, [{0, 1}, {2}])
        assert not partition_matches(outcomes, [{0, 2}, {1}])


class TestPaperExample:
    def test_five_party_two_three_split(self, scheme1_world, other_scheme1_world):
        """The paper's footnote-2 example: 5 parties, 2 of group A and 3 of
        group B; both subsets complete their handshakes and see the right
        sizes."""
        lineup = (other_scheme1_world.lineup("dan", "eve")
                  + scheme1_world.lineup("alice", "bob", "carol"))
        outcomes = run_handshake(lineup, scheme1_policy(partial_success=True),
                                 scheme1_world.rng)
        assert subsets_are_consistent(outcomes)
        assert partition_matches(outcomes, [{0, 1}, {2, 3, 4}])
        assert outcomes[0].subset_size == 2
        assert outcomes[2].subset_size == 3
