"""Tests for the observability layer: timers, trace events, exporters,
thread isolation, and per-party cost parity between the synchronous
handshake engine and the network runner (both feed the paper's O(m)
accounting, so they must agree)."""

import json
import random
import threading
import time

import pytest

from repro import metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.crypto.modmath import mexp
from repro.net.runner import run_handshake_over_network


class TestTimers:
    def test_scope_accrues_wall_time(self):
        metrics.reset()
        with metrics.scope("slow"):
            time.sleep(0.01)
        assert metrics.snapshot()["slow"].wall_time >= 0.009

    def test_reentrant_scope_does_not_double_book_time(self):
        metrics.reset()
        with metrics.scope("t"):
            time.sleep(0.05)
            with metrics.scope("t"):
                time.sleep(0.05)
        wall = metrics.snapshot()["t"].wall_time
        # Inclusive time is ~0.1s; double-booking the inner re-entry would
        # push it past ~0.15s.
        assert 0.09 <= wall <= 0.14

    def test_timer_alias(self):
        metrics.reset()
        with metrics.timer("clocked"):
            time.sleep(0.005)
        assert metrics.snapshot()["clocked"].wall_time > 0


class TestTraceEvents:
    def test_disabled_by_default(self):
        metrics.reset()
        with metrics.scope("quiet"):
            mexp(2, 10, 101)
        assert metrics.events() == []

    def test_scope_begin_end_pairing(self):
        metrics.reset()
        with metrics.tracing():
            with metrics.scope("outer"):
                with metrics.scope("inner"):
                    pass
        kinds = [(e.kind, e.scope) for e in metrics.events()]
        assert kinds == [
            ("scope-begin", "outer"),
            ("scope-begin", "inner"),
            ("scope-end", "inner"),
            ("scope-end", "outer"),
        ]

    def test_modexp_bursts_coalesce(self):
        metrics.reset()
        with metrics.tracing():
            with metrics.scope("burst"):
                for _ in range(5):
                    mexp(2, 10, 101)
        bursts = [e for e in metrics.events() if e.kind == "modexp"]
        assert len(bursts) == 1
        assert bursts[0].data["count"] == 5
        assert bursts[0].scope == "burst"
        assert bursts[0].ts_end >= bursts[0].ts

    def test_message_events_carry_sizes(self):
        metrics.reset()
        with metrics.tracing():
            metrics.count_message_sent(17)
            metrics.count_message_received(17)
        kinds = {e.kind: e for e in metrics.events()}
        assert kinds["send"].data["nbytes"] == 17
        assert kinds["recv"].data["nbytes"] == 17

    def test_reset_clears_events(self):
        metrics.reset()
        metrics.enable_tracing()
        with metrics.scope("x"):
            pass
        metrics.reset()
        assert metrics.events() == []
        metrics.enable_tracing(False)


class TestExporters:
    def test_json_round_trip(self):
        metrics.reset()
        with metrics.scope("j"):
            mexp(2, 10, 101)
            metrics.bump("widgets", 2)
        doc = json.loads(metrics.export_json())
        assert doc["scopes"]["j"]["modexp"] == 1
        assert doc["scopes"]["j"]["widgets"] == 2
        assert doc["scopes"]["total"]["modexp"] == 1
        assert "events" not in doc

    def test_json_with_events(self):
        metrics.reset()
        with metrics.tracing():
            with metrics.scope("j"):
                mexp(2, 10, 101)
        doc = json.loads(metrics.export_json(include_events=True))
        assert any(e["kind"] == "modexp" for e in doc["events"])

    def test_csv_has_scope_rows_and_extra_columns(self):
        metrics.reset()
        with metrics.scope("c"):
            metrics.count_message_sent(10)
            metrics.bump("bonus")
        lines = metrics.export_csv().strip().splitlines()
        header = lines[0].split(",")
        assert header[0] == "scope"
        assert "bytes_sent" in header
        assert "bonus" in header
        rows = {line.split(",")[0]: line.split(",") for line in lines[1:]}
        assert rows["c"][header.index("messages_sent")] == "1"
        assert rows["c"][header.index("bytes_sent")] == "10"

    def test_value_accessor(self):
        metrics.reset()
        with metrics.scope("v"):
            mexp(2, 10, 101)
            metrics.bump("odd:key")
        assert metrics.value("v", "modexp") == 1
        assert metrics.value("v", "odd:key") == 1
        assert metrics.value("v", "missing", default=-1) == -1
        assert metrics.value("no-such-scope", "modexp") == 0

    def test_format_table_selects_scopes(self):
        metrics.reset()
        with metrics.scope("keep"):
            mexp(2, 10, 101)
        with metrics.scope("drop"):
            mexp(2, 10, 101)
        text = metrics.format_table(scopes=["keep"], title="t")
        assert "keep" in text and "drop" not in text


class TestThreadIsolation:
    def test_raw_counters_do_not_bleed(self):
        """Two threads using the same scope names see disjoint recorders."""
        results = {}
        barrier = threading.Barrier(2)

        def worker(idx: int, amount: int) -> None:
            metrics.reset()
            barrier.wait()
            with metrics.scope("shared-name"):
                for _ in range(amount):
                    metrics.count_modexp()
            results[idx] = metrics.snapshot()

        threads = [threading.Thread(target=worker, args=(i, n))
                   for i, n in ((0, 3), (1, 11))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results[0]["shared-name"].modexp == 3
        assert results[1]["shared-name"].modexp == 11
        assert results[0]["total"].modexp == 3
        assert results[1]["total"].modexp == 11

    def test_concurrent_handshakes_have_disjoint_scopes(self, scheme1_world):
        """Two handshakes on separate threads produce independent, correct
        per-party counters — the instrumented run of one must not leak
        into the books of the other."""
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def worker(idx: int, names) -> None:
            try:
                metrics.reset()
                lineup = scheme1_world.lineup(*names)
                rng = random.Random(100 + idx)
                barrier.wait()
                outcomes = run_handshake(lineup, scheme1_policy(), rng)
                assert all(o.success for o in outcomes)
                results[idx] = metrics.snapshot()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(0, ("alice", "bob"))),
            threading.Thread(target=worker,
                             args=(1, ("alice", "bob", "carol"))),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        two, three = results[0], results[1]
        # Each thread sees exactly its own parties…
        assert "hs:2" not in two
        assert "hs:2" in three
        # …with the correct per-party message accounting (4 broadcasts per
        # party; receipts 4*(m-1)) and no inflation from the sibling run.
        for snap, m in ((two, 2), (three, 3)):
            for i in range(m):
                assert snap[f"hs:{i}"].messages_sent == 4
                assert snap[f"hs:{i}"].messages_received == 4 * (m - 1)
                assert snap[f"hs:{i}"].modexp > 0
            assert snap["total"].messages_sent == 4 * m

    def test_using_shares_one_recorder_across_threads(self):
        """An explicitly pinned recorder aggregates safely under the lock."""
        recorder = metrics.Recorder()

        def worker() -> None:
            with metrics.using(recorder):
                for _ in range(200):
                    with metrics.scope("pool"):
                        metrics.count_modexp()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.snapshot()["pool"].modexp == 800


class TestEngineParity:
    def test_sync_and_network_runner_agree_per_party(self, scheme1_world):
        """The synchronous engine and the network runner execute the same
        protocol, so for the same roster and seed every party must report
        identical modexp and message counts — otherwise the O(m) tables
        depend on which driver produced them."""
        lineup = scheme1_world.lineup("alice", "bob", "carol")
        m = len(lineup)

        metrics.reset()
        outcomes = run_handshake(lineup, scheme1_policy(), random.Random(7))
        assert all(o.success for o in outcomes)
        sync_snap = metrics.snapshot()

        metrics.reset()
        outcomes = run_handshake_over_network(lineup, scheme1_policy(),
                                              random.Random(7))
        assert all(o.success for o in outcomes)
        net_snap = metrics.snapshot()

        for i in range(m):
            scope = f"hs:{i}"
            assert sync_snap[scope].modexp == net_snap[scope].modexp
            assert sync_snap[scope].messages_sent == net_snap[scope].messages_sent
            assert (sync_snap[scope].messages_received
                    == net_snap[scope].messages_received)
        # The network runner additionally measures real wire sizes.
        for i in range(m):
            assert net_snap[f"hs:{i}"].bytes_sent > 0
            assert net_snap[f"hs:{i}"].bytes_received > 0

    def test_network_wire_bytes_balance(self, scheme1_world):
        """Broadcast fan-out: every byte sent is received m-1 times."""
        lineup = scheme1_world.lineup("alice", "bob")
        metrics.reset()
        run_handshake_over_network(lineup, scheme1_policy(),
                                   random.Random(11))
        total = metrics.total()
        assert total.bytes_sent > 0
        assert total.bytes_received == total.bytes_sent * (len(lineup) - 1)
