"""Tests for the metrics instrumentation and the O(m) accounting that the
complexity benchmarks (E1/E2) rely on."""

from repro import metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.crypto.modmath import mexp


class TestScopes:
    def test_total_accumulates(self):
        metrics.reset()
        mexp(2, 10, 101)
        mexp(3, 10, 101)
        assert metrics.total().modexp == 2

    def test_named_scope_attribution(self):
        metrics.reset()
        with metrics.scope("a"):
            mexp(2, 10, 101)
        with metrics.scope("b"):
            mexp(2, 10, 101)
            mexp(2, 10, 101)
        snap = metrics.snapshot()
        assert snap["a"].modexp == 1
        assert snap["b"].modexp == 2
        assert snap["total"].modexp == 3

    def test_nested_scopes(self):
        metrics.reset()
        with metrics.scope("outer"):
            with metrics.scope("inner"):
                mexp(2, 2, 7)
        snap = metrics.snapshot()
        assert snap["outer"].modexp == snap["inner"].modexp == 1

    def test_reset(self):
        metrics.reset()
        mexp(2, 2, 7)
        metrics.reset()
        assert metrics.total().modexp == 0

    def test_extra_counters(self):
        metrics.reset()
        metrics.bump("custom", 3)
        assert metrics.total().extra["custom"] == 3

    def test_duplicate_name_nesting_counts_once(self):
        """Regression: the seed charged every *frame*, so a scope nested
        inside itself (a party scope around a sub-protocol that re-opens
        the same scope) double-counted every operation."""
        metrics.reset()
        with metrics.scope("party"):
            with metrics.scope("party"):
                mexp(2, 10, 101)
        snap = metrics.snapshot()
        assert snap["party"].modexp == 1
        assert snap["total"].modexp == 1

    def test_reentrant_same_name_teardown(self):
        """Regression: the seed tore down with ``_active.remove(name)``,
        popping the *first* occurrence of a re-entered name; exit must
        restore the exact prior stack."""
        metrics.reset()
        with metrics.scope("a"):
            with metrics.scope("b"):
                with metrics.scope("a"):
                    mexp(2, 10, 101)
                # The outer "a" must still be active here.
                assert metrics.active_scopes() == ["a", "b"]
                mexp(2, 10, 101)
        snap = metrics.snapshot()
        assert snap["a"].modexp == 2
        assert snap["b"].modexp == 2
        assert snap["total"].modexp == 2
        assert metrics.active_scopes() == []

    def test_scope_teardown_on_exception(self):
        metrics.reset()
        try:
            with metrics.scope("doomed"):
                with metrics.scope("doomed"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert metrics.active_scopes() == []
        mexp(2, 10, 101)
        snap = metrics.snapshot()
        assert snap["doomed"].modexp == 0
        assert snap["total"].modexp == 1


class TestHandshakeAccounting:
    def test_per_party_scopes_populated(self, scheme1_world):
        metrics.reset()
        run_handshake(scheme1_world.lineup("alice", "bob"),
                      scheme1_policy(), scheme1_world.rng)
        snap = metrics.snapshot()
        assert snap["hs:0"].modexp > 0
        assert snap["hs:1"].modexp > 0

    def test_per_party_message_counts(self, scheme1_world):
        metrics.reset()
        run_handshake(scheme1_world.lineup("alice", "bob", "carol"),
                      scheme1_policy(), scheme1_world.rng)
        snap = metrics.snapshot()
        # Each party broadcasts: 2 DGKA rounds + 1 tag + 1 (theta, delta).
        for i in range(3):
            assert snap["total"].extra[f"hs-sent:{i}"] == 4

    def test_messages_linear_in_m(self, scheme1_world):
        counts = {}
        for names in (("alice", "bob"), ("alice", "bob", "carol", "dave")):
            metrics.reset()
            run_handshake(scheme1_world.lineup(*names), scheme1_policy(),
                          scheme1_world.rng)
            counts[len(names)] = metrics.total().messages_sent
        # Total messages scale linearly: 4 per party.
        assert counts[2] == 8
        assert counts[4] == 16

    def test_per_party_modexp_linear_in_m(self, scheme1_world):
        """The Section 8.1 claim: O(m) modular exponentiations per party.
        Growth from m=2 to m=4 must be at most linear (+ constant)."""
        per_party = {}
        for names in (("alice", "bob"), ("alice", "bob", "carol", "dave")):
            metrics.reset()
            run_handshake(scheme1_world.lineup(*names), scheme1_policy(),
                          scheme1_world.rng)
            snap = metrics.snapshot()
            per_party[len(names)] = snap["hs:0"].modexp
        growth = per_party[4] - per_party[2]
        # Doubling m adds only a handful of exponentiations (BD key
        # assembly + extra verifications), far below the fixed cost.
        assert 0 <= growth < per_party[2]
