"""Coverage for the remaining helpers: decoy sizing, adversary utilities,
wallet probe options and trace-result accessors."""

import random

import pytest

from repro.core import wire
from repro.core.handshake import _nominal_signature_length, run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.transcript import TraceResult
from repro.security.adversaries import Impostor, multi_role_participants


class TestDecoySizing:
    def test_nominal_length_close_to_real(self, scheme1_world):
        """Decoy thetas must be drawn from (approximately) the real
        ciphertext space: the nominal serialized-signature length may
        differ from a real one only by a few bytes (variable-length
        integer encodings)."""
        member = scheme1_world.members["alice"]
        nominal = _nominal_signature_length(member)
        real = len(member.gsig_sign(b"sizing", scheme1_world.rng))
        assert abs(nominal - real) <= 16

    def test_nominal_length_kty(self, scheme2_world):
        member = scheme2_world.members["xavier"]
        nominal = _nominal_signature_length(member)
        real = len(member.gsig_sign(b"sizing", scheme2_world.rng))
        assert abs(nominal - real) <= 16

    def test_decoy_theta_length_matches_real(self, scheme1_world,
                                             other_scheme1_world):
        """In a mixed session the decoy and real theta lengths must be in
        the same ballpark (byte-level length equality is not required by
        the paper's abstraction, but gross differences would be a tell)."""
        lineup = (scheme1_world.lineup("alice", "bob")
                  + other_scheme1_world.lineup("dan"))
        outcomes = run_handshake(lineup, scheme1_policy(partial_success=True),
                                 scheme1_world.rng)
        lengths = [len(e.theta) for e in outcomes[0].transcript.entries]
        assert max(lengths) - min(lengths) <= 32


class TestAdversaryHelpers:
    def test_multi_role_lineup(self, scheme1_world):
        rogue = scheme1_world.members["carol"]
        honest = scheme1_world.lineup("alice", "bob")
        lineup = multi_role_participants(rogue, 3, honest)
        assert len(lineup) == 5
        assert lineup.count(rogue) == 3

    def test_impostor_interface(self, rng):
        impostor = Impostor("eve", rng)
        with pytest.raises(Exception):
            _ = impostor.group_key
        blob = impostor.gsig_sign(b"m")
        assert isinstance(blob, bytes) and len(blob) == 512
        assert not impostor.gsig_verify(b"m", blob)
        assert not impostor.supports_self_distinction


class TestTraceResult:
    def test_accessors(self):
        result = TraceResult(group_id="g",
                             participants={0: "a", 2: "b", 1: "a"},
                             unresolved=(3,))
        assert result.identified == ("a", "a", "b")
        assert result.distinct_signers == 2


class TestWalletProbeOptions:
    def test_probe_specific_groups_only(self, rng):
        from repro.core.scheme1 import create_scheme1
        from repro.core.wallet import MembershipWallet
        g1 = create_scheme1("wp1", rng=rng)
        g2 = create_scheme1("wp2", rng=rng)
        peer = g1.admit_member("peer", rng)
        wallet = MembershipWallet("w")
        wallet.enroll(g1, rng, alias="w1")
        wallet.enroll(g2, rng, alias="w2")
        results = wallet.probe([peer], rng=rng, groups=["wp1"])
        assert set(results) == {"wp1"}
        own, _ = results["wp1"]
        assert own.confirmed_peers == {1}

    def test_probe_skips_revoked_credentials(self, rng):
        from repro.core.scheme1 import create_scheme1
        from repro.core.wallet import MembershipWallet
        g1 = create_scheme1("wp3", rng=rng)
        peer = g1.admit_member("peer", rng)
        wallet = MembershipWallet("w")
        wallet.enroll(g1, rng)
        g1.remove_user("w")
        wallet.update_all()
        assert wallet.probe([peer], rng=rng) == {}
