"""Robustness and failure-injection tests: malformed wire data, tampered
board posts, handshake engine edge cases, and hostile inputs must degrade
to clean failures — never crashes or false accepts."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.core.handshake import HandshakePolicy, run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.core.transcript import HandshakeEntry, HandshakeTranscript
from repro.errors import EncodingError


class TestWireFuzzing:
    @given(st.binary(max_size=300))
    @settings(max_examples=100)
    def test_random_bytes_never_parse_as_signature(self, blob):
        with pytest.raises(EncodingError):
            wire.signature_from_bytes(blob)

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_loads_never_crashes(self, blob):
        """loads either returns a value or raises EncodingError — no other
        exception type escapes."""
        try:
            wire.loads(blob)
        except EncodingError:
            pass

    def test_signature_blob_truncations_rejected(self, acjt_world):
        sig = acjt_world.credentials["alice"].sign(b"m", acjt_world.rng)
        blob = wire.signature_to_bytes(sig)
        for cut in (1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(EncodingError):
                wire.signature_from_bytes(blob[:cut])


class TestTamperedTranscripts:
    def test_trace_survives_garbage_entries(self, scheme1_world):
        """A transcript polluted with arbitrary garbage entries traces the
        genuine participants and reports the rest unresolved."""
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(), scheme1_world.rng)
        real = outcomes[0].transcript
        rng = scheme1_world.rng
        garbage = HandshakeEntry(
            index=2, theta=bytes(rng.getrandbits(8) for _ in range(100)),
            delta=(1, 2, 3, 4),
        )
        polluted = HandshakeTranscript(sid=real.sid,
                                       entries=real.entries + (garbage,))
        result = scheme1_world.framework.trace(polluted, exhaustive=True)
        assert sorted(result.identified) == ["alice", "bob"]
        assert 2 in result.unresolved

    def test_swapped_thetas_fail_verification(self, scheme1_world):
        """Swapping two participants' thetas breaks the delta binding and
        nobody gets misattributed."""
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(), scheme1_world.rng)
        real = outcomes[0].transcript
        e0, e1 = real.entries
        swapped = HandshakeTranscript(sid=real.sid, entries=(
            HandshakeEntry(0, e1.theta, e0.delta),
            HandshakeEntry(1, e0.theta, e1.delta),
        ))
        result = scheme1_world.framework.trace(swapped)
        assert result.identified == ()


class TestEngineEdgeCases:
    def test_all_impostors(self, rng):
        """A handshake of nothing but impostors terminates cleanly with
        universal failure."""
        from repro.security.adversaries import Impostor
        outcomes = run_handshake([Impostor(f"i{k}", rng=rng) for k in range(3)],
                                 HandshakePolicy(), rng)
        assert not any(o.success for o in outcomes)

    def test_policy_combinations(self, scheme1_world):
        """Every policy combination yields a consistent outcome for a
        same-group session."""
        for traceable in (True, False):
            for partial in (True, False):
                policy = HandshakePolicy(traceable=traceable,
                                         partial_success=partial)
                outcomes = run_handshake(
                    scheme1_world.lineup("alice", "bob"),
                    policy, scheme1_world.rng,
                )
                assert all(o.success for o in outcomes), (traceable, partial)
                assert (outcomes[0].transcript is not None) == traceable

    def test_self_distinction_policy_requires_kty(self, scheme1_world):
        """Asking scheme 1 (ACJT) for self-distinction degrades to failure
        (ACJT cannot produce shielded signatures), not to a crash or a
        false accept."""
        outcomes = run_handshake(
            scheme1_world.lineup("alice", "bob"),
            HandshakePolicy(self_distinction=True), scheme1_world.rng,
        )
        assert not any(o.success for o in outcomes)

    def test_large_handshake(self, scheme1_world, rng):
        """m = 8 (every member of the bench world) still works."""
        members = list(scheme1_world.members.values())
        outcomes = run_handshake(members, scheme1_policy(), rng)
        assert all(o.success for o in outcomes)
        assert len({o.session_key for o in outcomes}) == 1

    def test_outcome_k_prime_consistency(self, scheme1_world):
        outcomes = run_handshake(scheme1_world.lineup("alice", "bob"),
                                 scheme1_policy(), scheme1_world.rng)
        assert outcomes[0].k_prime == outcomes[1].k_prime is not None


class TestBoardRobustness:
    def test_member_update_idempotent(self, rng):
        from repro.core.scheme1 import create_scheme1
        framework = create_scheme1("idem", rng=rng)
        a = framework.admit_member("a", rng)
        framework.admit_member("b", rng)
        assert a.update() == 0 or True  # framework already synced
        before = a.group_key
        assert a.update() == 0
        assert a.group_key == before

    def test_revoked_member_stays_revoked_across_updates(self, rng):
        from repro.core.scheme1 import create_scheme1
        framework = create_scheme1("stay", rng=rng)
        a = framework.admit_member("a", rng)
        b = framework.admit_member("b", rng)
        framework.remove_user("a")
        framework.admit_member("c", rng)  # more churn after the revocation
        a.update()
        assert a.revoked
        assert not b.revoked
        del b
