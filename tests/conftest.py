"""Shared fixtures.

Heavyweight cryptographic objects (group-signature managers with enrolled
members, full GCD frameworks) are session-scoped: Setup and Join dominate
runtime (each Join generates a fresh certificate prime), and nearly every
test only *reads* these worlds.  Tests that mutate membership state build
their own private instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

import pytest

from repro.core.framework import GcdFramework
from repro.core.member import GcdMember
from repro.core.scheme1 import create_scheme1
from repro.core.scheme2 import create_scheme2
from repro.gsig import acjt, kty


@pytest.fixture
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@dataclass
class GsigWorld:
    """A group-signature deployment with three members."""

    manager: object
    credentials: Dict[str, object]
    rng: random.Random


@pytest.fixture(scope="session")
def acjt_world() -> GsigWorld:
    world_rng = random.Random(1001)
    manager = acjt.AcjtManager("tiny", world_rng)
    credentials = {}
    updates = []
    for name in ("alice", "bob", "carol"):
        credential, update = manager.join(name, world_rng)
        for existing in credentials.values():
            existing.apply_update(update)
        credentials[name] = credential
        updates.append(update)
    return GsigWorld(manager=manager, credentials=credentials, rng=world_rng)


@pytest.fixture(scope="session")
def kty_world() -> GsigWorld:
    world_rng = random.Random(2002)
    manager = kty.KtyManager("tiny", world_rng)
    credentials = {}
    for name in ("alice", "bob", "carol"):
        credential, update = manager.join(name, world_rng)
        for existing in credentials.values():
            existing.apply_update(update)
        credentials[name] = credential
    return GsigWorld(manager=manager, credentials=credentials, rng=world_rng)


@dataclass
class SchemeWorld:
    """A live GCD framework with enrolled members."""

    framework: GcdFramework
    members: Dict[str, GcdMember]
    rng: random.Random

    def lineup(self, *names: str) -> List[GcdMember]:
        return [self.members[n] for n in names]


def _build_world(factory, group_id: str, names, seed: int) -> SchemeWorld:
    world_rng = random.Random(seed)
    framework = factory(group_id, rng=world_rng)
    members = {name: framework.admit_member(name, world_rng) for name in names}
    return SchemeWorld(framework=framework, members=members, rng=world_rng)


@pytest.fixture(scope="session")
def scheme1_world() -> SchemeWorld:
    return _build_world(create_scheme1, "fbi", ("alice", "bob", "carol", "dave"), 3003)


@pytest.fixture(scope="session")
def scheme2_world() -> SchemeWorld:
    return _build_world(create_scheme2, "mi6", ("xavier", "yvonne", "zelda"), 4004)


@pytest.fixture(scope="session")
def other_scheme1_world() -> SchemeWorld:
    """A second, unrelated scheme-1 group for mixed-group scenarios."""
    return _build_world(create_scheme1, "cia", ("dan", "eve"), 5005)


@pytest.fixture(scope="session")
def service_world() -> SchemeWorld:
    """Five members for the service-layer tests (the transport acceptance
    criterion is a 5-party handshake over real sockets)."""
    return _build_world(create_scheme1, "nsa",
                        ("p0", "p1", "p2", "p3", "p4"), 6006)
