"""Tests for ``repro.obs.telemetry``: merged cluster traces, STATUS time
series with derived rates, Prometheus exposition, and the dashboards."""

import json

import pytest

from repro import metrics
from repro.metrics import Histogram
from repro.obs import export as obsx
from repro.obs import spans as obs
from repro.obs import telemetry

BOUNDS = (0.001, 0.01, 0.1, 1.0)


def _status(completed=0, sheds=None, relay=None, rooms=None,
            connections=0):
    """A minimal STATUS document (same shape single-server and merged
    cluster STATUS share)."""
    counters = dict(sheds or {})
    return {
        "rooms": rooms or {"filling": 0, "active": 0, "closed": completed},
        "outcomes": {"completed": completed},
        "counters": counters,
        "histograms": {"svc:relay-latency": relay} if relay else {},
        "connections": connections,
    }


def _relay_summary(*values):
    hist = Histogram("svc:relay-latency", BOUNDS)
    for value in values:
        hist.observe(value)
    return hist.summary()


# ---------------------------------------------------------------------------
# Trace context on spans.
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_mint_is_wire_valid(self):
        minted = obs.mint_trace_id()
        assert obs.valid_trace(minted) == minted
        assert len(minted) == 16

    @pytest.mark.parametrize("bad", [
        None, "", 42, "XYZ", "abcd", "A" * 16, "f" * 15, "f" * 17,
        "f" * 20,  # bigint-length hex is not a trace context either
    ])
    def test_invalid_contexts_rejected(self, bad):
        assert obs.valid_trace(bad) is None

    def test_child_inherits_parent_trace(self):
        rec = metrics.Recorder()
        rec.tracing = True
        with metrics.using(rec):
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    assert inner.trace_id == outer.trace_id

    def test_root_adopts_remote_context(self):
        rec = metrics.Recorder()
        rec.tracing = True
        remote = "cafe" * 4
        with metrics.using(rec):
            root = obs.start_span("room", parent=None, trace=remote)
            child = obs.start_span("room:fill", parent=root)
            child.end()
            root.end()
        assert root.trace_id == remote
        assert child.trace_id == remote
        # Adopting a remote trace never adopts a remote parent id.
        assert root.parent_id is None

    def test_malformed_remote_context_minted_fresh(self):
        rec = metrics.Recorder()
        rec.tracing = True
        with metrics.using(rec):
            root = obs.start_span("room", parent=None, trace="NOT-HEX").end()
        assert obs.valid_trace(root.trace_id) == root.trace_id
        assert root.trace_id != "NOT-HEX"


# ---------------------------------------------------------------------------
# Merged Chrome traces.
# ---------------------------------------------------------------------------


def _finished_spans(trace=None, names=("connect", "handshake")):
    rec = metrics.Recorder()
    rec.tracing = True
    with metrics.using(rec):
        for name in names:
            obs.start_span(name, parent=None, trace=trace).end()
    return rec, [span.as_dict() for span in rec.drain_spans()]


class TestMergeChromeTrace:
    def test_one_lane_per_label_shared_labels_share(self):
        _, a = _finished_spans()
        _, b = _finished_spans()
        _, c = _finished_spans()
        doc = telemetry.merge_chrome_trace([
            {"label": "client", "epoch": 10.0, "spans": a},
            {"label": "client", "epoch": 11.0, "spans": b},
            {"label": "shard:0", "epoch": 10.5, "spans": c},
        ])
        lanes = {e["args"]["name"]: e["tid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert set(lanes) == {"client", "shard:0"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in xs} == set(lanes.values())
        assert sum(e["tid"] == lanes["client"] for e in xs) == len(a) + len(b)

    def test_epoch_rebasing_onto_earliest(self):
        rec_a, spans_a = _finished_spans(names=("a",))
        rec_b, spans_b = _finished_spans(names=("b",))
        doc = telemetry.merge_chrome_trace([
            {"label": "early", "epoch": 100.0, "spans": spans_a},
            {"label": "late", "epoch": 100.5, "spans": spans_b},
        ])
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        # Source "late" started 0.5s after "early": its event timestamps
        # are shifted right by 500ms relative to its own span clock.
        want_shift = 0.5e6 + (spans_b[0]["ts"] - spans_a[0]["ts"]) * 1e6
        assert xs["b"]["ts"] - xs["a"]["ts"] == pytest.approx(want_shift,
                                                              abs=1.0)
        assert all(e["ts"] >= 0 for e in xs.values())

    def test_trace_id_rides_in_args(self):
        trace = "beef" * 4
        _, spans = _finished_spans(trace=trace)
        doc = telemetry.merge_chrome_trace(
            [{"label": "client", "epoch": 0.0, "spans": spans}])
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["args"]["trace_id"] == trace for e in xs)

    def test_unfinished_spans_skipped(self):
        row = {"name": "open", "span_id": 1, "parent_id": None,
               "trace_id": None, "ts": 0.0, "dur": None, "tid": "t"}
        doc = telemetry.merge_chrome_trace(
            [{"label": "x", "epoch": 0.0, "spans": [row]}])
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_attr_args_flattened_like_export(self):
        rec = metrics.Recorder()
        rec.tracing = True
        with metrics.using(rec):
            obs.start_span("leaky", parent=None, blob=b"\x00", m=3).end()
        doc = telemetry.merge_chrome_trace(
            [{"label": "x", "epoch": 0.0, "spans": rec.drain_spans()}])
        args = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["blob"] == "<bytes>"
        assert args["m"] == 3

    def test_export_file_is_json(self, tmp_path):
        _, spans = _finished_spans()
        path = tmp_path / "merged.json"
        telemetry.export_merged_trace(
            str(path), [{"label": "c", "epoch": 0.0, "spans": spans}])
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"]


class TestLoadSpansJsonl:
    def test_roundtrip_from_export(self, tmp_path):
        rec = metrics.Recorder()
        rec.tracing = True
        with metrics.using(rec):
            with obs.span("hs:0", party=0):
                with obs.span("gsig:sign"):
                    pass
            spans = rec.drain_spans()
        path = tmp_path / "spans.jsonl"
        obsx.export_spans_jsonl(str(path), spans)
        loaded = telemetry.load_spans_jsonl(str(path))
        assert {s.name for s in loaded} == {"hs:0", "gsig:sign"}
        by_name = {s.name: s for s in loaded}
        assert by_name["gsig:sign"].parent_id == by_name["hs:0"].span_id
        assert by_name["hs:0"].attrs == {"party": 0}
        # Loaded spans render through the same Gantt as live ones.
        out = obsx.render_gantt(loaded, width=30)
        assert "hs:0" in out and "#" in out

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            telemetry.load_spans_jsonl(str(tmp_path / "nope.jsonl"))

    def test_empty_file_raises_valueerror(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no spans"):
            telemetry.load_spans_jsonl(str(path))

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "ts": 0, "dur": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            telemetry.load_spans_jsonl(str(path))

    def test_non_span_record_rejected(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"rooms": 3}\n')
        with pytest.raises(ValueError, match="not a span record"):
            telemetry.load_spans_jsonl(str(path))


class TestClusterGantt:
    def test_lanes_and_trace_column(self):
        trace = "dead" * 4
        _, client = _finished_spans(trace=trace, names=("handshake",))
        _, shard = _finished_spans(trace=trace, names=("room",))
        out = telemetry.render_cluster_gantt([
            {"label": "client", "epoch": 1.0, "spans": client},
            {"label": "shard:0", "epoch": 1.0, "spans": shard},
        ], width=30)
        assert "client" in out and "shard:0" in out
        assert trace[:8] in out
        assert "#" in out

    def test_empty_sources_message(self):
        out = telemetry.render_cluster_gantt([], title="empty")
        assert "no spans recorded" in out


# ---------------------------------------------------------------------------
# Time series and derived rates.
# ---------------------------------------------------------------------------


class TestTimeSeries:
    def test_rates_from_completed_and_shed_deltas(self):
        series = telemetry.TimeSeries()
        series.add(_status(completed=0), at=0.0,
                   client_counters={"svc-client:retries": 0})
        series.add(_status(completed=6,
                           sheds={"svc:busy:at-capacity": 4}), at=2.0,
                   client_counters={"svc-client:retries": 8})
        rows = series.rates()
        assert len(rows) == 1
        row = rows[0]
        assert row["rooms_per_s"] == 3.0
        assert row["sheds_per_s"] == {"svc:busy:at-capacity": 2.0}
        assert row["shed_per_s_total"] == 2.0
        assert row["retries_per_s"] == 4.0
        assert row["relay_p50_s"] is None and row["relay_n"] == 0

    def test_interval_exact_relay_percentiles(self):
        series = telemetry.TimeSeries()
        # First window: slow observations.  Second: only fast ones.  The
        # cumulative summary still remembers the slow ones; the delta
        # histogram must not.
        slow = _relay_summary(0.5, 0.5, 0.5)
        both = _relay_summary(0.5, 0.5, 0.5, 0.002, 0.002, 0.002)
        series.add(_status(relay=slow), at=0.0)
        series.add(_status(relay=both), at=1.0)
        row = series.rates()[0]
        assert row["relay_n"] == 3
        assert row["relay_p99_s"] <= 0.01   # fast bucket only

    def test_counter_resets_clamp_to_zero(self):
        series = telemetry.TimeSeries()
        series.add(_status(completed=10), at=0.0)
        series.add(_status(completed=4), at=1.0)   # restarted relay
        assert series.rates()[0]["rooms_per_s"] == 0.0

    def test_ring_buffer_capacity(self):
        series = telemetry.TimeSeries(capacity=3)
        for i in range(10):
            series.add(_status(completed=i), at=float(i))
        assert len(series) == 3
        assert series.latest["status"]["outcomes"]["completed"] == 9
        assert len(series.rates()) == 2

    def test_timeline_doc_peaks(self):
        series = telemetry.TimeSeries()
        series.add(_status(completed=0), at=0.0)
        series.add(_status(completed=4), at=1.0)
        series.add(_status(completed=5,
                           sheds={"svc:busy:draining": 3}), at=2.0)
        doc = series.timeline_doc()
        assert doc["samples"] == 3
        assert len(doc["intervals"]) == 2
        assert doc["peak_rooms_per_s"] == 4.0
        assert doc["peak_sheds_per_s"] == 3.0
        assert doc["worst_relay_p99_s"] is None
        json.dumps(doc)   # report documents must stay JSON-able


class TestDeltaHistogram:
    def test_none_without_new_observations(self):
        summary = _relay_summary(0.05)
        assert telemetry._delta_histogram(summary, summary) is None

    def test_bounds_change_treated_as_fresh(self):
        older = _relay_summary(0.05)
        newer = Histogram("svc:relay-latency", (0.5, 2.0))
        newer.observe(1.0)
        hist = telemetry._delta_histogram(older, newer.summary())
        assert hist is not None and hist.total == 1

    def test_extrema_come_from_newer_snapshot(self):
        older = _relay_summary(0.05)
        newer = _relay_summary(0.05, 0.2)
        hist = telemetry._delta_histogram(older, newer)
        assert hist.min == 0.05 and hist.max == 0.2
        # percentile() dereferences extrema — must not crash on a delta.
        assert hist.percentile(0.99) <= 1.0


# ---------------------------------------------------------------------------
# Prometheus exposition.
# ---------------------------------------------------------------------------


class TestPrometheus:
    def test_gauges_counters_and_up(self):
        text = telemetry.prometheus_exposition(_status(
            completed=7, sheds={"svc:busy:at-capacity": 2},
            rooms={"filling": 1, "active": 2, "closed": 7},
            connections=5))
        assert "repro_up 1\n" in text
        assert 'repro_rooms{state="active"} 2' in text
        assert "repro_connections 5" in text
        assert 'repro_outcomes_total{outcome="completed"} 7' in text
        assert ('repro_counter_total{name="svc:busy:at-capacity"} 2'
                in text)

    def test_histogram_buckets_are_cumulative(self):
        text = telemetry.prometheus_exposition(
            _status(relay=_relay_summary(0.0005, 0.005, 0.05, 0.5, 5.0)))
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_latency_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)        # cumulative, per convention
        assert counts[-1] == 5
        assert 'le="+Inf"' in lines[-1]
        assert ('repro_latency_seconds_count'
                '{histogram="svc:relay-latency"} 5') in text

    def test_label_escaping(self):
        status = _status()
        status["counters"]['we"ird\\name'] = 1
        text = telemetry.prometheus_exposition(status)
        assert 'name="we\\"ird\\\\name"' in text

    def test_write_numbered_sample_files(self, tmp_path):
        prom = tmp_path / "prom"
        path1 = telemetry.write_prometheus_sample(str(prom), 1, _status())
        path2 = telemetry.write_prometheus_sample(str(prom), 2, _status())
        assert path1.endswith("repro-000001.prom")
        assert path2.endswith("repro-000002.prom")
        assert "repro_up 1" in (prom / "repro-000001.prom").read_text()


# ---------------------------------------------------------------------------
# Dashboards.
# ---------------------------------------------------------------------------


class TestRenderTop:
    def test_no_samples_frame(self):
        out = telemetry.render_top(telemetry.TimeSeries(), title="t")
        assert "no samples yet" in out

    def test_single_sample_needs_one_more(self):
        series = telemetry.TimeSeries()
        series.add(_status(completed=1), at=0.0)
        assert "one more sample" in telemetry.render_top(series)

    def test_full_frame_rows_and_sheds(self):
        series = telemetry.TimeSeries()
        series.add(_status(completed=0), at=0.0)
        series.add(_status(completed=3,
                           sheds={"svc:busy:at-capacity": 2},
                           relay=_relay_summary(0.01, 0.02),
                           rooms={"filling": 1, "active": 2, "closed": 3}),
                   at=1.0)
        out = telemetry.render_top(series, title="repro top")
        assert out.startswith("repro top")
        assert "rooms/s" in out and "relay p99" in out
        assert "3.00" in out            # rooms/s column
        assert "at-capacity=2/s" in out

    def test_cluster_header_when_present(self):
        series = telemetry.TimeSeries()
        status = _status(completed=1)
        status["cluster"] = {"shards": 2, "accepting": True,
                             "states": {"live": [0, 1]}}
        series.add(status, at=0.0)
        assert "2 shards" in telemetry.render_top(series)
