"""Asyncio-task isolation for metrics recorders (satellite regression).

Two handshake rooms sharing one event loop must account to their own
recorders — ``metrics.using`` covers tasks spawned inside the block,
``Recorder.bind_task`` pins tasks created elsewhere — and concurrent
activations of one scope must union, not double-book, wall time."""

import asyncio
import threading
import time

from repro import metrics
from repro.crypto.modmath import mexp


class TestTaskIsolation:
    def test_two_rooms_one_loop_separate_recorders(self):
        """The bench_service_throughput invariant, minimised: concurrent
        rooms on one loop, each under its own recorder via ``using`` at
        task-spawn time, see only their own operations."""
        rec_a, rec_b = metrics.Recorder(), metrics.Recorder()

        async def room(n_ops):
            with metrics.scope("room"):
                for _ in range(n_ops):
                    mexp(2, 100, 1009)
                    await asyncio.sleep(0)

        async def main():
            with metrics.using(rec_a):
                task_a = asyncio.ensure_future(room(3))
            with metrics.using(rec_b):
                task_b = asyncio.ensure_future(room(5))
            await asyncio.gather(task_a, task_b)

        asyncio.run(main())
        assert rec_a.snapshot()["room"].modexp == 3
        assert rec_b.snapshot()["room"].modexp == 5
        assert rec_a.total().modexp == 3
        assert rec_b.total().modexp == 5

    def test_bind_task_pins_a_preexisting_task(self):
        """A task created *before* ``using`` would inherit the shared
        per-thread recorder; ``bind_task`` inside the task body is the
        escape hatch."""
        rec = metrics.Recorder()
        ambient = metrics.Recorder()

        async def worker(gate):
            rec.bind_task()
            await gate.wait()
            with metrics.scope("pinned"):
                mexp(2, 100, 1009)

        async def main():
            gate = asyncio.Event()
            # Spawned under the ambient recorder — without bind_task its
            # counts would land there.
            with metrics.using(ambient):
                task = asyncio.ensure_future(worker(gate))
            gate.set()
            await task

        asyncio.run(main())
        assert rec.snapshot()["pinned"].modexp == 1
        assert "pinned" not in ambient.snapshot()

    def test_interleaved_tasks_do_not_cross_charge(self):
        recorders = [metrics.Recorder() for _ in range(4)]

        async def party(i):
            with metrics.scope(f"hs:{i}"):
                for _ in range(i + 1):
                    mexp(3, 50, 1009)
                    await asyncio.sleep(0)

        async def main():
            tasks = []
            for i, rec in enumerate(recorders):
                with metrics.using(rec):
                    tasks.append(asyncio.ensure_future(party(i)))
            await asyncio.gather(*tasks)

        asyncio.run(main())
        for i, rec in enumerate(recorders):
            snap = rec.snapshot()
            assert set(snap) == {f"hs:{i}", "total"}
            assert snap[f"hs:{i}"].modexp == i + 1


class TestWallTimeUnion:
    def test_concurrent_same_scope_tasks_union_wall_time(self):
        """Regression: two tasks holding the *same* scope of one recorder
        concurrently must charge the union of their open intervals once,
        not once per holder."""
        rec = metrics.Recorder()

        async def holder():
            with metrics.scope("shared"):
                await asyncio.sleep(0.05)

        async def main():
            with metrics.using(rec):
                await asyncio.gather(holder(), holder())

        asyncio.run(main())
        wall = rec.snapshot()["shared"].wall_time
        # Two fully-overlapping 50ms holds: union is ~50ms.  The old
        # per-stack exit check booked ~100ms.
        assert 0.04 <= wall <= 0.085, wall

    def test_concurrent_same_scope_threads_union_wall_time(self):
        rec = metrics.Recorder()
        start_gate = threading.Barrier(2)

        def holder():
            with metrics.using(rec):
                start_gate.wait()
                with metrics.scope("shared"):
                    time.sleep(0.05)

        threads = [threading.Thread(target=holder) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = rec.snapshot()["shared"].wall_time
        assert 0.04 <= wall <= 0.085, wall

    def test_sequential_holds_still_accumulate(self):
        rec = metrics.Recorder()
        with metrics.using(rec):
            with metrics.scope("s"):
                time.sleep(0.02)
            with metrics.scope("s"):
                time.sleep(0.02)
        assert rec.snapshot()["s"].wall_time >= 0.03

    def test_nested_reentry_of_same_scope_charges_once(self):
        rec = metrics.Recorder()
        with metrics.using(rec):
            with metrics.scope("s"):
                with metrics.scope("s"):
                    time.sleep(0.02)
                mexp(2, 10, 1009)
        snap = rec.snapshot()
        assert snap["s"].modexp == 1          # charged once, not twice
        assert 0.015 <= snap["s"].wall_time <= 0.06
