"""Histogram bucket/percentile edge cases (satellite: exporter + boundary
tests for the latency/burst histograms)."""

import pytest

from repro import metrics
from repro.metrics import Histogram, LATENCY_BOUNDS, SIZE_BOUNDS


class TestBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        # Upper-inclusive (Prometheus ``le``): a value exactly on a bound
        # belongs to that bound's bucket.
        h = Histogram("h", (1.0, 2.0, 5.0))
        h.observe(2.0)
        assert h.counts == [0, 1, 0, 0]

    def test_value_above_last_bound_overflows(self):
        h = Histogram("h", (1.0, 2.0))
        h.observe(99.0)
        assert h.counts == [0, 0, 1]
        assert h.summary()["buckets"][-1] == {"le": None, "count": 1}

    def test_zero_lands_in_first_bucket(self):
        h = Histogram("h", (1.0, 2.0))
        h.observe(0.0)
        assert h.counts == [1, 0, 0]

    def test_bounds_must_be_sorted_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("bad", ())
        with pytest.raises(ValueError):
            Histogram("bad", (2.0, 1.0))


class TestPercentiles:
    def test_empty_histogram(self):
        h = Histogram("h", (1.0,))
        assert h.percentile(0.5) == 0.0
        s = h.summary()
        assert s["count"] == 0 and s["min"] is None and s["max"] is None
        assert s["mean"] == 0.0

    def test_single_observation_is_every_percentile(self):
        # Clamping to the observed range: bucket interpolation must not
        # report a quantile the process never exhibited.
        h = Histogram("h", LATENCY_BOUNDS)
        h.observe(0.157)
        for f in (0.5, 0.9, 0.99):
            assert h.percentile(f) == pytest.approx(0.157)

    def test_overflow_percentile_reports_observed_max(self):
        h = Histogram("h", (1.0, 2.0))
        for v in (0.5, 1.5, 123.0):
            h.observe(v)
        assert h.percentile(0.99) == 123.0

    def test_monotone_and_within_range(self):
        h = Histogram("h", SIZE_BOUNDS)
        for v in (1, 3, 3, 7, 40, 40, 41, 800):
            h.observe(v)
        p50, p90, p99 = (h.percentile(f) for f in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99
        assert h.min <= p50 and p99 <= h.max

    def test_interpolation_inside_bucket(self):
        h = Histogram("h", (10.0, 20.0))
        # Four values in (10, 20]: p50 interpolates inside that bucket.
        for v in (12.0, 14.0, 16.0, 18.0):
            h.observe(v)
        assert 12.0 <= h.percentile(0.5) <= 18.0

    def test_copy_is_independent(self):
        h = Histogram("h", (1.0,))
        h.observe(0.5)
        clone = h.copy()
        h.observe(0.7)
        assert clone.total == 1 and h.total == 2


class TestClamped:
    def test_overflow_samples_increment_clamped(self):
        # Beyond the last bound, percentile interpolation collapses onto
        # the observed max; ``clamped`` counts how many samples live out
        # there so tail percentiles can be flagged as estimates.
        h = Histogram("h", (1.0, 2.0))
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        assert h.clamped == 2
        assert h.summary()["clamped"] == 2

    def test_boundary_value_is_not_clamped(self):
        # Upper-inclusive buckets: the last bound itself still resolves.
        h = Histogram("h", (1.0, 2.0))
        h.observe(2.0)
        assert h.clamped == 0 and h.summary()["clamped"] == 0

    def test_copy_carries_clamped(self):
        h = Histogram("h", (1.0,))
        h.observe(5.0)
        clone = h.copy()
        h.observe(6.0)
        assert clone.clamped == 1 and h.clamped == 2


class TestRecorderIntegration:
    def test_observe_creates_and_reuses(self):
        rec = metrics.Recorder()
        with metrics.using(rec):
            metrics.observe("lat", 0.01)
            metrics.observe("lat", 0.02)
            hists = metrics.histograms()
        assert hists["lat"].total == 2

    def test_conflicting_bounds_rejected(self):
        rec = metrics.Recorder()
        with metrics.using(rec):
            metrics.histogram("x", (1.0, 2.0))
            with pytest.raises(ValueError):
                metrics.histogram("x", (3.0, 4.0))

    def test_reset_clears_histograms(self):
        rec = metrics.Recorder()
        with metrics.using(rec):
            metrics.observe("lat", 0.01)
            metrics.reset()
            assert metrics.histograms() == {}

    def test_modexp_bursts_feed_size_histogram(self):
        from repro.crypto.modmath import mexp
        rec = metrics.Recorder()
        rec.tracing = True
        with metrics.using(rec):
            with metrics.scope("work"):
                for _ in range(5):
                    mexp(2, 100, 1009)
            hists = metrics.histograms()
        assert "modexp:burst" in hists
        assert hists["modexp:burst"].total >= 1
        assert hists["modexp:burst"].sum == 5

    def test_export_json_includes_histograms(self):
        import json
        rec = metrics.Recorder()
        with metrics.using(rec):
            metrics.observe("lat", 0.2)
            doc = json.loads(metrics.export_json())
        assert doc["histograms"]["lat"]["count"] == 1
        assert any(b["le"] is None for b in doc["histograms"]["lat"]["buckets"])
