"""Structured-log redaction: the anonymity rule applied to telemetry.

These tests *prove* the redaction layer: member identifiers, payload
bytes, key material and crypto-sized integers can never reach a log line,
whichever path built the record."""

import io
import json
import logging

import pytest

from repro.obs import logging as obslog


@pytest.fixture()
def captured():
    stream = io.StringIO()
    obslog.configure(level=logging.DEBUG, stream=stream)
    yield stream
    obslog.unconfigure()


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRedactValue:
    def test_denylisted_keys_always_redact(self):
        for key in ("member", "member_id", "user_id", "peer", "payload",
                    "identity", "session_key", "room_name", "signature",
                    "theta", "delta", "credential", "UserName"):
            assert obslog.redact_value(key, "alice") == "[redacted]", key

    def test_allowed_scalars_pass(self):
        assert obslog.redact_value("token", "cafe1234") == "cafe1234"
        assert obslog.redact_value("m", 5) == 5
        assert obslog.redact_value("fill_s", 0.25) == 0.25
        assert obslog.redact_value("ok", True) is True
        assert obslog.redact_value("detail", None) is None

    def test_crypto_sized_ints_redact(self):
        assert obslog.redact_value("count", 2**521) == "[redacted:bigint]"
        assert obslog.redact_value("count", -(2**127)) == "[redacted:bigint]"

    def test_bytes_and_containers_redact(self):
        assert obslog.redact_value("data", b"\x01\x02") == "[redacted:bytes]"
        assert obslog.redact_value("data", (1, 2)) == "[redacted:tuple]"
        assert obslog.redact_value("data", [1]) == "[redacted:list]"
        assert obslog.redact_value("data", {"a": 1}) == "[redacted:dict]"

    def test_long_strings_truncate(self):
        long = "x" * 500
        out = obslog.redact_value("note", long)
        assert len(out) < 200 and out.endswith("…")


class TestLogEvent:
    def test_json_line_structure(self, captured):
        log = obslog.get_logger("repro.test")
        obslog.log_event(log, "room-active", token="cafe", m=3)
        (doc,) = _lines(captured)
        assert doc["event"] == "room-active"
        assert doc["logger"] == "repro.test"
        assert doc["token"] == "cafe" and doc["m"] == 3
        assert doc["level"] == "INFO" and "ts" in doc

    def test_forbidden_fields_scrubbed_before_any_handler(self, captured):
        log = obslog.get_logger("repro.test")
        obslog.log_event(log, "join", member="alice", payload=b"\xde\xad",
                         token="ok")
        (doc,) = _lines(captured)
        assert doc["member"] == "[redacted]"
        assert doc["payload"] == "[redacted]"
        assert doc["token"] == "ok"
        assert "alice" not in captured.getvalue()
        assert "dead" not in captured.getvalue().lower().replace("\\", "")

    def test_filter_scrubs_handmade_records(self, captured):
        # Bypass log_event entirely: the handler-side RedactionFilter is
        # the second line of defence.
        log = obslog.get_logger("repro.test")
        log.info("manual", extra={"obs_fields": {"user": "mallory",
                                                 "n": 2**80}})
        (doc,) = _lines(captured)
        assert doc["user"] == "[redacted]"
        assert doc["n"] == "[redacted:bigint]"
        assert "mallory" not in captured.getvalue()

    def test_get_logger_reparents_foreign_names(self):
        assert obslog.get_logger("service").name == "repro.service"
        assert obslog.get_logger("repro.x").name == "repro.x"

    def test_configure_is_idempotent(self):
        a = obslog.configure(stream=io.StringIO())
        b = obslog.configure(stream=io.StringIO())
        root = logging.getLogger("repro")
        ours = [h for h in root.handlers
                if getattr(h, "_repro_obs", False)]
        assert ours == [b] and a not in root.handlers
        obslog.unconfigure()
        assert not [h for h in root.handlers
                    if getattr(h, "_repro_obs", False)]

    def test_silent_without_configure(self):
        # Library etiquette: NullHandler only — no output, no warnings.
        log = obslog.get_logger("repro.quiet")
        obslog.log_event(log, "nothing-to-see")  # must not raise
