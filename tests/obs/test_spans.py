"""Span tracing: nesting, explicit parents, the tracing switch, and
correctness across threads and asyncio tasks."""

import asyncio
import threading

from repro import metrics
from repro.obs import spans as obs


def _traced_recorder():
    rec = metrics.Recorder()
    rec.tracing = True
    return rec


class TestSwitch:
    def test_noop_when_tracing_off(self):
        rec = metrics.Recorder()
        with metrics.using(rec):
            with obs.span("work") as s:
                assert s is obs.NOOP_SPAN
            assert obs.start_span("manual") is obs.NOOP_SPAN
            assert rec.spans() == []

    def test_noop_span_absorbs_end(self):
        obs.NOOP_SPAN.end(outcome="whatever")  # must not raise
        assert obs.NOOP_SPAN.dur is None

    def test_only_finished_spans_are_recorded(self):
        rec = _traced_recorder()
        with metrics.using(rec):
            live = obs.start_span("open")
            assert rec.spans() == []
            live.end()
            assert [s.name for s in rec.spans()] == ["open"]


class TestNesting:
    def test_context_manager_parent_links(self):
        rec = _traced_recorder()
        with metrics.using(rec):
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None
        names = {s.name: s for s in rec.spans()}
        assert names["inner"].parent_id == names["outer"].span_id
        assert names["outer"].parent_id is None

    def test_context_restored_after_exception(self):
        rec = _traced_recorder()
        with metrics.using(rec):
            try:
                with obs.span("doomed"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            assert obs.current_span() is None
            # The span still recorded (finished on the way out).
            assert [s.name for s in rec.spans()] == ["doomed"]

    def test_manual_span_explicit_parent(self):
        rec = _traced_recorder()
        with metrics.using(rec):
            root = obs.start_span("root", parent=None)
            child = obs.start_span("child", parent=root)
            orphan = obs.start_span("orphan", parent=None)
            assert child.parent_id == root.span_id
            assert orphan.parent_id is None
            for s in (child, orphan, root):
                s.end()

    def test_manual_span_defaults_to_context_parent(self):
        rec = _traced_recorder()
        with metrics.using(rec):
            with obs.span("ctx") as ctx:
                manual = obs.start_span("manual")
                assert manual.parent_id == ctx.span_id
                manual.end()

    def test_end_is_idempotent_and_merges_attrs(self):
        rec = _traced_recorder()
        with metrics.using(rec):
            s = obs.start_span("once", kind="x")
            s.end(outcome="ok")
            first_dur = s.dur
            s.end(outcome="overwritten?")
            assert s.dur == first_dur
            assert s.attrs == {"kind": "x", "outcome": "ok"}
            assert len(rec.spans()) == 1

    def test_as_dict_prefixes_attrs(self):
        rec = _traced_recorder()
        with metrics.using(rec):
            s = obs.start_span("d", party=3).end()
        doc = s.as_dict()
        assert doc["name"] == "d"
        assert doc["attr.party"] == 3
        assert doc["dur"] is not None and doc["dur"] >= 0


class TestConcurrency:
    def test_threads_do_not_share_span_context(self):
        recs = [_traced_recorder(), _traced_recorder()]
        errors = []

        def worker(rec, label):
            try:
                with metrics.using(rec):
                    with obs.span(f"root-{label}"):
                        with obs.span(f"leaf-{label}"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(recs[i], i))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i, rec in enumerate(recs):
            names = {s.name: s for s in rec.spans()}
            assert set(names) == {f"root-{i}", f"leaf-{i}"}
            assert (names[f"leaf-{i}"].parent_id
                    == names[f"root-{i}"].span_id)

    def test_asyncio_tasks_get_independent_parents(self):
        rec = _traced_recorder()

        async def party(i):
            with obs.span(f"hs:{i}", party=i):
                await asyncio.sleep(0)
                with obs.span("phase", party=i):
                    await asyncio.sleep(0)

        async def main():
            with metrics.using(rec):
                await asyncio.gather(*(party(i) for i in range(3)))

        asyncio.run(main())
        spans = rec.spans()
        roots = {s.attrs["party"]: s for s in spans if s.name.startswith("hs:")}
        phases = [s for s in spans if s.name == "phase"]
        assert len(roots) == 3 and len(phases) == 3
        for ph in phases:
            # Each phase is parented to its *own* party's root, not to
            # whichever task happened to run last.
            assert ph.parent_id == roots[ph.attrs["party"]].span_id

    def test_span_records_into_originating_recorder(self):
        """A span ends inside a different recorder context than it started
        in (callback-driven state machines): it must land in the recorder
        that created it."""
        rec_a = _traced_recorder()
        rec_b = _traced_recorder()
        with metrics.using(rec_a):
            s = obs.start_span("crossing")
        with metrics.using(rec_b):
            s.end()
        assert [x.name for x in rec_a.spans()] == ["crossing"]
        assert rec_b.spans() == []
