"""Exporter goldens: Chrome trace_event structure, JSONL span logs, and
the ASCII Gantt renderer."""

import json

from repro import metrics
from repro.obs import export as obsx
from repro.obs import spans as obs


def _spans_fixture():
    """A deterministic little span forest: one party with a child crypto
    span (no attrs of its own) and one room span."""
    rec = metrics.Recorder()
    rec.tracing = True
    with metrics.using(rec):
        with obs.span("hs:0", party=0):
            with obs.span("gsig:sign"):
                pass
        obs.start_span("room", parent=None, token="cafe1234").end(
            outcome="completed")
        return rec, [s for s in rec.spans()]


class TestChromeTrace:
    def test_document_structure(self):
        rec, spans = _spans_fixture()
        with metrics.using(rec):
            doc = obsx.chrome_trace(spans, include_events=False)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert len(xs) == 3
        for e in xs:
            assert set(e) == {"ph", "name", "cat", "ts", "dur",
                              "pid", "tid", "args"}
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_lanes_from_party_and_token(self):
        rec, spans = _spans_fixture()
        with metrics.using(rec):
            doc = obsx.chrome_trace(spans, include_events=False)
        thread_names = {e["args"]["name"] for e in doc["traceEvents"]
                        if e["name"] == "thread_name"}
        assert "hs:0" in thread_names
        assert "room:cafe1234" in thread_names

    def test_child_span_inherits_parent_lane(self):
        rec, spans = _spans_fixture()
        with metrics.using(rec):
            doc = obsx.chrome_trace(spans, include_events=False)
        lanes = {e["tid"]: e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "thread_name"}
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        # gsig:sign carries no party attr, yet renders in the hs:0 lane
        # because its parent chain leads there.
        assert lanes[by_name["gsig:sign"]["tid"]] == "hs:0"
        assert by_name["gsig:sign"]["tid"] == by_name["hs:0"]["tid"]

    def test_args_flatten_non_scalars(self):
        rec = metrics.Recorder()
        rec.tracing = True
        with metrics.using(rec):
            obs.start_span("leaky", parent=None,
                           blob=b"\x00\x01", items=(1, 2)).end()
            doc = obsx.chrome_trace(include_events=False)
        args = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["blob"] == "<bytes>"
        assert args["items"] == "<tuple>"

    def test_json_serializable_and_file_export(self, tmp_path):
        rec, spans = _spans_fixture()
        path = tmp_path / "trace.json"
        with metrics.using(rec):
            obsx.export_chrome_trace(str(path), spans)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_includes_metrics_events_when_asked(self):
        from repro.crypto.modmath import mexp
        rec = metrics.Recorder()
        rec.tracing = True
        with metrics.using(rec):
            with metrics.scope("work"), obs.span("work"):
                mexp(2, 50, 1009)
            doc = obsx.chrome_trace(include_events=True)
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert cats == {"span", "metrics"}
        # scope-begin/end events are skipped (spans already cover them).
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "scope-begin" not in names and "scope-end" not in names


class TestJsonl:
    def test_one_parseable_line_per_span(self):
        rec, spans = _spans_fixture()
        lines = obsx.spans_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        docs = [json.loads(line) for line in lines]
        assert {"name", "span_id", "parent_id", "ts", "dur", "tid"} <= set(docs[0])
        by_name = {d["name"]: d for d in docs}
        assert by_name["hs:0"]["attr.party"] == 0
        assert by_name["gsig:sign"]["parent_id"] == by_name["hs:0"]["span_id"]

    def test_file_export(self, tmp_path):
        rec, spans = _spans_fixture()
        path = tmp_path / "spans.jsonl"
        obsx.export_spans_jsonl(str(path), spans)
        assert len(path.read_text().splitlines()) == len(spans)


class TestGantt:
    def test_renders_lanes_bars_and_title(self):
        rec, spans = _spans_fixture()
        out = obsx.render_gantt(spans, width=40, title="golden timeline")
        assert out.startswith("golden timeline")
        assert "hs:0" in out
        assert "room:cafe1234" in out
        assert "#" in out
        # Child spans are indented under their parents.
        assert "  gsig:sign" in out

    def test_empty_spans_message(self):
        out = obsx.render_gantt([], title="empty")
        assert "no spans recorded" in out
