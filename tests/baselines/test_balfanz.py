"""Tests for the Balfanz et al. pairing-based baseline."""

import random

import pytest

from repro.baselines import balfanz
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def groups():
    rng = random.Random(31)
    fbi = balfanz.BalfanzGroup("fbi", rng=rng)
    cia = balfanz.BalfanzGroup("cia", rng=rng)
    return fbi, cia, rng


class TestHandshake:
    def test_same_group_succeeds(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a1"), fbi.admit("b1")
        session = balfanz.handshake(fbi, a, fbi, b, rng)
        assert session.success

    def test_cross_group_fails_mutually(self, groups):
        fbi, cia, rng = groups
        a, c = fbi.admit("a2"), cia.admit("c2")
        session = balfanz.handshake(fbi, a, cia, c, rng)
        assert not session.accepted_a and not session.accepted_b

    def test_affiliation_hidden_on_failure(self, groups):
        """The wire view of a failed handshake carries only pseudonyms,
        nonces and MACs — no group identifiers."""
        fbi, cia, rng = groups
        a, c = fbi.admit("a3"), cia.admit("c3")
        session = balfanz.handshake(fbi, a, cia, c, rng)
        visible = (session.pseudonym_a, session.pseudonym_b,
                   session.nonce_a, session.nonce_b)
        assert "fbi" not in str(visible) and "cia" not in str(visible)


class TestOneTimeCredentials:
    def test_pseudonyms_burned(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a4", batch=2), fbi.admit("b4", batch=8)
        assert a.remaining == 2
        balfanz.handshake(fbi, a, fbi, b, rng)
        assert a.remaining == 1

    def test_exhaustion(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a5", batch=1), fbi.admit("b5", batch=8)
        balfanz.handshake(fbi, a, fbi, b, rng)
        with pytest.raises(ProtocolError):
            balfanz.handshake(fbi, a, fbi, b, rng)

    def test_replenish(self, groups):
        fbi, _, rng = groups
        a = fbi.admit("a6", batch=1)
        fbi.replenish(a, 3)
        assert a.remaining == 4

    def test_fresh_pseudonyms_unlinkable(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a7", batch=4), fbi.admit("b7", batch=4)
        s1 = balfanz.handshake(fbi, a, fbi, b, rng)
        s2 = balfanz.handshake(fbi, a, fbi, b, rng)
        assert not balfanz.sessions_linkable(s1, s2)

    def test_reuse_links(self, groups):
        """The crux of E7: reusing a pseudonym links the two sessions —
        exactly the drawback GCD's reusable credentials remove."""
        fbi, _, rng = groups
        a, b = fbi.admit("a8", batch=4), fbi.admit("b8", batch=4)
        s1 = balfanz.handshake(fbi, a, fbi, b, rng)
        s2 = balfanz.handshake(fbi, a, fbi, b, rng, reuse_a=True)
        assert balfanz.sessions_linkable(s1, s2)
        assert s2.success  # reuse still *works*, it just links
