"""Tests for the CA-oblivious-encryption baseline."""

import random

import pytest

from repro.baselines import ca_oblivious
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def groups():
    rng = random.Random(41)
    fbi = ca_oblivious.CaObliviousGroup("fbi", rng=rng)
    cia = ca_oblivious.CaObliviousGroup("cia", rng=rng)
    return fbi, cia, rng


class TestCertificates:
    def test_implicit_public_key_matches(self, groups):
        fbi, _, rng = groups
        member = fbi.admit("u1")
        credential = member.credentials[0]
        derived = ca_oblivious.implicit_public_key(
            fbi.group, fbi.y, credential.pseudonym, credential.omega
        )
        assert derived == fbi.group.power_of_g(credential.t)

    def test_wrong_ca_gives_unrelated_key(self, groups):
        fbi, cia, _ = groups
        member = fbi.admit("u2")
        credential = member.credentials[0]
        wrong = ca_oblivious.implicit_public_key(
            fbi.group, cia.y, credential.pseudonym, credential.omega
        )
        assert wrong != fbi.group.power_of_g(credential.t)


class TestHandshake:
    def test_same_group(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a1"), fbi.admit("b1")
        assert ca_oblivious.handshake(fbi, a, fbi, b, rng).success

    def test_cross_group_fails(self, groups):
        fbi, cia, rng = groups
        a, c = fbi.admit("a2"), cia.admit("c2")
        session = ca_oblivious.handshake(fbi, a, cia, c, rng)
        assert not session.accepted_a and not session.accepted_b

    def test_exhaustion(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a3", batch=1), fbi.admit("b3", batch=4)
        ca_oblivious.handshake(fbi, a, fbi, b, rng)
        with pytest.raises(ProtocolError):
            ca_oblivious.handshake(fbi, a, fbi, b, rng)

    def test_fresh_credentials_unlinkable(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a4"), fbi.admit("b4")
        s1 = ca_oblivious.handshake(fbi, a, fbi, b, rng)
        s2 = ca_oblivious.handshake(fbi, a, fbi, b, rng)
        assert not ca_oblivious.sessions_linkable(s1, s2)

    def test_reuse_links(self, groups):
        fbi, _, rng = groups
        a, b = fbi.admit("a5"), fbi.admit("b5")
        s1 = ca_oblivious.handshake(fbi, a, fbi, b, rng)
        s2 = ca_oblivious.handshake(fbi, a, fbi, b, rng, reuse_a=True)
        assert ca_oblivious.sessions_linkable(s1, s2)
