"""Tests for the Section-3 strawmen: they work as handshakes, and the
documented attacks against each succeed — the negative space that
motivates the full GCD design."""

import random

import pytest

from repro.baselines import naive


@pytest.fixture(scope="module")
def worlds():
    rng = random.Random(51)
    cgkd_only = naive.CgkdOnlyScheme(rng)
    gsig_only = naive.GsigOnlyScheme("tiny", rng)
    combined = naive.CgkdPlusGsigScheme("tiny", rng)
    for scheme in (cgkd_only, gsig_only, combined):
        for name in ("u1", "u2", "u3"):
            scheme.admit(name)
    return cgkd_only, gsig_only, combined, rng


class TestCgkdOnly:
    def test_handshake_works(self, worlds):
        scheme, _, _, rng = worlds
        assert scheme.handshake(["u1", "u2"], rng).success

    def test_member_eavesdropper_detects(self, worlds):
        """Drawback (1): a passive member verifies the MACs."""
        scheme, _, _, rng = worlds
        transcript = scheme.handshake(["u1", "u2"], rng)
        spy_key = scheme.members["u3"].group_key
        assert naive.CgkdOnlyScheme.attack_member_eavesdropper(transcript, spy_key)

    def test_outsider_does_not_detect(self, worlds):
        scheme, _, _, rng = worlds
        transcript = scheme.handshake(["u1", "u2"], rng)
        assert not naive.CgkdOnlyScheme.attack_member_eavesdropper(
            transcript, b"\x00" * 32
        )

    def test_no_self_distinction(self, worlds):
        """Drawback (3): one member plays three parties unnoticed."""
        scheme, _, _, rng = worlds
        assert naive.CgkdOnlyScheme.attack_multi_role(scheme, "u1", 3, rng)

    def test_untraceable(self):
        assert naive.CgkdOnlyScheme.attack_untraceable()


class TestGsigOnly:
    def test_handshake_works(self, worlds):
        _, scheme, _, rng = worlds
        assert scheme.handshake(["u1", "u2"], rng).success

    def test_outsider_detects(self, worlds):
        """The fatal flaw: signatures verify under the *public* key."""
        _, scheme, _, rng = worlds
        transcript = scheme.handshake(["u1", "u2"], rng)
        assert scheme.attack_outsider_detection(transcript)

    def test_traceability_works(self, worlds):
        _, scheme, _, rng = worlds
        transcript = scheme.handshake(["u1", "u3"], rng)
        assert scheme.trace(transcript) == ["u1", "u3"]


class TestCgkdPlusGsig:
    def test_handshake_works(self, worlds):
        _, _, scheme, rng = worlds
        assert scheme.handshake(["u1", "u2"], rng).success

    def test_member_eavesdropper_still_detects(self, worlds):
        """Drawback (1) survives: the long-lived group key decrypts all."""
        _, _, scheme, rng = worlds
        transcript = scheme.handshake(["u1", "u2"], rng)
        spy_key = scheme.cgkd.members["u3"].group_key
        assert scheme.attack_member_eavesdropper(transcript, spy_key)

    def test_outsider_blinded(self, worlds):
        _, _, scheme, rng = worlds
        transcript = scheme.handshake(["u1", "u2"], rng)
        assert not scheme.attack_member_eavesdropper(transcript, b"\x01" * 32)

    def test_traceability_regained(self, worlds):
        _, _, scheme, rng = worlds
        transcript = scheme.handshake(["u2", "u3"], rng)
        spy_key = scheme.cgkd.members["u1"].group_key
        assert scheme.trace(transcript, spy_key) == ["u2", "u3"]
