"""The naive "star" CGKD: one individual key per member, flat rekeying.

Baseline for the LKH/NNL benchmarks: both Join and Leave cost O(n)
ciphertexts (the fresh group key is encrypted individually for every
member), versus O(log n) for the key tree.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.cgkd.base import (
    GroupController,
    MemberState,
    RekeyMessage,
    WelcomePackage,
    fresh_key,
    require_member,
    require_not_member,
)
from repro.crypto import symmetric
from repro.errors import DecryptionError


class StarController(GroupController):
    """GC holding one pairwise key per member plus the group key."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng
        self._epoch = 0
        self._group_key = fresh_key(rng)
        self._individual: Dict[str, bytes] = {}

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def group_key(self) -> bytes:
        return self._group_key

    def members(self) -> List[str]:
        return sorted(self._individual)

    def join(self, user_id: str) -> Tuple[WelcomePackage, RekeyMessage]:
        require_not_member(self._individual, user_id)
        individual = fresh_key(self._rng)
        self._individual[user_id] = individual
        self._epoch += 1
        self._group_key = fresh_key(self._rng)
        deliveries = tuple(
            (uid, uid, symmetric.encrypt(key, self._group_key, self._rng))
            for uid, key in sorted(self._individual.items())
        )
        welcome = WelcomePackage(
            user_id=user_id,
            epoch=self._epoch,
            keys={"individual": individual, "group": self._group_key},
        )
        return welcome, RekeyMessage(self._epoch, "join", deliveries)

    def leave(self, user_id: str) -> RekeyMessage:
        require_member(self._individual, user_id)
        del self._individual[user_id]
        self._epoch += 1
        self._group_key = fresh_key(self._rng)
        deliveries = tuple(
            (uid, uid, symmetric.encrypt(key, self._group_key, self._rng))
            for uid, key in sorted(self._individual.items())
        )
        return RekeyMessage(self._epoch, "leave", deliveries)


class StarMember(MemberState):
    """Member state: individual key + current group key."""

    def __init__(self, welcome: WelcomePackage) -> None:
        self.user_id = welcome.user_id
        self._individual = welcome.keys["individual"]
        self._group_key = welcome.keys["group"]
        self._epoch = welcome.epoch
        self._acc = True

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def acc(self) -> bool:
        return self._acc

    @property
    def group_key(self) -> bytes:
        return self._group_key

    def key_count(self) -> int:
        return 2

    def rekey(self, message: RekeyMessage) -> bool:
        if message.epoch <= self._epoch:
            return self._acc
        self._acc = False
        for uid, _enc_under, ciphertext in message.deliveries:
            if uid != self.user_id:
                continue
            try:
                self._group_key = symmetric.decrypt(self._individual, ciphertext)
            except DecryptionError:
                return False
            self._epoch = message.epoch
            self._acc = True
            return True
        return False
