"""Naor-Naor-Lotspiech stateless broadcast encryption [26]: the Complete
Subtree (CS) and Subset Difference (SD) methods, plus a CGKD adapter.

Both methods work over a full binary tree of ``capacity`` leaves (heap
numbering: root = 1, leaves ``capacity .. 2*capacity-1``); a receiver is a
leaf.  A broadcast carries a *header*: the session key encrypted once per
subset of a cover of the non-revoked leaves.

* **CS**: subsets are full subtrees; a user stores the log N + 1 node keys
  on its path; cover size is O(r log(N/r)).
* **SD**: subsets ``S(i, j)`` = leaves under ``i`` minus leaves under ``j``;
  keys derive from per-node labels through a GGM-style PRG (``G_L``,
  ``G_M``, ``G_R``); a user stores O(log^2 N) labels; cover size <= 2r - 1
  — the headline NNL result our benchmark E8 reproduces.

:class:`NnlController` / :class:`NnlMember` wrap either method behind the
Fig. 4 CGKD interface so the GCD framework can swap LKH for NNL.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cgkd.base import (
    GroupController,
    MemberState,
    RekeyMessage,
    WelcomePackage,
    fresh_key,
    require_member,
    require_not_member,
)
from repro.crypto import hashing, symmetric
from repro.errors import DecryptionError, MembershipError, ParameterError

_LABEL_BYTES = 32
FULL_COVER = (1, 0)  # Sentinel subset meaning "every leaf" (empty R).


def _check_capacity(capacity: int) -> None:
    if capacity < 2 or capacity & (capacity - 1):
        raise ParameterError("capacity must be a power of two >= 2")


def _is_ancestor_or_self(ancestor: int, node: int) -> bool:
    diff = node.bit_length() - ancestor.bit_length()
    return diff >= 0 and (node >> diff) == ancestor


def _strict_ancestors(leaf: int) -> Iterable[int]:
    node = leaf // 2
    while node >= 1:
        yield node
        node //= 2


# ---------------------------------------------------------------------------
# Complete Subtree.
# ---------------------------------------------------------------------------


class CompleteSubtreeScheme:
    """The CS method: independent random key per tree node."""

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        _check_capacity(capacity)
        self.capacity = capacity
        self._rng = rng
        self._node_keys: Dict[int, bytes] = {
            node: fresh_key(rng) for node in range(1, 2 * capacity)
        }

    def leaves(self) -> range:
        return range(self.capacity, 2 * self.capacity)

    def user_keys(self, leaf: int) -> Dict[int, bytes]:
        """Device keys for ``leaf``: every node key on its path."""
        self._check_leaf(leaf)
        keys = {leaf: self._node_keys[leaf]}
        for node in _strict_ancestors(leaf):
            keys[node] = self._node_keys[node]
        return keys

    def cover(self, revoked: Set[int]) -> List[int]:
        """Minimal set of subtree roots covering exactly the non-revoked
        leaves: nodes not on the Steiner tree of R whose parent is."""
        for leaf in revoked:
            self._check_leaf(leaf)
        if not revoked:
            return [1]
        if len(revoked) == self.capacity:
            return []
        steiner: Set[int] = set()
        for leaf in revoked:
            node = leaf
            while node >= 1 and node not in steiner:
                steiner.add(node)
                node //= 2
        cover = []
        for node in sorted(steiner):
            for child in (2 * node, 2 * node + 1):
                if child < 2 * self.capacity and child not in steiner:
                    cover.append(child)
        return cover

    def encrypt(self, revoked: Set[int], payload: bytes) -> List[Tuple[int, bytes]]:
        return [
            (node, symmetric.encrypt(self._node_keys[node], payload, self._rng))
            for node in self.cover(revoked)
        ]

    @staticmethod
    def decrypt(user_keys: Dict[int, bytes], leaf: int,
                header: List[Tuple[int, bytes]]) -> Optional[bytes]:
        for node, ciphertext in header:
            key = user_keys.get(node)
            if key is None or not _is_ancestor_or_self(node, leaf):
                continue
            try:
                return symmetric.decrypt(key, ciphertext)
            except DecryptionError:
                return None
        return None

    def _check_leaf(self, leaf: int) -> None:
        if not self.capacity <= leaf < 2 * self.capacity:
            raise ParameterError(f"{leaf} is not a leaf of this tree")


# ---------------------------------------------------------------------------
# Subset Difference.
# ---------------------------------------------------------------------------


def _prg(label: bytes, direction: str) -> bytes:
    """GGM-style PRG: derive the left/middle/right child value of a label."""
    return hashing.expand(f"nnl-sd-{direction}", label, _LABEL_BYTES)


@dataclass(frozen=True)
class SDSubset:
    """The subset S(i, j): leaves under i except those under j."""

    i: int
    j: int

    def contains(self, leaf: int) -> bool:
        if (self.i, self.j) == FULL_COVER:
            return True
        return _is_ancestor_or_self(self.i, leaf) and not _is_ancestor_or_self(
            self.j, leaf
        )


class SubsetDifferenceScheme:
    """The SD method with GGM label derivation."""

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        _check_capacity(capacity)
        self.capacity = capacity
        self._rng = rng
        self._labels: Dict[int, bytes] = {
            node: fresh_key(rng) for node in range(1, 2 * capacity)
        }

    def leaves(self) -> range:
        return range(self.capacity, 2 * self.capacity)

    # Label plumbing -----------------------------------------------------------

    def _derive(self, i: int, j: int) -> bytes:
        """label_{i -> j}: walk the path bits of j below i."""
        if not _is_ancestor_or_self(i, j):
            raise ParameterError(f"{j} is not a descendant of {i}")
        label = self._labels[i]
        return derive_label(label, i, j)

    def subset_key(self, subset: SDSubset) -> bytes:
        if (subset.i, subset.j) == FULL_COVER:
            return _prg(self._labels[1], "M")
        return _prg(self._derive(subset.i, subset.j), "M")

    def user_keys(self, leaf: int) -> Dict[Tuple[int, int], bytes]:
        """Device labels for ``leaf``: for each strict ancestor ``i``, the
        labels label_{i -> s} of every sibling ``s`` hanging off the path
        from ``i`` down to ``leaf`` — plus the full-cover key."""
        self._check_leaf(leaf)
        store: Dict[Tuple[int, int], bytes] = {}
        for i in _strict_ancestors(leaf):
            node = leaf
            while node != i:
                sibling = node ^ 1
                store[(i, sibling)] = self._derive(i, sibling)
                node //= 2
        store[FULL_COVER] = _prg(self._labels[1], "M")
        return store

    # Cover computation -----------------------------------------------------------

    def cover(self, revoked: Set[int]) -> List[SDSubset]:
        """The NNL SD cover: at most 2r - 1 subsets."""
        for leaf in revoked:
            self._check_leaf(leaf)
        if not revoked:
            return [SDSubset(*FULL_COVER)]
        subsets: List[SDSubset] = []

        def walk(node: int) -> Optional[int]:
            """Returns the pending node u such that the revoked leaves under
            ``node`` are exactly the leaves under ``u`` (None if no revoked
            leaves under ``node``)."""
            if node >= self.capacity:
                return node if node in revoked else None
            left, right = 2 * node, 2 * node + 1
            ul = walk(left)
            ur = walk(right)
            if ul is None and ur is None:
                return None
            if ur is None:
                return ul
            if ul is None:
                return ur
            if ul != left:
                subsets.append(SDSubset(left, ul))
            if ur != right:
                subsets.append(SDSubset(right, ur))
            return node

        pending = walk(1)
        if pending is not None and pending != 1:
            subsets.append(SDSubset(1, pending))
        return subsets

    def encrypt(self, revoked: Set[int], payload: bytes) -> List[Tuple[int, int, bytes]]:
        header = []
        for subset in self.cover(revoked):
            key = self.subset_key(subset)
            header.append(
                (subset.i, subset.j, symmetric.encrypt(key, payload, self._rng))
            )
        return header

    @staticmethod
    def decrypt(user_keys: Dict[Tuple[int, int], bytes], leaf: int,
                header: List[Tuple[int, int, bytes]]) -> Optional[bytes]:
        for i, j, ciphertext in header:
            subset = SDSubset(i, j)
            if not subset.contains(leaf):
                continue
            if (i, j) == FULL_COVER:
                key = user_keys.get(FULL_COVER)
            else:
                key = _subset_key_from_store(user_keys, i, j)
            if key is None:
                continue
            try:
                return symmetric.decrypt(key, ciphertext)
            except DecryptionError:
                return None
        return None

    def _check_leaf(self, leaf: int) -> None:
        if not self.capacity <= leaf < 2 * self.capacity:
            raise ParameterError(f"{leaf} is not a leaf of this tree")


def derive_label(label: bytes, from_node: int, to_node: int) -> bytes:
    """Walk a label down the tree from ``from_node`` to ``to_node``."""
    depth_diff = to_node.bit_length() - from_node.bit_length()
    for shift in range(depth_diff - 1, -1, -1):
        bit = (to_node >> shift) & 1
        label = _prg(label, "R" if bit else "L")
    return label


def _subset_key_from_store(user_keys: Dict[Tuple[int, int], bytes],
                           i: int, j: int) -> Optional[bytes]:
    """Recover the key for S(i, j) from a member's label store: find the
    stored ancestor label (i, a) with a an ancestor of j, derive down."""
    node = j
    while node.bit_length() > i.bit_length():
        label = user_keys.get((i, node))
        if label is not None:
            return _prg(derive_label(label, node, j), "M")
        node //= 2
    return None


# ---------------------------------------------------------------------------
# CGKD adapter.
# ---------------------------------------------------------------------------


class NnlController(GroupController):
    """Fig. 4 GC on top of a stateless NNL scheme.

    Members are assigned leaves at join; the group key is refreshed on every
    membership event by broadcasting it under a cover that excludes all
    unoccupied and revoked leaves.
    """

    def __init__(self, capacity: int, method: str = "sd",
                 rng: Optional[random.Random] = None) -> None:
        if method == "sd":
            self._scheme = SubsetDifferenceScheme(capacity, rng)
        elif method == "cs":
            self._scheme = CompleteSubtreeScheme(capacity, rng)
        else:
            raise ParameterError("method must be 'sd' or 'cs'")
        self.method = method
        self._rng = rng
        self._epoch = 0
        self._group_key = fresh_key(rng)
        self._leaf_of: Dict[str, int] = {}
        self._free = list(self._scheme.leaves())

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def group_key(self) -> bytes:
        return self._group_key

    def members(self) -> List[str]:
        return sorted(self._leaf_of)

    def _excluded(self) -> Set[int]:
        occupied = set(self._leaf_of.values())
        return {leaf for leaf in self._scheme.leaves() if leaf not in occupied}

    def _broadcast(self, kind: str) -> RekeyMessage:
        self._epoch += 1
        self._group_key = fresh_key(self._rng)
        header = self._scheme.encrypt(self._excluded(), self._group_key)
        return RekeyMessage(self._epoch, kind, tuple(header),
                            header={"method": self.method})

    def join(self, user_id: str) -> Tuple[WelcomePackage, RekeyMessage]:
        require_not_member(self._leaf_of, user_id)
        if not self._free:
            raise MembershipError("NNL tree is full (stateless: fixed capacity)")
        leaf = self._free.pop(0)
        self._leaf_of[user_id] = leaf
        message = self._broadcast("join")
        welcome = WelcomePackage(
            user_id=user_id,
            epoch=self._epoch,
            keys=self._scheme.user_keys(leaf),
            extra={"leaf": leaf, "method": self.method,
                   "group": self._group_key},
        )
        return welcome, message

    def leave(self, user_id: str) -> RekeyMessage:
        require_member(self._leaf_of, user_id)
        leaf = self._leaf_of.pop(user_id)
        self._free.append(leaf)
        return self._broadcast("leave")


class NnlMember(MemberState):
    """Member holding fixed NNL device keys plus the current group key."""

    def __init__(self, welcome: WelcomePackage) -> None:
        self.user_id = welcome.user_id
        self._leaf = welcome.extra["leaf"]
        self._method = welcome.extra["method"]
        self._device_keys = dict(welcome.keys)
        self._group_key = welcome.extra["group"]
        self._epoch = welcome.epoch
        self._acc = True

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def acc(self) -> bool:
        return self._acc

    @property
    def group_key(self) -> bytes:
        return self._group_key

    def key_count(self) -> int:
        return len(self._device_keys) + 1

    def rekey(self, message: RekeyMessage) -> bool:
        if message.epoch <= self._epoch:
            return self._acc
        self._acc = False
        header = list(message.deliveries)
        if self._method == "sd":
            payload = SubsetDifferenceScheme.decrypt(
                self._device_keys, self._leaf, header
            )
        else:
            payload = CompleteSubtreeScheme.decrypt(
                self._device_keys, self._leaf, header
            )
        if payload is None:
            return False
        self._group_key = payload
        self._epoch = message.epoch
        self._acc = True
        return True
