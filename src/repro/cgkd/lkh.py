"""Logical Key Hierarchy (key graphs; Wong-Gouda-Lam [33]).

The GC maintains a binary key tree: leaves are members, internal nodes hold
auxiliary keys, the root key is the group key.  A member stores the keys on
its leaf-to-root path (O(log n)); a Join/Leave replaces only the keys on one
path, so a rekey broadcast carries O(log n) ciphertexts — the paper's
primary CGKD citation for instantiation 1.

Node numbering is heap-style: root = 1, children of ``i`` are ``2i`` and
``2i+1``; leaves occupy ``[capacity, 2*capacity)``.  When the tree fills up,
capacity doubles by grafting the old tree as the *left child* of a new
root; every old node id ``i`` becomes ``i + 2^(bitlen(i)-1)`` (insert a 0
after the leading 1 of the heap path).  Rekey messages carry a ``grow``
header so members renumber their local key sets identically.

Strong security (Xu [34]): replacement keys are always fresh random values
— never derived from prior keys — and delivered under authenticated
encryption, so revoked members learn nothing about future keys and later
corruptions reveal nothing about earlier epochs.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cgkd.base import (
    GroupController,
    MemberState,
    RekeyMessage,
    WelcomePackage,
    fresh_key,
    require_member,
    require_not_member,
)
from repro.crypto import symmetric
from repro.errors import DecryptionError, MembershipError


def renumber_after_grow(node_id: int) -> int:
    """Map an old node id to its id after one capacity doubling."""
    return node_id + (1 << (node_id.bit_length() - 1))


def _path_to_root(node_id: int) -> Iterator[int]:
    while node_id >= 1:
        yield node_id
        node_id //= 2


def _is_ancestor_or_self(ancestor: int, leaf: int) -> bool:
    diff = leaf.bit_length() - ancestor.bit_length()
    return diff >= 0 and (leaf >> diff) == ancestor


class LkhController(GroupController):
    """GC side of the key tree."""

    def __init__(self, initial_capacity: int = 4,
                 rng: Optional[random.Random] = None) -> None:
        if initial_capacity < 2 or initial_capacity & (initial_capacity - 1):
            raise MembershipError("capacity must be a power of two >= 2")
        self._capacity = initial_capacity
        self._rng = rng
        self._epoch = 0
        self._leaf_of: Dict[str, int] = {}
        self._user_at: Dict[int, str] = {}
        self._keys: Dict[int, bytes] = {}

    # Introspection -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def group_key(self) -> bytes:
        if 1 not in self._keys:
            raise MembershipError("group is empty; no group key yet")
        return self._keys[1]

    def members(self) -> List[str]:
        return sorted(self._leaf_of)

    def key_count(self) -> int:
        return len(self._keys)

    # Internals ----------------------------------------------------------------

    def _free_leaf(self) -> Optional[int]:
        for leaf in range(self._capacity, 2 * self._capacity):
            if leaf not in self._user_at:
                return leaf
        return None

    def _grow(self) -> None:
        self._keys = {renumber_after_grow(i): k for i, k in self._keys.items()}
        self._user_at = {renumber_after_grow(i): u for i, u in self._user_at.items()}
        self._leaf_of = {u: renumber_after_grow(i) for u, i in self._leaf_of.items()}
        self._capacity *= 2

    def _occupied(self, node_id: int) -> bool:
        """True iff some member leaf lives under ``node_id``."""
        if node_id >= self._capacity:
            return node_id in self._user_at
        return any(_is_ancestor_or_self(node_id, leaf) for leaf in self._user_at)

    def _replace_path_keys(
        self, leaf: int, skip_leaf: Optional[int] = None
    ) -> Tuple[List[Tuple[int, int, bytes]], Dict[int, bytes]]:
        """Replace every key on ``parent(leaf)..root`` with fresh keys.

        Returns (deliveries, new_path_keys).  Each replaced node's new key
        is encrypted under the current key of each occupied child (a child
        replaced earlier in the same pass uses its *new* key).
        ``skip_leaf`` marks a just-removed leaf that must receive nothing.
        """
        deliveries: List[Tuple[int, int, bytes]] = []
        new_keys: Dict[int, bytes] = {}
        node = leaf // 2
        while node >= 1:
            if not self._occupied(node):
                self._keys.pop(node, None)
                node //= 2
                continue
            new_key = fresh_key(self._rng)
            for child in (2 * node, 2 * node + 1):
                if child == skip_leaf:
                    continue
                child_key = self._keys.get(child)
                if child_key is None:
                    continue
                deliveries.append(
                    (node, child, symmetric.encrypt(child_key, new_key, self._rng))
                )
            self._keys[node] = new_key
            new_keys[node] = new_key
            node //= 2
        return deliveries, new_keys

    # Operations -----------------------------------------------------------------

    def join(self, user_id: str) -> Tuple[WelcomePackage, RekeyMessage]:
        require_not_member(self._leaf_of, user_id)
        grew = False
        leaf = self._free_leaf()
        if leaf is None:
            self._grow()
            grew = True
            leaf = self._free_leaf()
            assert leaf is not None
        leaf_key = fresh_key(self._rng)
        self._leaf_of[user_id] = leaf
        self._user_at[leaf] = user_id
        self._keys[leaf] = leaf_key
        deliveries, new_path_keys = self._replace_path_keys(leaf)
        self._epoch += 1
        welcome_keys = dict(new_path_keys)
        welcome_keys[leaf] = leaf_key
        welcome = WelcomePackage(
            user_id=user_id,
            epoch=self._epoch,
            keys=welcome_keys,
            extra={"leaf": leaf, "capacity": self._capacity},
        )
        message = RekeyMessage(
            self._epoch, "join", tuple(deliveries), header={"grow": grew}
        )
        return welcome, message

    def leave(self, user_id: str) -> RekeyMessage:
        require_member(self._leaf_of, user_id)
        leaf = self._leaf_of.pop(user_id)
        del self._user_at[leaf]
        del self._keys[leaf]
        deliveries, _ = self._replace_path_keys(leaf, skip_leaf=leaf)
        self._epoch += 1
        return RekeyMessage(self._epoch, "leave", tuple(deliveries))

    def leave_many(self, user_ids: List[str]) -> List[RekeyMessage]:
        """Batched Leave: remove every member in one epoch, replacing the
        *union* of the removed leaves' ancestor paths exactly once.

        k sequential leaves rekey up to k*log(n) nodes and broadcast k
        messages; the batch rekeys |union of paths| <= k*log(n) nodes
        (shared ancestors fresh-keyed once) in a single broadcast, which
        is what lets a revocation epoch cost one CGKD rekey regardless of
        how many members it removes.
        """
        ids = list(user_ids)
        if not ids:
            return []
        if len(set(ids)) != len(ids):
            raise MembershipError("duplicate user in batched leave")
        for user_id in ids:
            require_member(self._leaf_of, user_id)
        removed: set = set()
        for user_id in ids:
            leaf = self._leaf_of.pop(user_id)
            del self._user_at[leaf]
            del self._keys[leaf]
            removed.add(leaf)
        ancestors: set = set()
        for leaf in removed:
            node = leaf // 2
            while node >= 1:
                ancestors.add(node)
                node //= 2
        deliveries: List[Tuple[int, int, bytes]] = []
        # Bottom-up (deepest first) so a child key replaced earlier in the
        # same pass encrypts its parent's delivery — the same single-pass
        # decryption contract as _replace_path_keys.
        for node in sorted(ancestors, key=lambda i: (-i.bit_length(), i)):
            if not self._occupied(node):
                self._keys.pop(node, None)
                continue
            new_key = fresh_key(self._rng)
            for child in (2 * node, 2 * node + 1):
                if child in removed:
                    continue
                child_key = self._keys.get(child)
                if child_key is None:
                    continue
                deliveries.append(
                    (node, child, symmetric.encrypt(child_key, new_key, self._rng))
                )
            self._keys[node] = new_key
        self._epoch += 1
        return [RekeyMessage(self._epoch, "leave", tuple(deliveries),
                             header={"batch": len(ids)})]


class LkhMember(MemberState):
    """Member state: leaf id plus the path keys."""

    def __init__(self, welcome: WelcomePackage) -> None:
        self.user_id = welcome.user_id
        self._leaf = welcome.extra["leaf"]
        self._keys: Dict[int, bytes] = dict(welcome.keys)
        self._epoch = welcome.epoch
        self._acc = True

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def acc(self) -> bool:
        return self._acc

    @property
    def leaf(self) -> int:
        return self._leaf

    @property
    def group_key(self) -> bytes:
        return self._keys[1]

    def key_count(self) -> int:
        return len(self._keys)

    def rekey(self, message: RekeyMessage) -> bool:
        if message.epoch <= self._epoch:
            return self._acc
        self._acc = False
        if message.header.get("grow"):
            self._keys = {renumber_after_grow(i): k for i, k in self._keys.items()}
            self._leaf = renumber_after_grow(self._leaf)
        decrypted_any = False
        # Deliveries were appended bottom-up by the controller, so a single
        # in-order pass lets a new child key unlock its parent's delivery.
        for target, enc_under, ciphertext in message.deliveries:
            if not _is_ancestor_or_self(target, self._leaf):
                continue
            key = self._keys.get(enc_under)
            if key is None:
                continue
            try:
                self._keys[target] = symmetric.decrypt(key, ciphertext)
            except DecryptionError:
                return False
            decrypted_any = True
        if not decrypted_any:
            return False
        self._epoch = message.epoch
        self._acc = True
        return True
