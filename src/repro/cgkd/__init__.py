"""Building block II: centralized group key distribution (paper Section 5,
Fig. 4).

* :mod:`repro.cgkd.star` — the naive pairwise scheme (O(n) rekey); baseline.
* :mod:`repro.cgkd.lkh`  — Logical Key Hierarchy / key graphs
  (Wong-Gouda-Lam [33]); O(log n) rekey, the paper's primary citation.
* :mod:`repro.cgkd.nnl`  — Naor-Naor-Lotspiech stateless schemes [26]:
  complete subtree and subset difference.

All schemes follow the strong-security discipline of [34]: every rekey uses
fresh random keys (never key material derived from compromised epochs) and
authenticated encryption for key delivery, so corrupting a member at time
t2 reveals nothing about group keys at t1 < t2 once the member was revoked
in between.
"""

from repro.cgkd.base import GroupController, MemberState, RekeyMessage  # noqa: F401
