"""CGKD interface (paper Fig. 4).

The group controller (GC) maintains keys ``K_GC``; each member ``U`` holds
``K_U`` with a common group key ``k(t)`` at every virtual time ``t``.
Join/Leave events produce a :class:`RekeyMessage` broadcast over the
authenticated (anonymous) channel; members process it with ``rekey`` and
set their ``acc`` flag on success — mirroring the paper's formalism.

Newly admitted members receive their initial key material through a private
authenticated channel (the paper abstracts this; here it is the
:class:`WelcomePackage` return value of ``join``).
"""

from __future__ import annotations

import abc
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MembershipError

KEY_LENGTH = 32


def fresh_key(rng: Optional[random.Random] = None) -> bytes:
    """A fresh random symmetric key (never derived from older keys — the
    strong-security requirement of [34])."""
    if rng is None:
        return os.urandom(KEY_LENGTH)
    return rng.getrandbits(8 * KEY_LENGTH).to_bytes(KEY_LENGTH, "big")


@dataclass(frozen=True)
class RekeyMessage:
    """Broadcast rekey payload for one Join/Leave event at virtual time
    ``epoch``.  ``deliveries`` is scheme-specific: typically a list of
    ``(node_id, encrypting_node_id, ciphertext)`` records."""

    epoch: int
    kind: str  # "join" | "leave"
    deliveries: Tuple[Any, ...] = ()
    header: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of key-delivery ciphertexts (the rekey-cost metric)."""
        return len(self.deliveries)


@dataclass(frozen=True)
class WelcomePackage:
    """Private-channel material for a newly admitted member."""

    user_id: str
    epoch: int
    keys: Dict[Any, bytes]
    extra: Dict[str, Any] = field(default_factory=dict)


class GroupController(abc.ABC):
    """GC side of Fig. 4: Setup / Join / Leave."""

    @property
    @abc.abstractmethod
    def epoch(self) -> int:
        """Current virtual time t."""

    @property
    @abc.abstractmethod
    def group_key(self) -> bytes:
        """The current group key k(t)."""

    @abc.abstractmethod
    def members(self) -> List[str]:
        """Identities of the current member set Delta(t)."""

    @abc.abstractmethod
    def join(self, user_id: str) -> Tuple[WelcomePackage, RekeyMessage]:
        """Admit ``user_id``; returns the newcomer's private material and
        the broadcast rekey message for existing members."""

    @abc.abstractmethod
    def leave(self, user_id: str) -> RekeyMessage:
        """Remove/revoke ``user_id``; returns the broadcast rekey message."""

    def leave_many(self, user_ids: List[str]) -> List[RekeyMessage]:
        """Remove several members in one epoch where the scheme supports
        it.  The default falls back to sequential :meth:`leave` calls (one
        rekey broadcast per removal); tree schemes override this to replace
        the *union* of the removed leaves' key paths once and emit a single
        broadcast — the CGKD half of batched epoch revocation."""
        return [self.leave(user_id) for user_id in user_ids]


class MemberState(abc.ABC):
    """Member side of Fig. 4: holds K_U, processes Rekey."""

    user_id: str

    @property
    @abc.abstractmethod
    def epoch(self) -> int:
        """Virtual time of the member's latest accepted rekey."""

    @property
    @abc.abstractmethod
    def acc(self) -> bool:
        """Fig. 4 acceptance flag for the latest rekey event."""

    @property
    @abc.abstractmethod
    def group_key(self) -> bytes:
        """The member's current view of k(t)."""

    @abc.abstractmethod
    def rekey(self, message: RekeyMessage) -> bool:
        """Process a broadcast rekey message.  Returns True (and sets
        ``acc``) on success; False if this member cannot decrypt it (e.g.
        it was just revoked)."""

    @abc.abstractmethod
    def key_count(self) -> int:
        """|K_U| — member storage, a benchmark metric."""


def require_member(collection, user_id: str) -> None:
    if user_id not in collection:
        raise MembershipError(f"{user_id} is not a current group member")


def require_not_member(collection, user_id: str) -> None:
    if user_id in collection:
        raise MembershipError(f"{user_id} is already a group member")
