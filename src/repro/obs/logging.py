"""Structured JSON logging with an anonymity-preserving redaction layer.

Everything rides on stdlib :mod:`logging`: the service layer emits events
through :func:`log_event`, which attaches a flat field dict to the record;
:class:`JsonFormatter` renders one JSON object per line; and redaction
runs **twice** — eagerly in :func:`log_event` (so any handler, including
ones we do not control, only ever sees scrubbed fields) and again in
:class:`RedactionFilter` as defence in depth for records built by hand.

The redaction rule (docs/OBSERVABILITY.md) protects the handshake's
anonymity/unlinkability guarantees from the telemetry side-channel:

* **key denylist** — any field whose name mentions members, identities,
  payloads, keys or signature material is dropped to a placeholder;
  the rendezvous room *name* (chosen out of band, possibly meaningful)
  is likewise forbidden — logs carry only the random room token;
* **type allowlist** — values must be short scalars; bytes, tuples,
  lists, dicts and big integers (crypto-sized) are replaced by a type
  tag, so wire payloads cannot leak through a forgotten field.

By default the ``repro`` logger tree has a :class:`logging.NullHandler`
(library etiquette: silent unless the application opts in); call
:func:`configure` — or pass ``--log`` to the service CLI — to get JSON
lines on a stream.
"""

from __future__ import annotations

import json
import logging
import re
from typing import Dict

#: Field names that may never be logged with a live value.
_DENY_KEY = re.compile(
    r"(payload|member|identit|user|name|peer|key|secret|theta|delta|sigma"
    r"|credential|sid|signature)", re.IGNORECASE)

#: Ints larger than this are crypto-sized, not counters; redact them.
_MAX_INT = 1 << 63

#: Strings longer than this cannot be a reason/token/state label.
_MAX_STR = 120

_REDACTED = "[redacted]"

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())


def redact_value(key: str, value: object) -> object:
    """Apply the anonymity rule to one field; returns the value to log."""
    if _DENY_KEY.search(key):
        return _REDACTED
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value if -_MAX_INT < value < _MAX_INT else "[redacted:bigint]"
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        return value if len(value) <= _MAX_STR else value[:_MAX_STR] + "…"
    return f"[redacted:{type(value).__name__}]"


def redact_fields(fields: Dict[str, object]) -> Dict[str, object]:
    return {key: redact_value(key, value) for key, value in fields.items()}


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``name`` should start with
    ``repro.``; anything else is reparented for consistent config)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def log_event(logger: logging.Logger, event: str, *,
              level: int = logging.INFO, **fields: object) -> None:
    """Emit one structured event: ``event`` is a short kebab-case label
    (``"room-active"``), ``fields`` are flat scalars.  Redaction happens
    here, before the record exists — no handler can see raw values."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"obs_fields": redact_fields(fields)})


class RedactionFilter(logging.Filter):
    """Second line of defence: scrub ``obs_fields`` on any record passing
    a handler, covering records built without :func:`log_event`."""

    def filter(self, record: logging.LogRecord) -> bool:
        fields = getattr(record, "obs_fields", None)
        if isinstance(fields, dict):
            record.obs_fields = redact_fields(fields)
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "obs_fields", None)
        if isinstance(fields, dict):
            for key, value in sorted(fields.items()):
                doc.setdefault(key, value)
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=False, default=str)


def configure(level: int = logging.INFO, stream=None) -> logging.Handler:
    """Attach a JSON stream handler (stderr by default) to the ``repro``
    logger tree.  Idempotent: a previous :func:`configure` handler is
    replaced, not stacked."""
    for handler in list(_ROOT.handlers):
        if getattr(handler, "_repro_obs", False):
            _ROOT.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    handler.addFilter(RedactionFilter())
    handler._repro_obs = True  # type: ignore[attr-defined]
    _ROOT.addHandler(handler)
    _ROOT.setLevel(level)
    return handler


def unconfigure() -> None:
    """Remove any handler installed by :func:`configure` (test teardown)."""
    for handler in list(_ROOT.handlers):
        if getattr(handler, "_repro_obs", False):
            _ROOT.removeHandler(handler)
