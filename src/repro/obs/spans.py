"""Span tracing: start/end/duration records with parent/child links.

A *span* is one timed region of protocol work — a handshake phase, a GSIG
signature, a room's relay loop.  Spans nest: the :func:`span` context
manager keeps the current span in a :class:`contextvars.ContextVar`, so
parent links are correct across threads *and* asyncio tasks (each task
gets a copy of the context at creation, exactly like the metrics scope
stack).  State machines that cannot bracket their work in a ``with``
block (e.g. :class:`repro.net.runner.HandshakeDevice`, whose phases end
inside message callbacks) use :func:`start_span` / :meth:`Span.end` with
explicit parents instead.

Storage and the on/off switch live in :mod:`repro.metrics`: finished
spans land in the current :class:`~repro.metrics.Recorder` and recording
is gated by the same flag as trace events (:func:`metrics.enable_tracing`
/ :func:`metrics.tracing`), so "tracing off" really is zero-allocation —
the hot path does one attribute read and yields.

Anonymity rule (see docs/OBSERVABILITY.md): span names and attributes may
carry room *tokens* (random, unlinkable) and ``hs:<i>`` roster indices —
never member identifiers, payload bytes, or rendezvous room names.
"""

from __future__ import annotations

import contextlib
import threading
import time
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from repro import metrics

#: Innermost live span in the current context (thread or asyncio task).
_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro.obs.span",
                                                    default=None)

_UNSET = object()


class Span:
    """One timed region.  ``ts`` is seconds since the owning recorder's
    epoch; ``dur`` is ``None`` until :meth:`end` runs (only *finished*
    spans are recorded/exported)."""

    __slots__ = ("name", "span_id", "parent_id", "ts", "dur", "attrs",
                 "tid", "_recorder", "_t0")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 recorder, attrs: Dict[str, object]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.tid = threading.current_thread().name
        self._recorder = recorder
        self._t0 = time.perf_counter()
        self.ts = self._t0 - recorder.epoch
        self.dur: Optional[float] = None

    def end(self, **attrs: object) -> "Span":
        """Close the span (idempotent) and record it into the recorder it
        was started under — safe even if another task finishes it."""
        if self.dur is None:
            self.dur = time.perf_counter() - self._t0
            if attrs:
                self.attrs.update(attrs)
            self._recorder.record_span(self)
        return self

    @property
    def ts_end(self) -> Optional[float]:
        return None if self.dur is None else self.ts + self.dur

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "dur": self.dur,
            "tid": self.tid,
            **{f"attr.{k}": v for k, v in sorted(self.attrs.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, ts={self.ts:.6f}, dur={self.dur})")


class _NoopSpan:
    """Recording disabled: a shared do-nothing stand-in so instrumented
    code never branches on the switch itself."""

    __slots__ = ()
    name = "<noop>"
    span_id = None
    parent_id = None
    ts = 0.0
    dur = None
    attrs: Dict[str, object] = {}

    def end(self, **attrs: object) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


def current_span() -> Optional[Span]:
    """The innermost live span of this context, or ``None``."""
    return _CURRENT.get()


def start_span(name: str, parent=_UNSET, **attrs: object):
    """Begin a manual span (caller must :meth:`Span.end` it).

    ``parent`` defaults to the context's current span at *start* time;
    pass another span (e.g. a device's root) or ``None`` for an explicit
    link — the pattern for callback-driven state machines.  Returns
    :data:`NOOP_SPAN` when the current recorder is not tracing."""
    rec = metrics.current_recorder()
    if not rec.tracing:
        return NOOP_SPAN
    if parent is _UNSET:
        parent = _CURRENT.get()
    parent_id = getattr(parent, "span_id", None)
    return Span(name, rec.next_span_id(), parent_id, rec, dict(attrs))


@contextlib.contextmanager
def span(name: str, **attrs: object) -> Iterator[object]:
    """Record the block as a span, parented to the enclosing one.

    Token-based ContextVar handling restores the previous parent exactly,
    under exceptions and re-entrancy, per thread and per asyncio task."""
    rec = metrics.current_recorder()
    if not rec.tracing:
        yield NOOP_SPAN
        return
    parent = _CURRENT.get()
    live = Span(name, rec.next_span_id(),
                getattr(parent, "span_id", None), rec, dict(attrs))
    token = _CURRENT.set(live)
    try:
        yield live
    finally:
        _CURRENT.reset(token)
        live.end()


def finished_spans() -> List[Span]:
    """Finished spans in the current recorder (proxy for exporters)."""
    return [s for s in metrics.spans() if isinstance(s, Span)]
