"""Span tracing: start/end/duration records with parent/child links.

A *span* is one timed region of protocol work — a handshake phase, a GSIG
signature, a room's relay loop.  Spans nest: the :func:`span` context
manager keeps the current span in a :class:`contextvars.ContextVar`, so
parent links are correct across threads *and* asyncio tasks (each task
gets a copy of the context at creation, exactly like the metrics scope
stack).  State machines that cannot bracket their work in a ``with``
block (e.g. :class:`repro.net.runner.HandshakeDevice`, whose phases end
inside message callbacks) use :func:`start_span` / :meth:`Span.end` with
explicit parents instead.

Storage and the on/off switch live in :mod:`repro.metrics`: finished
spans land in the current :class:`~repro.metrics.Recorder` and recording
is gated by the same flag as trace events (:func:`metrics.enable_tracing`
/ :func:`metrics.tracing`), so "tracing off" really is zero-allocation —
the hot path does one attribute read and yields.

Trace context: every finished span carries a ``trace_id`` — a random
16-hex-digit identifier grouping all spans of one logical operation (one
handshake room) *across processes*.  A child inherits its parent's trace
id; a root either adopts a remote context (the compact string a HELLO
frame carries, see :func:`mint_trace_id` / :func:`valid_trace`) or mints
a fresh one.  Ids are minted from :mod:`secrets`, never :mod:`random` —
tracing must not consume seeded RNG streams (the observational-freeness
theorem: books and session keys are byte-identical tracing on vs off).

Anonymity rule (see docs/OBSERVABILITY.md): span names and attributes may
carry room *tokens* (random, unlinkable) and ``hs:<i>`` roster indices —
never member identifiers, payload bytes, or rendezvous room names.
"""

from __future__ import annotations

import contextlib
import re
import secrets
import threading
import time
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from repro import metrics

#: Wire form of a trace context: exactly 16 lowercase hex digits — short
#: enough for a HELLO frame, long enough to never collide in a run, and
#: *below* the redaction leak-scan's bigint threshold (20+ hex chars), so
#: a trace id can never be mistaken for key material.
_TRACE_RE = re.compile(r"^[0-9a-f]{16}$")


def mint_trace_id() -> str:
    """A fresh random trace id (16 hex chars).  Uses :mod:`secrets`, so
    minting never perturbs seeded ``random.Random`` streams."""
    return secrets.token_hex(8)


def valid_trace(text: object) -> Optional[str]:
    """``text`` if it is a well-formed trace context, else ``None`` —
    servers use this to adopt a client-supplied trace id leniently (a
    malformed context is ignored, not a protocol error)."""
    if isinstance(text, str) and _TRACE_RE.match(text):
        return text
    return None

#: Innermost live span in the current context (thread or asyncio task).
_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro.obs.span",
                                                    default=None)

_UNSET = object()


class Span:
    """One timed region.  ``ts`` is seconds since the owning recorder's
    epoch; ``dur`` is ``None`` until :meth:`end` runs (only *finished*
    spans are recorded/exported)."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "ts", "dur",
                 "attrs", "tid", "_recorder", "_t0")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 recorder, attrs: Dict[str, object],
                 trace_id: Optional[str] = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id if trace_id is not None else mint_trace_id()
        self.attrs = attrs
        self.tid = threading.current_thread().name
        self._recorder = recorder
        self._t0 = time.perf_counter()
        self.ts = self._t0 - recorder.epoch
        self.dur: Optional[float] = None

    def end(self, **attrs: object) -> "Span":
        """Close the span (idempotent) and record it into the recorder it
        was started under — safe even if another task finishes it."""
        if self.dur is None:
            self.dur = time.perf_counter() - self._t0
            if attrs:
                self.attrs.update(attrs)
            self._recorder.record_span(self)
        return self

    @property
    def ts_end(self) -> Optional[float]:
        return None if self.dur is None else self.ts + self.dur

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "ts": self.ts,
            "dur": self.dur,
            "tid": self.tid,
            **{f"attr.{k}": v for k, v in sorted(self.attrs.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, ts={self.ts:.6f}, dur={self.dur})")


class _NoopSpan:
    """Recording disabled: a shared do-nothing stand-in so instrumented
    code never branches on the switch itself."""

    __slots__ = ()
    name = "<noop>"
    span_id = None
    parent_id = None
    trace_id = None
    ts = 0.0
    dur = None
    attrs: Dict[str, object] = {}

    def end(self, **attrs: object) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


def current_span() -> Optional[Span]:
    """The innermost live span of this context, or ``None``."""
    return _CURRENT.get()


def _trace_for(parent, trace: Optional[str]) -> Optional[str]:
    """Resolve the trace id a new span joins: an explicit remote context
    wins, then the parent's trace, then ``None`` (mint fresh)."""
    adopted = valid_trace(trace) if trace else None
    if adopted is not None:
        return adopted
    return getattr(parent, "trace_id", None)


def start_span(name: str, parent=_UNSET, trace: Optional[str] = None,
               **attrs: object):
    """Begin a manual span (caller must :meth:`Span.end` it).

    ``parent`` defaults to the context's current span at *start* time;
    pass another span (e.g. a device's root) or ``None`` for an explicit
    link — the pattern for callback-driven state machines.  ``trace`` is
    a remote trace context (the HELLO frame's compact id): a valid one is
    adopted so cross-process spans share one trace; parent links stay
    local (a remote parent's span id would collide with local numbering).
    Returns :data:`NOOP_SPAN` when the current recorder is not tracing."""
    rec = metrics.current_recorder()
    if not rec.tracing:
        return NOOP_SPAN
    if parent is _UNSET:
        parent = _CURRENT.get()
    parent_id = getattr(parent, "span_id", None)
    return Span(name, rec.next_span_id(), parent_id, rec, dict(attrs),
                trace_id=_trace_for(parent, trace))


@contextlib.contextmanager
def span(name: str, trace: Optional[str] = None,
         **attrs: object) -> Iterator[object]:
    """Record the block as a span, parented to the enclosing one.

    Token-based ContextVar handling restores the previous parent exactly,
    under exceptions and re-entrancy, per thread and per asyncio task.
    ``trace`` joins the block to a remote trace context (see
    :func:`start_span`)."""
    rec = metrics.current_recorder()
    if not rec.tracing:
        yield NOOP_SPAN
        return
    parent = _CURRENT.get()
    live = Span(name, rec.next_span_id(),
                getattr(parent, "span_id", None), rec, dict(attrs),
                trace_id=_trace_for(parent, trace))
    token = _CURRENT.set(live)
    try:
        yield live
    finally:
        _CURRENT.reset(token)
        live.end()


def finished_spans() -> List[Span]:
    """Finished spans in the current recorder (proxy for exporters)."""
    return [s for s in metrics.spans() if isinstance(s, Span)]
