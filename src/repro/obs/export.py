"""Span/trace exporters: Chrome ``trace_event`` JSON, JSONL, ASCII Gantt.

The Chrome format is the `trace_event` JSON object form — load the file
in Perfetto (https://ui.perfetto.dev, "Open trace file") or
``chrome://tracing``.  Every span becomes a complete ("ph": "X") event;
lanes (Perfetto "threads") group spans per participant: a span carrying a
``party`` attribute lands in lane ``hs:<party>``, room-lifecycle spans in
lane ``room:<token>``, everything else in its recording thread's lane.

The exporters only see what instrumentation put into span names/attrs —
the anonymity rule (room tokens and roster indices only, never member
identifiers or payload bytes) is enforced at the instrumentation sites
and proven by the redaction tests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro import metrics
from repro.obs.spans import Span, finished_spans

_PID = 1


def _lane(span: Span,
          by_id: Optional[Dict[int, Span]] = None) -> str:
    # Walk up the parent chain so un-attributed child spans (gsig:sign
    # inside a device callback, say) inherit their participant's lane.
    cursor: Optional[Span] = span
    hops = 0
    while cursor is not None and hops < 64:
        if "party" in cursor.attrs:
            return f"hs:{cursor.attrs['party']}"
        if "token" in cursor.attrs:
            return f"room:{cursor.attrs['token']}"
        cursor = (by_id.get(cursor.parent_id)
                  if by_id and cursor.parent_id is not None else None)
        hops += 1
    return span.tid


def chrome_trace(spans: Optional[Sequence[Span]] = None, *,
                 include_events: bool = True) -> Dict[str, object]:
    """Build a ``trace_event`` document from finished spans (default: the
    current recorder's) plus, optionally, the coalesced metrics event
    stream (sends/receives and modexp bursts as zero-config extras)."""
    spans = finished_spans() if spans is None else list(spans)
    by_id = {s.span_id: s for s in spans}
    lanes: Dict[str, int] = {}

    def tid_for(label: str) -> int:
        if label not in lanes:
            lanes[label] = len(lanes) + 1
        return lanes[label]

    trace_events: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: s.ts):
        if span.dur is None:
            continue
        trace_events.append({
            "ph": "X",
            "name": span.name,
            "cat": "span",
            "ts": round(span.ts * 1e6, 3),
            "dur": round(span.dur * 1e6, 3),
            "pid": _PID,
            "tid": tid_for(_lane(span, by_id)),
            "args": {str(k): _arg(v) for k, v in sorted(span.attrs.items())},
        })
    if include_events:
        for event in metrics.events():
            if event.kind in ("scope-begin", "scope-end"):
                continue   # scopes are already represented by spans
            trace_events.append({
                "ph": "X",
                "name": event.kind,
                "cat": "metrics",
                "ts": round(event.ts * 1e6, 3),
                "dur": round(max(0.0, event.ts_end - event.ts) * 1e6, 3),
                "pid": _PID,
                "tid": tid_for(event.scope),
                "args": {str(k): _arg(v) for k, v in sorted(event.data.items())},
            })
    metadata = [{
        "ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
        "args": {"name": "repro"},
    }]
    for label, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        metadata.append({
            "ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def _arg(value: object) -> object:
    """Perfetto args must be JSON scalars; anything richer is flattened to
    a type tag rather than serialized (defence in depth for redaction —
    bytes or structured payloads can never leak through an exporter)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return f"<{type(value).__name__}>"


def export_chrome_trace(path: str,
                        spans: Optional[Sequence[Span]] = None, *,
                        include_events: bool = True) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans, include_events=include_events),
                  handle, indent=None, separators=(",", ":"))
        handle.write("\n")


def spans_jsonl(spans: Optional[Sequence[Span]] = None) -> str:
    """One JSON object per finished span, one per line (log-shippable)."""
    spans = finished_spans() if spans is None else list(spans)
    return "".join(
        json.dumps({k: _arg(v) for k, v in s.as_dict().items()},
                   sort_keys=True) + "\n"
        for s in sorted(spans, key=lambda s: s.ts)
    )


def export_spans_jsonl(path: str,
                       spans: Optional[Sequence[Span]] = None) -> None:
    with open(path, "w") as handle:
        handle.write(spans_jsonl(spans))


# ---------------------------------------------------------------------------
# ASCII Gantt (the ``python -m repro trace`` renderer).
# ---------------------------------------------------------------------------


def render_gantt(spans: Optional[Sequence[Span]] = None, *,
                 width: int = 60, title: str = "handshake timeline") -> str:
    """Render finished spans as an aligned per-lane Gantt table.

    Rows are grouped by lane (participant / room), ordered by start time,
    and indented by parent depth; the bar column shares one time axis."""
    spans = finished_spans() if spans is None else [
        s for s in spans if s.dur is not None]
    if not spans:
        return f"{title}\n(no spans recorded — enable tracing first)"
    by_id = {s.span_id: s for s in spans}

    def depth(span: Span) -> int:
        d, cursor, hops = 0, span.parent_id, 0
        while cursor is not None and hops < 64:
            parent = by_id.get(cursor)
            if parent is None:
                break
            d, cursor, hops = d + 1, parent.parent_id, hops + 1
        return d

    t0 = min(s.ts for s in spans)
    t1 = max(s.ts_end for s in spans)
    extent = max(t1 - t0, 1e-9)
    ordered = sorted(spans,
                     key=lambda s: (_lane(s, by_id), s.ts, -(s.dur or 0)))
    rows = []
    for s in ordered:
        label = "  " * depth(s) + s.name
        left = int((s.ts - t0) / extent * width)
        length = max(1, round((s.dur or 0.0) / extent * width))
        length = min(length, width - left) or 1
        bar = " " * left + "#" * length
        rows.append((_lane(s, by_id), label, f"{(s.ts - t0) * 1e3:9.3f}",
                     f"{(s.dur or 0.0) * 1e3:9.3f}", bar.ljust(width)))
    lane_w = max(len(r[0]) for r in rows + [("lane",) * 5])
    label_w = max(len(r[1]) for r in rows + [("span",) * 5])
    header = (f"{'lane'.ljust(lane_w)}  {'span'.ljust(label_w)}  "
              f"{'start(ms)':>9}  {'dur(ms)':>9}  "
              f"|0 {'-' * max(0, width - 14)} {extent * 1e3:.1f}ms|")
    lines = [title, "=" * len(title), header]
    last_lane = None
    for lane, label, start, dur, bar in rows:
        shown = lane if lane != last_lane else ""
        last_lane = lane
        lines.append(f"{shown.ljust(lane_w)}  {label.ljust(label_w)}  "
                     f"{start}  {dur}  |{bar}|")
    return "\n".join(lines)
