"""Cluster-wide telemetry: merged traces, time series, Prometheus export.

PR 3's spans and STATUS stop at the process boundary; this module is the
cross-process half (docs/OBSERVABILITY.md):

* **merged traces** — :func:`merge_chrome_trace` folds span batches from
  many processes (load-driver clients, the router, every shard worker)
  into one Perfetto-loadable Chrome ``trace_event`` document with one
  lane per process.  Each source carries its recorder's ``epoch`` (a
  ``time.perf_counter()`` instant — CLOCK_MONOTONIC on Linux, so epochs
  from different processes on one machine share a clock) and all spans
  are re-based onto the earliest epoch.  Spans of one room share one
  ``trace_id`` across every lane — the trace-context propagated in the
  HELLO frame (:mod:`repro.obs.spans`).
* **time series** — :class:`TimeSeries` is a ring buffer of aggregated
  STATUS snapshots; :meth:`TimeSeries.rates` derives per-interval deltas
  (rooms/s, sheds/s per reason, retry rate, interval-exact relay
  p50/p99 from bucket-count differences).  :class:`StatusSampler` polls
  a running relay on an interval and can write one Prometheus
  text-exposition file per sample.
* **dashboards** — :func:`render_top` is the ``python -m repro top``
  frame; :func:`render_cluster_gantt` the per-process ASCII timeline of
  ``python -m repro trace --cluster``.

Everything here consumes only what STATUS and span exports already
honour: aggregates, random room tokens, roster indices — never member
identifiers, payload bytes, or key material (the redaction leak-scan
tests cover shipped span batches and Prometheus output too).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from types import SimpleNamespace
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence

from repro import metrics
from repro.obs.export import _arg
from repro.obs.spans import Span, mint_trace_id, valid_trace  # noqa: F401

_PID = 1

#: Per-reason shed counters a time series tracks (superset of the load
#: report's; unseen names simply stay at rate 0).
SHED_COUNTERS = (
    "svc:busy:at-capacity",
    "svc:busy:draining",
    "svc-cluster:busy:draining",
    "svc-cluster:busy:no-live-shards",
)

#: Driver-side retry counters folded into the retry rate when the sampler
#: is given client books (the relay cannot see client retries).
RETRY_COUNTERS = (
    "svc-client:retries",
    "svc-client:busy-retries",
    "svc-client:rejoin-retries",
)

_RELAY_HISTOGRAM = "svc:relay-latency"


# ---------------------------------------------------------------------------
# Span normalization + merged Chrome traces.
# ---------------------------------------------------------------------------


def span_dicts(spans: Iterable[object]) -> List[dict]:
    """Normalise a mixed batch (live :class:`Span` objects or already-
    shipped ``as_dict`` rows) to plain dicts — the only form that crosses
    a process boundary."""
    out: List[dict] = []
    for item in spans:
        if isinstance(item, dict):
            out.append(item)
        elif isinstance(item, Span):
            out.append(item.as_dict())
    return out


def _span_attrs(row: Mapping[str, object]) -> Dict[str, object]:
    return {key[5:]: value for key, value in row.items()
            if key.startswith("attr.")}


def merge_chrome_trace(sources: Sequence[Mapping[str, object]],
                       ) -> Dict[str, object]:
    """Build one Chrome ``trace_event`` document from per-process span
    batches.

    Each source is ``{"label": str, "epoch": float | None,
    "spans": [...]}`` (spans as dicts or live :class:`Span` objects).
    Sources sharing a label share a lane; all timestamps are re-based
    onto the earliest epoch so one room's client, router and shard spans
    line up on a single axis.  ``trace_id`` rides along in every event's
    args — Perfetto's search then selects a whole room across lanes."""
    epochs = [s.get("epoch") for s in sources
              if isinstance(s.get("epoch"), (int, float))]
    t0 = min(epochs) if epochs else 0.0
    lanes: Dict[str, int] = {}

    def tid_for(label: str) -> int:
        if label not in lanes:
            lanes[label] = len(lanes) + 1
        return lanes[label]

    events: List[Dict[str, object]] = []
    for source in sources:
        label = str(source.get("label") or "?")
        epoch = source.get("epoch")
        base = (epoch - t0) if isinstance(epoch, (int, float)) else 0.0
        for row in span_dicts(source.get("spans") or []):
            dur = row.get("dur")
            ts = row.get("ts")
            if dur is None or not isinstance(ts, (int, float)):
                continue
            args = {str(k): _arg(v) for k, v in
                    sorted(_span_attrs(row).items())}
            if row.get("trace_id"):
                args["trace_id"] = _arg(row["trace_id"])
            events.append({
                "ph": "X",
                "name": str(row.get("name", "?")),
                "cat": "span",
                "ts": round((base + ts) * 1e6, 3),
                "dur": round(float(dur) * 1e6, 3),
                "pid": _PID,
                "tid": tid_for(label),
                "args": args,
            })
    events.sort(key=lambda e: e["ts"])
    metadata: List[Dict[str, object]] = [{
        "ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
        "args": {"name": "repro-cluster"},
    }]
    for label, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        metadata.append({
            "ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def export_merged_trace(path: str,
                        sources: Sequence[Mapping[str, object]]) -> None:
    with open(path, "w") as handle:
        json.dump(merge_chrome_trace(sources), handle,
                  indent=None, separators=(",", ":"))
        handle.write("\n")


def load_spans_jsonl(path: str) -> List[object]:
    """Read a span log written by ``export_spans_jsonl`` back into
    Gantt-renderable span stand-ins.  Raises ``ValueError`` on an empty
    file or malformed lines, ``OSError`` when the file is missing — the
    CLI turns both into a one-line nonzero exit."""
    rows: List[object] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {lineno}: not JSON ({exc})") from exc
            if not isinstance(row, dict) or "name" not in row:
                raise ValueError(f"line {lineno}: not a span record")
            rows.append(_pseudo_span(row))
    if not rows:
        raise ValueError("no spans in file")
    return rows


def _pseudo_span(row: Mapping[str, object]) -> object:
    """A dict span as the duck type ``render_gantt``/``_lane`` expect."""
    ts = float(row.get("ts") or 0.0)
    dur = row.get("dur")
    dur = float(dur) if dur is not None else None
    return SimpleNamespace(
        name=str(row.get("name", "?")),
        span_id=row.get("span_id"),
        parent_id=row.get("parent_id"),
        trace_id=row.get("trace_id"),
        ts=ts, dur=dur,
        ts_end=None if dur is None else ts + dur,
        tid=str(row.get("tid", "?")),
        attrs=_span_attrs(row))


def render_cluster_gantt(sources: Sequence[Mapping[str, object]], *,
                         width: int = 60,
                         title: str = "cluster timeline") -> str:
    """Per-process ASCII Gantt over merged sources: one lane per source
    label, one shared time axis (epochs aligned as in
    :func:`merge_chrome_trace`), trace id shown per span so cross-lane
    membership is readable without Perfetto."""
    epochs = [s.get("epoch") for s in sources
              if isinstance(s.get("epoch"), (int, float))]
    t0 = min(epochs) if epochs else 0.0
    rows: List[tuple] = []
    for source in sources:
        label = str(source.get("label") or "?")
        epoch = source.get("epoch")
        base = (epoch - t0) if isinstance(epoch, (int, float)) else 0.0
        for row in span_dicts(source.get("spans") or []):
            if row.get("dur") is None:
                continue
            rows.append((label, str(row.get("name", "?")),
                         base + float(row["ts"]), float(row["dur"]),
                         str(row.get("trace_id") or "-")[:8]))
    if not rows:
        return f"{title}\n(no spans recorded — enable tracing first)"
    start = min(r[2] for r in rows)
    end = max(r[2] + r[3] for r in rows)
    extent = max(end - start, 1e-9)
    rows.sort(key=lambda r: (r[0], r[2]))
    lane_w = max(len("lane"), max(len(r[0]) for r in rows))
    name_w = max(len("span"), max(len(r[1]) for r in rows))
    header = (f"{'lane'.ljust(lane_w)}  {'span'.ljust(name_w)}  trace     "
              f"{'start(ms)':>9}  {'dur(ms)':>9}  "
              f"|0 {'-' * max(0, width - 14)} {extent * 1e3:.1f}ms|")
    lines = [title, "=" * len(title), header]
    last_lane = None
    for lane, name, ts, dur, trace in rows:
        left = int((ts - start) / extent * width)
        length = max(1, round(dur / extent * width))
        length = min(length, width - left) or 1
        bar = (" " * left + "#" * length).ljust(width)
        shown = lane if lane != last_lane else ""
        last_lane = lane
        lines.append(f"{shown.ljust(lane_w)}  {name.ljust(name_w)}  "
                     f"{trace:<8}  {(ts - start) * 1e3:9.3f}  "
                     f"{dur * 1e3:9.3f}  |{bar}|")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Time series over aggregated STATUS.
# ---------------------------------------------------------------------------


def _counter(status: Mapping[str, object], name: str) -> int:
    counters = status.get("counters") or {}
    return int(counters.get(name, 0))


def _completed(status: Mapping[str, object]) -> int:
    outcomes = status.get("outcomes") or {}
    return int(outcomes.get("completed", 0))


def _delta_histogram(older: Optional[Mapping[str, object]],
                     newer: Optional[Mapping[str, object]],
                     ) -> Optional[metrics.Histogram]:
    """The distribution observed *between* two summaries of one cumulative
    histogram: bucket-count differences (exact — summaries carry raw
    buckets).  Interval extrema are unknowable from cumulative summaries,
    so the newer snapshot's extrema bound the interpolation — honest in
    the same way the overflow bucket is: percentiles never leave what was
    actually observed."""
    if not newer or not newer.get("buckets"):
        return None
    bounds = [b["le"] for b in newer["buckets"] if b["le"] is not None]
    if not bounds:
        return None
    hist = metrics.Histogram(_RELAY_HISTOGRAM, bounds)
    old_counts = [b["count"] for b in (older or {}).get("buckets") or []]
    if older and [b["le"] for b in older.get("buckets", [])
                  if b["le"] is not None] != bounds:
        old_counts = []            # bounds changed mid-run: treat as fresh
    for i, bucket in enumerate(newer["buckets"]):
        prev = old_counts[i] if i < len(old_counts) else 0
        hist.counts[i] = max(0, int(bucket["count"]) - int(prev))
    hist.total = sum(hist.counts)
    if hist.total == 0:
        return None
    hist.sum = float(newer.get("sum") or 0.0) - float(
        (older or {}).get("sum") or 0.0)
    hist.clamped = max(0, int(newer.get("clamped") or 0)
                       - int((older or {}).get("clamped") or 0))
    hist.min = newer.get("min")
    hist.max = newer.get("max")
    return hist


class TimeSeries:
    """Ring buffer of (timestamp, STATUS snapshot, optional client
    counters); derives per-interval rates between consecutive samples.

    Works against both a single server's STATUS document and a cluster
    router's merged one — the fields read (``rooms``, ``outcomes``,
    ``counters``, ``histograms``) are common to both shapes."""

    def __init__(self, capacity: int = 720) -> None:
        self.samples: Deque[dict] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self.samples)

    def add(self, status: Mapping[str, object], *,
            at: Optional[float] = None,
            client_counters: Optional[Mapping[str, int]] = None) -> dict:
        sample = {
            "t": time.monotonic() if at is None else at,
            "status": status,
            "client": dict(client_counters) if client_counters else {},
        }
        self.samples.append(sample)
        return sample

    @property
    def latest(self) -> Optional[dict]:
        return self.samples[-1] if self.samples else None

    def rates(self) -> List[dict]:
        """One row per interval between consecutive samples."""
        rows: List[dict] = []
        samples = list(self.samples)
        for older, newer in zip(samples, samples[1:]):
            dt = newer["t"] - older["t"]
            if dt <= 0:
                continue
            old_s, new_s = older["status"], newer["status"]
            sheds = {}
            for name in SHED_COUNTERS:
                delta = _counter(new_s, name) - _counter(old_s, name)
                if delta > 0:
                    sheds[name] = round(delta / dt, 4)
            retries = 0
            for name in RETRY_COUNTERS:
                retries += (int(newer["client"].get(name, 0))
                            - int(older["client"].get(name, 0)))
            relay = _delta_histogram(
                (old_s.get("histograms") or {}).get(_RELAY_HISTOGRAM),
                (new_s.get("histograms") or {}).get(_RELAY_HISTOGRAM))
            rooms = new_s.get("rooms") or {}
            rows.append({
                "t": round(newer["t"] - samples[0]["t"], 3),
                "dt": round(dt, 4),
                "rooms_per_s": round(
                    max(0, _completed(new_s) - _completed(old_s)) / dt, 4),
                "sheds_per_s": sheds,
                "shed_per_s_total": round(sum(sheds.values()), 4),
                "retries_per_s": round(max(0, retries) / dt, 4),
                "relay_p50_s": (round(relay.percentile(0.50), 6)
                                if relay else None),
                "relay_p99_s": (round(relay.percentile(0.99), 6)
                                if relay else None),
                "relay_n": relay.total if relay else 0,
                "active_rooms": int(rooms.get("active", 0)),
                "filling_rooms": int(rooms.get("filling", 0)),
                "connections": int(new_s.get("connections", 0)),
            })
        return rows

    def timeline_doc(self) -> Dict[str, object]:
        """The SLO report's timeline section: per-interval rates plus a
        peak summary."""
        rows = self.rates()
        peak_rooms = max((r["rooms_per_s"] for r in rows), default=0.0)
        peak_sheds = max((r["shed_per_s_total"] for r in rows), default=0.0)
        worst_p99 = max((r["relay_p99_s"] for r in rows
                         if r["relay_p99_s"] is not None), default=None)
        return {
            "samples": len(self.samples),
            "intervals": rows,
            "peak_rooms_per_s": peak_rooms,
            "peak_sheds_per_s": peak_sheds,
            "worst_relay_p99_s": worst_p99,
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------


def _prom_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def prometheus_exposition(status: Mapping[str, object], *,
                          timestamp: Optional[float] = None) -> str:
    """Render one STATUS snapshot (server or merged cluster) in the
    Prometheus text exposition format.

    Metric names (all documented in docs/OBSERVABILITY.md): gauges
    ``repro_rooms{state=...}``, ``repro_open_rooms``,
    ``repro_connections``, ``repro_up``; counters
    ``repro_outcomes_total{outcome=...}`` and
    ``repro_counter_total{name=...}`` (raw ``svc:*`` names as label
    values); histograms ``repro_latency_seconds{histogram=...}`` with
    cumulative ``_bucket`` lines per Prometheus convention.  Only
    aggregates appear — the anonymity rule holds for scrapes too."""
    lines: List[str] = []

    def emit(line: str) -> None:
        lines.append(line)

    emit("# HELP repro_up Relay answered the STATUS query.")
    emit("# TYPE repro_up gauge")
    emit("repro_up 1")
    rooms = status.get("rooms") or {}
    emit("# HELP repro_rooms Rooms by lifecycle state.")
    emit("# TYPE repro_rooms gauge")
    for state in ("filling", "active", "closed", "restoring"):
        emit(f'repro_rooms{{state="{state}"}} {int(rooms.get(state, 0))}')
    open_rooms = status.get("open_rooms")
    if open_rooms is None:
        open_rooms = (status.get("admission") or {}).get("open_rooms", 0)
    emit("# HELP repro_open_rooms Open (filling+active) rooms.")
    emit("# TYPE repro_open_rooms gauge")
    emit(f"repro_open_rooms {int(open_rooms or 0)}")
    emit("# HELP repro_connections Live client connections.")
    emit("# TYPE repro_connections gauge")
    emit(f"repro_connections {int(status.get('connections', 0))}")
    emit("# HELP repro_outcomes_total Closed rooms by outcome.")
    emit("# TYPE repro_outcomes_total counter")
    for outcome, count in sorted((status.get("outcomes") or {}).items()):
        emit(f'repro_outcomes_total{{outcome="{_prom_escape(str(outcome))}"}}'
             f' {int(count)}')
    emit("# HELP repro_counter_total Service counters (raw names).")
    emit("# TYPE repro_counter_total counter")
    for name, value in sorted((status.get("counters") or {}).items()):
        emit(f'repro_counter_total{{name="{_prom_escape(str(name))}"}}'
             f' {int(value)}')
    hists = status.get("histograms") or {}
    if hists:
        emit("# HELP repro_latency_seconds Relay-side distributions.")
        emit("# TYPE repro_latency_seconds histogram")
    for name in sorted(hists):
        summary = hists[name] or {}
        label = _prom_escape(str(name))
        cumulative = 0
        for bucket in summary.get("buckets") or []:
            cumulative += int(bucket.get("count", 0))
            le = ("+Inf" if bucket.get("le") is None
                  else format(bucket["le"], "g"))
            emit(f'repro_latency_seconds_bucket{{histogram="{label}",'
                 f'le="{le}"}} {cumulative}')
        emit(f'repro_latency_seconds_sum{{histogram="{label}"}} '
             f'{float(summary.get("sum") or 0.0):.9g}')
        emit(f'repro_latency_seconds_count{{histogram="{label}"}} '
             f'{int(summary.get("count") or 0)}')
    if timestamp is not None:
        emit(f"# repro_sample_unix_seconds {timestamp:.3f}")
    return "\n".join(lines) + "\n"


def write_prometheus_sample(directory: str, seq: int,
                            status: Mapping[str, object], *,
                            timestamp: Optional[float] = None) -> str:
    """Write one numbered ``.prom`` sample file; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"repro-{seq:06d}.prom")
    with open(path, "w") as handle:
        handle.write(prometheus_exposition(status, timestamp=timestamp))
    return path


# ---------------------------------------------------------------------------
# Sampler + dashboard.
# ---------------------------------------------------------------------------


class StatusSampler:
    """Poll a relay's STATUS on an interval into a :class:`TimeSeries`.

    ``client_recorder`` (optional) is sampled at the same instants for
    the driver-side retry counters.  ``prom_dir`` (optional) gets one
    Prometheus text file per sample.  Run it as a task next to a load
    driver::

        sampler = StatusSampler(host, port, interval=0.5)
        task = asyncio.ensure_future(sampler.run())
        ... drive load ...
        await sampler.stop(task)
    """

    def __init__(self, host: str, port: int, *, interval: float = 1.0,
                 series: Optional[TimeSeries] = None,
                 client_recorder: Optional[metrics.Recorder] = None,
                 prom_dir: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.interval = interval
        self.series = series if series is not None else TimeSeries()
        self.client_recorder = client_recorder
        self.prom_dir = prom_dir
        self.errors = 0
        self._seq = 0

    async def sample_once(self) -> Optional[dict]:
        import asyncio

        from repro.service.client import query_status
        try:
            status = await query_status(self.host, self.port,
                                        timeout=max(2.0, self.interval * 4))
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self.errors += 1
            return None
        client = None
        if self.client_recorder is not None:
            extra = self.client_recorder.total().extra
            client = {name: extra.get(name, 0) for name in RETRY_COUNTERS}
        sample = self.series.add(status, client_counters=client)
        if self.prom_dir is not None:
            self._seq += 1
            write_prometheus_sample(self.prom_dir, self._seq, status,
                                    timestamp=time.time())
        return sample

    async def run(self) -> None:
        """Sample forever (cancel the task, or use :meth:`stop`)."""
        import asyncio
        try:
            while True:
                await self.sample_once()
                await asyncio.sleep(self.interval)
        except asyncio.CancelledError:
            pass

    async def stop(self, task) -> None:
        """Take one final sample (the run's end state), then cancel."""
        import asyncio
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        await self.sample_once()


def render_top(series: TimeSeries, *, rows: int = 12,
               title: str = "repro top") -> str:
    """One ASCII dashboard frame over the sampled series (the
    ``python -m repro top`` renderer)."""
    latest = series.latest
    if latest is None:
        return f"{title}\n(no samples yet)"
    status = latest["status"]
    rooms = status.get("rooms") or {}
    cluster = status.get("cluster") or {}
    head = [title, "=" * len(title)]
    if cluster:
        states = cluster.get("states") or {}
        head.append(
            f"cluster: {cluster.get('shards', 0)} shards "
            f"({', '.join(f'{s}:{ids}' for s, ids in sorted(states.items()))})"
            f"  accepting={cluster.get('accepting')}")
    head.append(
        f"rooms: {rooms.get('filling', 0)} filling / "
        f"{rooms.get('active', 0)} active / {rooms.get('closed', 0)} closed"
        f"   connections={status.get('connections', 0)}"
        f"   samples={len(series)}")
    revocation = status.get("revocation") or {}
    if revocation.get("services"):
        head.append(
            f"revocation: epoch={revocation.get('epoch', 0)} "
            f"pending={revocation.get('pending', 0)} "
            f"sealed={revocation.get('epochs_sealed', 0)} "
            f"revoked={revocation.get('revoked', 0)}")
    rate_rows = series.rates()[-rows:]
    if not rate_rows:
        head.append("(one more sample needed for rates)")
        return "\n".join(head)
    header = (f"{'t(s)':>7}  {'rooms/s':>8}  {'sheds/s':>8}  "
              f"{'retry/s':>8}  {'relay p50':>10}  {'relay p99':>10}  "
              f"{'active':>6}")
    lines = head + [header, "-" * len(header)]
    for row in rate_rows:
        p50 = (f"{row['relay_p50_s'] * 1e3:.2f}ms"
               if row["relay_p50_s"] is not None else "-")
        p99 = (f"{row['relay_p99_s'] * 1e3:.2f}ms"
               if row["relay_p99_s"] is not None else "-")
        lines.append(
            f"{row['t']:7.1f}  {row['rooms_per_s']:8.2f}  "
            f"{row['shed_per_s_total']:8.2f}  {row['retries_per_s']:8.2f}  "
            f"{p50:>10}  {p99:>10}  {row['active_rooms']:6d}")
    sheds = rate_rows[-1]["sheds_per_s"]
    if sheds:
        lines.append("sheds: " + ", ".join(
            f"{name.split(':')[-1]}={rate:g}/s"
            for name, rate in sorted(sheds.items())))
    return "\n".join(lines)


__all__ = [
    "SHED_COUNTERS", "RETRY_COUNTERS",
    "span_dicts", "merge_chrome_trace", "export_merged_trace",
    "load_spans_jsonl", "render_cluster_gantt",
    "TimeSeries", "StatusSampler",
    "prometheus_exposition", "write_prometheus_sample",
    "render_top",
    "mint_trace_id", "valid_trace",
]
