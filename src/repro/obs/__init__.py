"""``repro.obs`` — span tracing, exporters, and structured logging.

The observability subsystem layered on :mod:`repro.metrics` (which owns
storage: counters, histograms, trace events, and finished spans all live
in the current :class:`~repro.metrics.Recorder`):

* :func:`span` / :func:`start_span` — nested timed regions, safe across
  threads and asyncio tasks (:mod:`repro.obs.spans`);
* :func:`chrome_trace` / :func:`spans_jsonl` / :func:`render_gantt` —
  Perfetto-loadable traces, JSONL span logs, and the ASCII timeline the
  ``python -m repro trace`` CLI renders (:mod:`repro.obs.export`);
* :func:`get_logger` / :func:`log_event` / :func:`configure_logging` —
  JSON log lines with mandatory anonymity redaction
  (:mod:`repro.obs.logging`);
* :func:`merge_chrome_trace` / :class:`TimeSeries` /
  :class:`StatusSampler` / :func:`prometheus_exposition` — the
  cross-process half: merged cluster traces from shipped span batches,
  STATUS time series with derived rates, the ``repro top`` dashboard and
  Prometheus text exposition (:mod:`repro.obs.telemetry`).

Recording is gated by the metrics tracing switch: wrap work in
``with metrics.tracing():`` (or call ``metrics.enable_tracing()``) and
every span started under that recorder is kept; otherwise span calls are
no-ops.  See docs/OBSERVABILITY.md for naming conventions and the
"no identity on the wire, no identity in exported artifacts" rule.
"""

from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    export_spans_jsonl,
    render_gantt,
    spans_jsonl,
)
from repro.obs.logging import (
    JsonFormatter,
    RedactionFilter,
    configure as configure_logging,
    get_logger,
    log_event,
    redact_fields,
    unconfigure as unconfigure_logging,
)
from repro.obs.spans import (
    NOOP_SPAN,
    Span,
    current_span,
    finished_spans,
    mint_trace_id,
    span,
    start_span,
    valid_trace,
)
from repro.obs.telemetry import (
    StatusSampler,
    TimeSeries,
    export_merged_trace,
    load_spans_jsonl,
    merge_chrome_trace,
    prometheus_exposition,
    render_cluster_gantt,
    render_top,
    write_prometheus_sample,
)

__all__ = [
    "Span", "NOOP_SPAN", "span", "start_span", "current_span",
    "finished_spans", "mint_trace_id", "valid_trace",
    "chrome_trace", "export_chrome_trace", "spans_jsonl",
    "export_spans_jsonl", "render_gantt",
    "merge_chrome_trace", "export_merged_trace", "load_spans_jsonl",
    "render_cluster_gantt", "TimeSeries", "StatusSampler",
    "prometheus_exposition", "write_prometheus_sample", "render_top",
    "JsonFormatter", "RedactionFilter", "get_logger", "log_event",
    "redact_fields", "configure_logging", "unconfigure_logging",
]
