"""GCD — a flexible framework for multi-party secret handshakes.

A from-scratch reproduction of Tsudik & Xu's GCD framework (PODC 2005 /
full version): a compiler turning a Group signature scheme, a Centralized
group key distribution scheme and a Distributed group key agreement scheme
into a secure multi-party secret handshake scheme with reusable
credentials, traceability and (optionally) self-distinction.

Quickstart::

    import random
    from repro import create_scheme2, run_handshake, scheme2_policy

    rng = random.Random(2005)
    agency = create_scheme2("agency", rng=rng)
    alice = agency.admit_member("alice", rng)
    bob = agency.admit_member("bob", rng)
    carol = agency.admit_member("carol", rng)

    outcomes = run_handshake([alice, bob, carol], scheme2_policy(), rng)
    assert all(o.success for o in outcomes)

Package layout:

* :mod:`repro.core`      — the GCD compiler, handshake engine, schemes 1&2
* :mod:`repro.gsig`      — group signatures (ACJT; Kiayias-Yung variant)
* :mod:`repro.cgkd`      — broadcast encryption (star, LKH, NNL CS/SD)
* :mod:`repro.dgka`      — group key agreement (Burmester-Desmedt, GDH.2)
* :mod:`repro.crypto`    — number theory, AEAD, Cramer-Shoup, sigma
  protocols, the CL dynamic accumulator
* :mod:`repro.pairing`   — Tate pairings and SOK key agreement
* :mod:`repro.baselines` — prior work ([3], [14]) and Section-3 strawmen
* :mod:`repro.security`  — the Appendix-A games, executable
* :mod:`repro.net`       — message-passing simulator with adversary taps
"""

from repro import metrics  # noqa: F401
from repro.core.framework import GcdFramework  # noqa: F401
from repro.core.handshake import (  # noqa: F401
    HandshakeOutcome,
    HandshakePolicy,
    run_handshake,
)
from repro.core.scheme1 import create_scheme1, scheme1_policy  # noqa: F401
from repro.core.scheme2 import create_scheme2, scheme2_policy  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "GcdFramework",
    "metrics",
    "HandshakeOutcome",
    "HandshakePolicy",
    "run_handshake",
    "create_scheme1",
    "create_scheme2",
    "scheme1_policy",
    "scheme2_policy",
    "__version__",
]
