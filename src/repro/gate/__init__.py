"""repro.gate — checkpoint/restore live migration and the HTTP front door.

The paper's rendezvous relay is an *untrusted message board*: it holds a
roster, a FIFO of opaque payloads and phase bookkeeping — never secrets.
This package exploits that property operationally:

* :mod:`repro.gate.checkpoint` — versioned, serializable room snapshots
  (taken at phase boundaries and, exactly, at drain time);
* :mod:`repro.gate.http` — a thin stdlib-asyncio HTTP/JSON gateway in
  front of a cluster router, for load balancers and non-Python clients.

The migration protocol itself lives where the actors live: quiesce and
restore in :mod:`repro.service.server`, orchestration in
:mod:`repro.cluster.router` (docs/PROTOCOL.md, "Live migration").
"""

from repro.gate.checkpoint import CHECKPOINT_VERSION, RoomCheckpoint
from repro.gate.http import GatewayConfig, HttpGateway

__all__ = ["CHECKPOINT_VERSION", "RoomCheckpoint",
           "GatewayConfig", "HttpGateway"]
