"""Thin HTTP/JSON gateway in front of a rendezvous cluster.

Pure stdlib asyncio — no web framework, no new dependencies.  The
gateway is an *operator* front door, not a protocol bridge: handshake
crypto still runs in real rendezvous clients (it spawns them, in
process, against the router's TCP port), so nothing here touches
secrets and the wire books stay identical to a direct run.

Routes (all JSON unless noted):

* ``POST /rooms`` — body ``{"room": str?, "m": int?}``: spawn an
  ``m``-party handshake room against the target cluster (members come
  from the gateway's pre-enrolled pool) and return ``202`` immediately
  with the room name; the handshake completes in the background.
* ``GET /rooms/{name}`` — lifecycle + outcome of a gateway-spawned
  room (``running`` -> ``completed``/``retryable``/``failed``), with
  the full timed-room result once finished.
* ``GET /status`` — the target's merged STATUS snapshot, proxied.
* ``GET /metrics`` — the same snapshot rendered in Prometheus text
  exposition format (``text/plain``), scrape-ready.

Gateway-side books: ``gate:requests`` (plus ``gate:http:{method}`` and
``gate:status:{code}``), ``gate:rooms-spawned``, ``gate:errors``, and
the ``gate:request-latency`` histogram — all visible in the ambient
recorder, separate from the proxied cluster counters.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import metrics
from repro.obs import logging as obslog
from repro.obs import telemetry
from repro.service import query_status
from repro.service.client import ClientConfig

_log = obslog.get_logger("repro.gate.http")

#: Request line + headers must fit in this many bytes.
_MAX_HEAD = 16 * 1024
#: Largest accepted request body (JSON room specs are tiny).
_MAX_BODY = 64 * 1024


@dataclass
class GatewayConfig:
    """One gateway instance: where to listen, which cluster to front."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral (read .port after start)
    #: The rendezvous service the gateway fronts (a ClusterRouter's or a
    #: single RendezvousServer's listening address).
    target_host: str = "127.0.0.1"
    target_port: int = 0
    #: Per-party client deadline for spawned rooms.
    deadline: float = 30.0
    #: Seed stream for spawned rooms' client RNGs (deterministic runs).
    seed: int = 2005
    #: How long one request may take to arrive and be answered.
    request_timeout: float = 30.0


@dataclass
class _SpawnedRoom:
    """Registry entry for one gateway-spawned room."""

    name: str
    m: int
    state: str = "running"         # running | completed | retryable | failed
    result: Optional[dict] = None
    task: Optional[asyncio.Task] = field(default=None, repr=False)


class _HttpError(Exception):
    def __init__(self, code: int, reason: str) -> None:
        super().__init__(reason)
        self.code = code
        self.reason = reason


_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                413: "Payload Too Large", 502: "Bad Gateway",
                500: "Internal Server Error"}


class HttpGateway:
    """The gateway server.  ``members`` is the pre-enrolled party pool a
    ``POST /rooms`` draws from (first ``m`` members, roster order);
    ``policy`` is the handshake policy they run."""

    def __init__(self, config: GatewayConfig,
                 members: Sequence[object],
                 policy: Optional[object] = None) -> None:
        if not members:
            raise ValueError("the gateway needs at least one member")
        self.config = config
        self.members = list(members)
        self.policy = policy
        self.rooms: Dict[str, _SpawnedRoom] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._spawned = 0

    # Lifecycle --------------------------------------------------------------

    async def start(self) -> "HttpGateway":
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        obslog.log_event(_log, "gateway-start", port=self.port,
                         target=self.config.target_port,
                         pool=len(self.members))
        return self

    async def __aenter__(self) -> "HttpGateway":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    @property
    def port(self) -> int:
        assert self._server is not None, "gateway not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "gateway not started"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [room.task for room in self.rooms.values()
                   if room.task is not None and not room.task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # HTTP plumbing ----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        started = loop.time()
        metrics.bump("gate:requests")
        code = 500
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), self.config.request_timeout)
                metrics.bump(f"gate:http:{method}")
                code, content_type, payload = await self._dispatch(
                    method, path, body)
            except _HttpError as exc:
                metrics.bump("gate:errors")
                code, content_type, payload = (
                    exc.code, "application/json",
                    json.dumps({"error": exc.reason}).encode())
            except asyncio.TimeoutError:
                metrics.bump("gate:errors")
                code, content_type, payload = (
                    400, "application/json",
                    json.dumps({"error": "request timed out"}).encode())
            metrics.bump(f"gate:status:{code}")
            await self._respond(writer, code, content_type, payload)
        except (ConnectionError, OSError):
            pass
        finally:
            metrics.observe("gate:request-latency", loop.time() - started)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large")
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            raise _HttpError(400, "truncated request")
        if len(head) > _MAX_HEAD:
            raise _HttpError(413, "headers too large")
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "malformed request line")
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length")
        if length > _MAX_BODY:
            raise _HttpError(413, "body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _respond(self, writer: asyncio.StreamWriter, code: int,
                       content_type: str, payload: bytes) -> None:
        reason = _STATUS_TEXT.get(code, "Unknown")
        head = (f"HTTP/1.1 {code} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # Routes -----------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes,
                        ) -> Tuple[int, str, bytes]:
        if path == "/rooms":
            if method != "POST":
                raise _HttpError(405, "use POST /rooms")
            return await self._post_room(body)
        if path.startswith("/rooms/"):
            if method != "GET":
                raise _HttpError(405, "use GET /rooms/{name}")
            return self._get_room(path[len("/rooms/"):])
        if path == "/status":
            if method != "GET":
                raise _HttpError(405, "use GET /status")
            status = await self._target_status()
            return 200, "application/json", json.dumps(
                status, sort_keys=True).encode()
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET /metrics")
            status = await self._target_status()
            text = telemetry.prometheus_exposition(status)
            return 200, "text/plain; version=0.0.4", text.encode()
        raise _HttpError(404, f"no route for {path}")

    async def _target_status(self) -> dict:
        try:
            return await query_status(self.config.target_host,
                                      self.config.target_port)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise _HttpError(502, f"target unreachable: {exc}")

    async def _post_room(self, body: bytes) -> Tuple[int, str, bytes]:
        try:
            spec = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "body is not JSON")
        if not isinstance(spec, dict):
            raise _HttpError(400, "body must be a JSON object")
        m = spec.get("m", 2)
        if not isinstance(m, int) or not 2 <= m <= len(self.members):
            raise _HttpError(
                400, f"m must be an int in [2, {len(self.members)}]")
        name = spec.get("room") or f"gate-{self._spawned}"
        if not isinstance(name, str) or not name:
            raise _HttpError(400, "room must be a non-empty string")
        if name in self.rooms and self.rooms[name].state == "running":
            raise _HttpError(400, f"room {name!r} is already running")
        self._spawned += 1
        metrics.bump("gate:rooms-spawned")
        entry = _SpawnedRoom(name=name, m=m)
        entry.task = asyncio.ensure_future(self._run_room(entry))
        self.rooms[name] = entry
        return 202, "application/json", json.dumps(
            {"room": name, "m": m, "state": entry.state}).encode()

    async def _run_room(self, entry: _SpawnedRoom) -> None:
        from repro.load.generator import run_timed_room
        base = self.config.seed * 1_000_000 + self._spawned * 1_000
        rngs = [random.Random(base + i) for i in range(entry.m)]
        cfg = ClientConfig(host=self.config.target_host,
                           port=self.config.target_port,
                           room=entry.name, m=entry.m,
                           deadline=self.config.deadline)
        try:
            result = await run_timed_room(
                self.members[:entry.m], cfg, self.policy, rngs)
        except asyncio.CancelledError:
            entry.state = "failed"
            raise
        except Exception as exc:  # surface, never wedge the registry
            metrics.bump("gate:room-errors")
            entry.state = "failed"
            entry.result = {"error": f"{type(exc).__name__}: {exc}"}
            obslog.log_event(_log, "gate-room-error", room=entry.name,
                             error=str(exc))
            return
        entry.state = result.outcome
        entry.result = result.as_dict()
        obslog.log_event(_log, "gate-room-done", room=entry.name,
                         outcome=result.outcome)

    def _get_room(self, name: str) -> Tuple[int, str, bytes]:
        entry = self.rooms.get(name)
        if entry is None:
            raise _HttpError(404, f"unknown room {name!r}")
        doc: Dict[str, object] = {"room": entry.name, "m": entry.m,
                                  "state": entry.state}
        if entry.result is not None:
            doc["result"] = entry.result
        return 200, "application/json", json.dumps(
            doc, sort_keys=True).encode()


def derive_members(scheme: str, seed: int, count: int,
                   ) -> Tuple[List[object], object]:
    """Enroll ``count`` members in a fresh seed-derived group — the same
    derivation the ``repro join``/``repro load`` CLI paths use, so a
    gateway and a direct client run produce comparable books."""
    from repro.core.scheme1 import create_scheme1, scheme1_policy
    from repro.core.scheme2 import create_scheme2, scheme2_policy
    rng = random.Random(seed)
    if scheme == "2":
        framework = create_scheme2("gate-group", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("gate-group", rng=rng)
        policy = scheme1_policy()
    members = [framework.admit_member(f"user-{i}", rng)
               for i in range(count)]
    return members, policy


__all__ = ["GatewayConfig", "HttpGateway", "derive_members"]
