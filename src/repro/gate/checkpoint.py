"""Versioned room checkpoints: the serializable relay state of one room.

The paper treats the rendezvous point as an *untrusted message board* —
it holds no secrets, only a roster, a FIFO of opaque ciphertext payloads,
and phase bookkeeping.  That is why a room is checkpointable at all: the
whole relay state fits in a small, versioned snapshot, and a peer shard
that restores the snapshot and resumes the FIFO is indistinguishable (to
the devices driving the handshake) from the shard that died.  Member
devices keep their crypto state client-side, so a migration re-runs *no*
Phase I–III work — the restore is pure relay bookkeeping.

Checkpoints are taken at phase boundaries (room fill, and whenever the
relayed payload kind advances — DGKA rounds → tags → phase-3 blobs) and,
exactly, at drain time after the router has quiesced every member
connection (docs/PROTOCOL.md, "Live migration").  They travel over the
shard supervision pipe and are restored via
:meth:`repro.service.server.RendezvousServer.restore_room`.

Versioning rules
----------------

* ``version`` is a single integer, bumped whenever a field is added,
  removed, or changes meaning.  A restoring server accepts only versions
  it knows (currently: exactly :data:`CHECKPOINT_VERSION`) and rejects
  anything else with :class:`~repro.errors.ProtocolError` — restoring a
  half-understood snapshot would corrupt a live handshake, so refusal is
  the only safe behaviour across mixed-version clusters.
* Fields never change meaning silently within a version; unknown keys in
  a payload are ignored (forward-tolerant readers, strict writers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError

#: Current checkpoint schema version.  Bump on any field change.
CHECKPOINT_VERSION = 1

#: Room lifecycle states a checkpoint may carry.
FILLING, ACTIVE = "filling", "active"


@dataclass
class RoomCheckpoint:
    """Everything a peer shard needs to resume one room's relay.

    The snapshot deliberately contains only what the *relay* knows: the
    rendezvous name (placement key), the unlinkable session token, the
    roster size and occupancy, DONE bookkeeping, the pending FIFO, the
    remaining fill/handshake deadline budget, phase progress, and the
    room-scope counters accumulated so far.  No member identities, no
    key material — an untrusted relay has none to ship.
    """

    name: str                 # rendezvous name (placement key)
    token: str                # unlinkable session token (kept across the hop)
    m: int                    # roster size
    state: str                # FILLING | ACTIVE
    members: int              # occupied roster slots (== m when ACTIVE)
    trace: str = ""           # trace context; "" = none
    done: Tuple[int, ...] = ()            # indices that sent DONE
    #: Queued-but-not-fanned-out FIFO entries, in order: (sender, payload).
    pending: Tuple[Tuple[int, object], ...] = ()
    #: Seconds left on the fill timer (FILLING rooms), else None.
    fill_remaining_s: Optional[float] = None
    #: Seconds left on the handshake deadline (ACTIVE rooms), else None.
    handshake_remaining_s: Optional[float] = None
    #: Messages fanned out so far and the kind of the last one — the
    #: phase-progress marker ("dgka", "tag", "phase3", ...).
    relayed: int = 0
    phase_kind: Optional[str] = None
    #: Room-scope counter book (replayed into the restoring recorder so
    #: cluster-aggregate books survive the donor shard's death).
    counters: Dict[str, int] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def to_payload(self) -> Dict[str, object]:
        """Plain-dict form for the supervision pipe (strict writer)."""
        return {
            "version": self.version,
            "name": self.name,
            "token": self.token,
            "m": self.m,
            "state": self.state,
            "members": self.members,
            "trace": self.trace,
            "done": list(self.done),
            "pending": [list(entry) for entry in self.pending],
            "fill_remaining_s": self.fill_remaining_s,
            "handshake_remaining_s": self.handshake_remaining_s,
            "relayed": self.relayed,
            "phase_kind": self.phase_kind,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "RoomCheckpoint":
        """Parse and validate a pipe payload (forward-tolerant reader:
        unknown keys are ignored; unknown *versions* are refused)."""
        if not isinstance(payload, dict):
            raise ProtocolError("room checkpoint payload is not a mapping")
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ProtocolError(
                f"unsupported room checkpoint version {version!r} "
                f"(this node speaks {CHECKPOINT_VERSION})")
        try:
            name = payload["name"]
            token = payload["token"]
            m = payload["m"]
            state = payload["state"]
            members = payload["members"]
        except KeyError as exc:
            raise ProtocolError(
                f"room checkpoint missing field {exc.args[0]!r}") from exc
        if not isinstance(name, str) or not isinstance(token, str):
            raise ProtocolError("room checkpoint name/token must be strings")
        if not isinstance(m, int) or not isinstance(members, int):
            raise ProtocolError("room checkpoint m/members must be ints")
        if state not in (FILLING, ACTIVE):
            raise ProtocolError(
                f"room checkpoint state {state!r} is not filling/active")
        if not 0 <= members <= m:
            raise ProtocolError(
                f"room checkpoint occupancy {members} outside [0, {m}]")
        if state == ACTIVE and members != m:
            raise ProtocolError("active room checkpoint must be full")
        done = tuple(int(i) for i in payload.get("done") or ())
        if any(not 0 <= i < m for i in done):
            raise ProtocolError("room checkpoint DONE index out of roster")
        pending: List[Tuple[int, object]] = []
        for entry in payload.get("pending") or ():
            sender, item = entry
            sender = int(sender)
            if not 0 <= sender < m:
                raise ProtocolError(
                    "room checkpoint pending sender out of roster")
            pending.append((sender, item))
        counters = {str(k): int(v)
                    for k, v in (payload.get("counters") or {}).items()}
        return cls(
            name=name, token=token, m=m, state=state, members=members,
            trace=str(payload.get("trace") or ""),
            done=done, pending=tuple(pending),
            fill_remaining_s=payload.get("fill_remaining_s"),
            handshake_remaining_s=payload.get("handshake_remaining_s"),
            relayed=int(payload.get("relayed") or 0),
            phase_kind=payload.get("phase_kind"),
            counters=counters)


__all__ = ["CHECKPOINT_VERSION", "RoomCheckpoint", "FILLING", "ACTIVE"]
