"""Network-driven handshake execution.

:func:`repro.core.handshake.run_handshake` drives the three-phase protocol
with a synchronous local loop — convenient for tests and counting.  This
module runs the *same* protocol as genuinely asynchronous message-passing
over the :class:`repro.net.simulator.Network`: each participant is a
:class:`HandshakeDevice` that buffers broadcasts, advances through the DGKA
rounds as messages arrive (in any interleaving the FIFO network produces),
and publishes its Phase II tag and Phase III pair when — and only when —
its local state permits.  An eavesdropper tap or MITM interceptor on the
network sees exactly the paper's wire format.

The device driver supports all-speak DGKA protocols (Burmester-Desmedt,
the default for both instantiations); chain protocols like GDH.2 have
per-round single speakers and use the synchronous engine instead —
constructing a device with a chain-style ``dgka_factory`` raises
:class:`~repro.errors.ProtocolError` up front rather than deadlocking
mid-session.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import metrics
from repro.obs import spans as obs
from repro.core import wire
from repro.core.handshake import (
    HandshakeOutcome,
    HandshakePolicy,
    _nominal_signature_length,
    xor_keys,
)
from repro.core.transcript import HandshakeEntry, HandshakeTranscript, signed_message
from repro.crypto import hashing, mac, symmetric
from repro.crypto.cramer_shoup import CramerShoup
from repro.errors import DecryptionError, ProtocolError
from repro.net.simulator import Message, Network, Party


@dataclass(frozen=True)
class SessionPlan:
    """Public session parameters every device agrees on up front: the
    ordered roster of device names (index = position) and a session tag
    used as the broadcast channel."""

    session_id: str
    roster: Sequence[str]

    @property
    def m(self) -> int:
        return len(self.roster)

    def index_of(self, name: str) -> int:
        return self.roster.index(name)

    @property
    def channel(self) -> str:
        return f"handshake/{self.session_id}"


class HandshakeDevice(Party):
    """One participant's device: state machine over network broadcasts."""

    def __init__(self, name: str, member, plan: SessionPlan,
                 policy: Optional[HandshakePolicy] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(name)
        self.member = member
        self.plan = plan
        self.policy = policy or HandshakePolicy()
        self.rng = rng if rng is not None else random.Random()
        self.index = plan.index_of(name)
        self.dgka = self.policy.dgka_factory(self.index, plan.m, self.rng)
        if not getattr(self.dgka, "all_speak", True):
            raise ProtocolError(
                f"{type(self.dgka).__name__} is a chain-style DGKA with "
                "per-round single speakers; the broadcast network driver "
                "requires an all-speak protocol (e.g. Burmester-Desmedt) — "
                "run chain protocols through the synchronous engine "
                "(repro.core.handshake.run_handshake) instead")
        self._round_buffers: Dict[int, Dict[int, object]] = {}
        self._current_round = 0
        self._k_prime: Optional[bytes] = None
        self._tags: Dict[int, bytes] = {}
        self._valid_tags: set = set()
        self._entries: Dict[int, HandshakeEntry] = {}
        self._published_phase3 = False
        self.outcome: Optional[HandshakeOutcome] = None
        # Span bookkeeping: phase boundaries end inside message callbacks,
        # so the device holds manual spans with explicit parents instead
        # of relying on the (task-local) context span.
        self._root_span = obs.NOOP_SPAN
        self._phase_span = obs.NOOP_SPAN

    @property
    def metrics_scope(self) -> str:
        """Same scope naming as the synchronous engine, so per-party counts
        from both drivers are directly comparable (tested for parity)."""
        return f"hs:{self.index}"

    # Protocol driving ---------------------------------------------------------

    def start(self) -> None:
        """Kick off Phase I by broadcasting the first DGKA round."""
        self._root_span = obs.start_span(f"hs:{self.index}",
                                         party=self.index)
        self._phase_span = obs.start_span("phase:I", parent=self._root_span,
                                          party=self.index)
        self._emit_round(0)

    def _emit_round(self, round_no: int) -> None:
        payload = self.dgka.emit(round_no)
        if payload is None:
            raise ProtocolError("network driver requires all-speak rounds")
        self._buffer(round_no, self.index, payload)
        self.broadcast(("dgka", self.plan.session_id, round_no,
                        self.index, payload), channel=self.plan.channel)
        self._maybe_advance()

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, tuple) or len(payload) < 2:
            return
        kind, session_id = payload[0], payload[1]
        if session_id != self.plan.session_id:
            return
        if kind == "dgka":
            _, _, round_no, sender, body = payload
            self._buffer(round_no, sender, body)
            self._maybe_advance()
        elif kind == "tag":
            _, _, sender, tag = payload
            self._tags.setdefault(sender, tag)
            self._maybe_finish_phase2()
        elif kind == "phase3":
            _, _, sender, theta, delta = payload
            self._entries.setdefault(
                sender, HandshakeEntry(index=sender, theta=theta,
                                       delta=tuple(delta))
            )
            self._maybe_conclude()

    # Phase I ---------------------------------------------------------------------

    def _buffer(self, round_no: int, sender: int, body: object) -> None:
        self._round_buffers.setdefault(round_no, {})[sender] = body

    def _maybe_advance(self) -> None:
        while not self.dgka.acc:
            ready = self._round_buffers.get(self._current_round, {})
            if len(ready) < self.plan.m:
                return
            self.dgka.absorb(self._current_round, dict(ready))
            self._current_round += 1
            if self.dgka.acc:
                self._finish_phase1()
                return
            if self._current_round < self.dgka.rounds:
                # Emit our contribution to the next round (if we have not
                # already, e.g. triggered by buffered future messages).
                if self.index not in self._round_buffers.get(
                    self._current_round, {}
                ):
                    self._emit_round(self._current_round)

    def _finish_phase1(self) -> None:
        self._phase_span.end()
        self._phase_span = obs.start_span("phase:II", parent=self._root_span,
                                          party=self.index)
        try:
            group_key = self.member.group_key
        except Exception:
            group_key = self.rng.getrandbits(256).to_bytes(32, "big")
        self._k_prime = xor_keys(self.dgka.session_key, group_key)
        tag = mac.mac(self._k_prime, self.dgka.unique_string(self.index),
                      self.index)
        self._tags[self.index] = tag
        self.broadcast(("tag", self.plan.session_id, self.index, tag),
                       channel=self.plan.channel)
        self._maybe_finish_phase2()

    # Phase II ----------------------------------------------------------------------

    def _maybe_finish_phase2(self) -> None:
        if self._published_phase3 or self._k_prime is None:
            return
        if len(self._tags) < self.plan.m:
            return
        for sender, tag in self._tags.items():
            if mac.verify(self._k_prime, tag,
                          self.dgka.unique_string(sender), sender):
                self._valid_tags.add(sender)
        self._publish_phase3()

    # Phase III --------------------------------------------------------------------

    def _publish_phase3(self) -> None:
        self._published_phase3 = True
        self._phase_span.end()
        if not self.policy.traceable:
            self._phase_span = obs.NOOP_SPAN
            self._conclude_without_phase3()
            return
        self._phase_span = obs.start_span("phase:III",
                                          parent=self._root_span,
                                          party=self.index)
        all_indices = set(range(self.plan.m))
        case1 = self._valid_tags == all_indices or (
            self.policy.partial_success and len(self._valid_tags) > 1
        )
        if case1:
            try:
                theta, delta = self._make_real_pair()
            except Exception:
                theta, delta = self._make_decoy_pair()
        else:
            theta, delta = self._make_decoy_pair()
        entry = HandshakeEntry(index=self.index, theta=theta, delta=delta)
        self._entries[self.index] = entry
        self.broadcast(("phase3", self.plan.session_id, self.index,
                        theta, delta), channel=self.plan.channel)
        self._maybe_conclude()

    def _make_real_pair(self):
        sid = self.dgka.sid
        pk_t = self.member.info.tracing_public_key
        delta = CramerShoup.encrypt_bytes(pk_t, self._k_prime, self.rng).as_tuple()
        shield = (self.member.distinction_shield(sid)
                  if self.policy.self_distinction else None)
        blob = self.member.gsig_sign(signed_message(sid, delta), self.rng,
                                     shield=shield)
        theta = symmetric.encrypt(self._k_prime, blob, self.rng)
        return theta, delta

    def _make_decoy_pair(self):
        try:
            length = _nominal_signature_length(self.member)
            pk_t = self.member.info.tracing_public_key
            delta = CramerShoup.random_ciphertext(pk_t, self.rng).as_tuple()
        except Exception:
            length = 512
            delta = tuple(self.rng.getrandbits(512) for _ in range(4))
        return symmetric.random_ciphertext(length, self.rng), delta

    def _maybe_conclude(self) -> None:
        if self.outcome is not None or not self._published_phase3:
            return
        if len(self._entries) < self.plan.m:
            return
        sid = self.dgka.sid
        entries = tuple(self._entries[i] for i in range(self.plan.m))
        outcome = HandshakeOutcome(index=self.index, success=False,
                                   k_prime=self._k_prime)
        outcome.transcript = HandshakeTranscript(sid=sid, entries=entries)
        shield = (self.member.distinction_shield(sid)
                  if self.policy.self_distinction else None)
        confirmed = set()
        tags_by_peer: Dict[int, int] = {}
        for entry in entries:
            if entry.index == self.index or entry.index not in self._valid_tags:
                continue
            try:
                blob = symmetric.decrypt(self._k_prime, entry.theta)
            except DecryptionError:
                continue
            if not self.member.gsig_verify(
                signed_message(sid, entry.delta), blob, expected_shield=shield
            ):
                continue
            if self.policy.self_distinction:
                tags_by_peer[entry.index] = wire.signature_from_bytes(blob).t6
            confirmed.add(entry.index)
        outcome.confirmed_peers = confirmed
        if self.policy.self_distinction:
            own = self.member.credential.distinction_tag(shield)
            seen = {self.index: own}
            duplicates: set = set()
            for peer, tag in tags_by_peer.items():
                for other, other_tag in seen.items():
                    if tag == other_tag:
                        duplicates.update({peer, other})
                seen[peer] = tag
            outcome.distinct = not duplicates
            outcome.duplicate_indices = duplicates
        full = confirmed == set(range(self.plan.m)) - {self.index}
        outcome.success = full and (outcome.distinct is not False)
        if outcome.success or (self.policy.partial_success and confirmed):
            outcome.session_key = hashing.kdf(
                self._k_prime + sid, "gcd-secure-channel"
            )
        self.outcome = outcome
        self._phase_span.end()
        self._root_span.end(success=outcome.success)

    def _conclude_without_phase3(self) -> None:
        all_peers = set(range(self.plan.m)) - {self.index}
        confirmed = set(self._valid_tags) - {self.index}
        outcome = HandshakeOutcome(
            index=self.index,
            success=confirmed == all_peers,
            confirmed_peers=confirmed,
        )
        if outcome.success:
            outcome.session_key = hashing.kdf(
                self._k_prime + self.dgka.sid, "gcd-secure-channel"
            )
        self.outcome = outcome
        self._root_span.end(success=outcome.success)


def run_handshake_over_network(
    members: Sequence[object],
    policy: Optional[HandshakePolicy] = None,
    rng: Optional[random.Random] = None,
    network: Optional[Network] = None,
    session_id: str = "session",
) -> List[HandshakeOutcome]:
    """Execute SHS.Handshake as message-passing over a (possibly
    adversary-instrumented) network.  Returns per-participant outcomes in
    roster order; a participant that could not conclude (e.g. messages
    dropped by a MITM) yields a failed outcome."""
    rng = rng if rng is not None else random.Random()
    network = network or Network()
    plan = SessionPlan(session_id=session_id,
                       roster=[f"device-{i}" for i in range(len(members))])
    started = time.perf_counter()
    with obs.span("handshake", m=len(members), transport="simulator"):
        devices = [
            network.register(HandshakeDevice(plan.roster[i], member, plan,
                                             policy, rng))
            for i, member in enumerate(members)
        ]
        for device in devices:
            # start() performs the device's round-0 DGKA work; without the
            # scope that cost would land only on ``total``, breaking
            # per-party parity with the synchronous engine.
            with metrics.scope(device.metrics_scope):
                device.start()
        network.run()
    metrics.observe("hs:latency", time.perf_counter() - started)
    return [
        device.outcome
        or HandshakeOutcome(index=device.index, success=False)
        for device in devices
    ]
