"""Network substrate: a deterministic message-passing simulator with the
channel abstractions the paper assumes (Section 2): broadcast with receiver
anonymity, anonymous sender channels, an authenticated bulletin board for
GA state updates — plus adversary taps (eavesdropping, MITM, corruption)
used by the security games.
"""

from repro.net.simulator import Message, Network, Party, BROADCAST  # noqa: F401
from repro.net.channels import BulletinBoard  # noqa: F401
