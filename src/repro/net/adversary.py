"""Adversaries for the network simulator.

These implement the capabilities the Appendix-A experiments grant the
adversary: passive global eavesdropping (:class:`Eavesdropper`), active
message rewriting / dropping / injection (:class:`ManInTheMiddle`), and a
corruption registry that records which parties' internal state the
adversary has obtained (:class:`CorruptionLog`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.net.simulator import Message, Network


class Eavesdropper:
    """Passive global observer: records every message put on the wire."""

    def __init__(self, network: Network) -> None:
        self.log: List[Message] = []
        network.add_tap(self.log.append)

    def messages_on(self, channel: str) -> List[Message]:
        return [m for m in self.log if m.channel == channel]

    def traffic_volume(self) -> int:
        """Total observed bytes — the traffic-analysis metric."""
        return sum(m.size for m in self.log)

    def senders(self) -> Set[str]:
        return {m.sender for m in self.log if m.sender is not None}


RewriteRule = Callable[[Message], Optional[Message]]


class ManInTheMiddle:
    """Active adversary: per-message rewrite rules, applied in order.

    A rule returns a replacement message, ``None`` to drop, or the input
    unchanged.  :attr:`intercepted` records everything seen.
    """

    def __init__(self, network: Network) -> None:
        self._rules: List[RewriteRule] = []
        self.intercepted: List[Message] = []
        self._network = network
        network.add_interceptor(self._apply)

    def add_rule(self, rule: RewriteRule) -> None:
        self._rules.append(rule)

    def inject(self, message: Message) -> None:
        self._network.inject(message)

    def _apply(self, message: Message) -> Optional[Message]:
        self.intercepted.append(message)
        current: Optional[Message] = message
        for rule in self._rules:
            if current is None:
                return None
            current = rule(current)
        return current


@dataclass
class CorruptionLog:
    """Bookkeeping for O_Corrupt queries: who was corrupted, and when.

    The security games consult this log to evaluate their freshness
    conditions (e.g. "there is no O_Corrupt(GA) query")."""

    corrupted_users: Dict[str, int] = field(default_factory=dict)
    corrupted_ga_admit: bool = False
    corrupted_ga_trace: bool = False
    clock: int = 0

    def tick(self) -> int:
        self.clock += 1
        return self.clock

    def corrupt_user(self, user_id: str) -> int:
        when = self.tick()
        self.corrupted_users.setdefault(user_id, when)
        return when

    def corrupt_ga(self, capability: str) -> None:
        if capability == "admit":
            self.corrupted_ga_admit = True
        elif capability == "trace":
            self.corrupted_ga_trace = True
        else:
            raise ValueError(f"unknown GA capability {capability!r}")
        self.tick()

    def is_corrupt(self, user_id: str) -> bool:
        return user_id in self.corrupted_users
