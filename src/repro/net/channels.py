"""Channel abstractions layered on the simulator.

* :class:`BulletinBoard` — the authenticated anonymous channel the paper
  uses for GA state updates ("e.g., posted on a public bulletin board",
  GCD.AdmitMember).  Posts are append-only and signed by the poster with a
  Schnorr signature; readers poll anonymously, so an observer learns
  neither the reader set nor (for encrypted posts) the content.
* :class:`AuthenticatedChannel` — a thin helper wrapping sign-then-send /
  verify-on-receive for point-to-point messages (used in Join protocols,
  which the paper runs over private authenticated channels).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.crypto import hashing
from repro.crypto.params import DHParams, dh_group
from repro.crypto.sigma import SchnorrSignature
from repro.errors import VerificationError


@dataclass(frozen=True)
class Post:
    """One bulletin-board entry."""

    index: int
    topic: str
    payload: bytes
    signature: SchnorrSignature
    poster_public: int


class BulletinBoard:
    """Append-only authenticated board with anonymous read access."""

    def __init__(self, group: Optional[DHParams] = None) -> None:
        self.group = group or dh_group(256)
        self._posts: List[Post] = []

    def make_poster_key(self, rng: Optional[random.Random] = None) -> Tuple[int, int]:
        """(public, secret) Schnorr key for an authorized poster."""
        return SchnorrSignature.keygen(self.group, rng)

    def post(self, topic: str, payload: bytes, poster_public: int,
             poster_secret: int, rng: Optional[random.Random] = None) -> Post:
        index = len(self._posts)
        body = hashing.encode(index, topic, payload)
        signature = SchnorrSignature.sign(self.group, poster_secret, body, rng)
        entry = Post(index, topic, payload, signature, poster_public)
        self._posts.append(entry)
        return entry

    def read_since(self, index: int, topic: Optional[str] = None) -> List[Post]:
        """Anonymous read: all verified posts with index >= ``index``.

        The returned list is freshly built and every entry is a defensive
        copy of an immutable record (:class:`Post` and its Schnorr
        signature are frozen dataclasses) — callers can neither mutate
        board state through the result nor observe later posts through a
        stale handle."""
        out = []
        for post in self._posts[max(index, 0):]:
            body = hashing.encode(post.index, post.topic, post.payload)
            if not post.signature.verify(self.group, post.poster_public, body):
                raise VerificationError(f"bulletin post {post.index} forged")
            if topic is None or post.topic == topic:
                out.append(replace(post))
        return out

    def poll(self, cursor: int = 0,
             topic: Optional[str] = None) -> Tuple[List[Post], int]:
        """Paginated anonymous read: ``(new_posts, next_cursor)``.

        ``cursor`` is the index to resume from (0 for a first read); the
        returned cursor covers everything currently on the board, so
        repeated ``posts, cursor = board.poll(cursor)`` loops see each
        post exactly once.  Same defensive-copy guarantees as
        :meth:`read_since`."""
        return self.read_since(cursor, topic), len(self._posts)

    def __len__(self) -> int:
        return len(self._posts)


class AuthenticatedChannel:
    """Sign-then-send helper for point-to-point authenticated messages."""

    def __init__(self, group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.group = group or dh_group(256)
        self._rng = rng

    def keygen(self) -> Tuple[int, int]:
        return SchnorrSignature.keygen(self.group, self._rng)

    def seal(self, secret: int, payload: bytes) -> Tuple[bytes, SchnorrSignature]:
        return payload, SchnorrSignature.sign(self.group, secret, payload, self._rng)

    def open(self, public: int, sealed: Tuple[bytes, SchnorrSignature]) -> bytes:
        payload, signature = sealed
        if not signature.verify(self.group, public, payload):
            raise VerificationError("authenticated channel: bad signature")
        return payload
