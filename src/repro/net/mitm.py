"""Network-level man-in-the-middle for the handshake runner.

:class:`NetworkBdSplitter` mounts the textbook Burmester-Desmedt split
attack (see :class:`repro.security.adversaries.BdMitmSplitter`) on the
message-passing fabric: it intercepts every DGKA broadcast, suppresses it,
and re-injects *per-receiver unicasts* whose payloads are tampered
according to the receiver's side of the cut — exactly what a radio
adversary who can jam and replay would do.  Phase II/III traffic passes
through untouched (the attack's failure there is the point of E11)."""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from repro.crypto.params import DHParams, dh_group
from repro.net.simulator import Message, Network
from repro.security.adversaries import BdMitmSplitter


class NetworkBdSplitter:
    """Install with ``NetworkBdSplitter(network, m, cut)`` before devices
    start; it rewrites round-0/1 DGKA broadcasts on the given session."""

    def __init__(self, network: Network, m: int, cut: int,
                 session_id: str = "session",
                 group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.network = network
        self.session_id = session_id
        self.m = m
        self.cut = cut
        self.splitter = BdMitmSplitter(group or dh_group(256), m, cut, rng)
        self.intercepted = 0
        network.add_interceptor(self._intercept)

    def _intercept(self, message: Message) -> Optional[Message]:
        payload = message.payload
        if (
            not isinstance(payload, tuple)
            or len(payload) != 5
            or payload[0] != "dgka"
            or payload[1] != self.session_id
        ):
            return message
        _, _, round_no, sender, body = payload
        self.intercepted += 1
        # Suppress the broadcast; deliver a per-receiver (possibly
        # tampered) unicast to every other device instead.
        for receiver in range(self.m):
            if receiver == sender:
                continue
            tampered = self.splitter(round_no, sender, receiver, body)
            self.network.inject(replace(
                message,
                recipient=f"device-{receiver}",
                payload=("dgka", self.session_id, round_no, sender, tampered),
            ))
        return None
