"""Deterministic message-passing simulator.

Models the paper's communication assumptions: an asynchronous network with
guaranteed, in-order delivery (a FIFO event queue), broadcast channels with
built-in receiver anonymity (everyone receives; nobody learns who read),
and optional sender anonymity (the delivered message carries no sender
field on ``anonymous`` channels).

The adversary interface matches the threat model of Appendix A: *taps*
observe every message (passive eavesdropping — they see ciphertext
payloads and traffic patterns), and *interceptors* may rewrite, drop or
inject messages (active control of the network).  Per-party operation
counting integrates with :mod:`repro.metrics` so benchmarks can attribute
modular exponentiations and message counts to individual participants.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional

from repro import metrics
from repro.crypto import hashing
from repro.errors import ProtocolError

BROADCAST = "*"


@dataclass(frozen=True)
class Message:
    """One network message.

    ``sender`` is ``None`` when delivered on an anonymous channel.
    ``channel`` tags the logical medium ("p2p", "broadcast", "anonymous",
    "bulletin", ...).  Payloads must be canonically encodable (ints, bytes,
    strings, tuples, dicts of those) so eavesdroppers can measure size.
    """

    msg_id: int
    sender: Optional[str]
    recipient: str
    channel: str
    payload: object
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Approximate wire size of the payload in bytes."""
        return len(hashing.encode_element(_encodable(self.payload)))


def _encodable(payload):
    if isinstance(payload, dict):
        return tuple(sorted((k, _encodable(v)) for k, v in payload.items()))
    if isinstance(payload, (tuple, list)):
        return tuple(_encodable(v) for v in payload)
    if payload is None or isinstance(payload, (int, bytes, str, bool)):
        return payload
    # Dataclasses and other objects: fall back to repr for sizing only.
    return repr(payload)


class Party:
    """Base class for simulated participants.

    Subclasses override :meth:`on_message`; they send through the network
    handle passed at registration.  ``metrics_scope`` names the scope all
    of the party's deliveries (and whatever work they trigger) are charged
    to; subclasses may override it to align with other engines' scope
    naming (e.g. :class:`repro.net.runner.HandshakeDevice` uses ``hs:<i>``
    to match the synchronous driver).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: Optional["Network"] = None

    @property
    def metrics_scope(self) -> str:
        return f"party:{self.name}"

    def attached(self, network: "Network") -> None:
        """Hook called when the party is registered."""
        self.network = network

    def on_message(self, message: Message) -> None:  # pragma: no cover - base
        """Handle a delivered message (default: ignore)."""

    def send(self, recipient: str, payload: object, channel: str = "p2p") -> None:
        self._net().send(self.name, recipient, payload, channel)

    def broadcast(self, payload: object, channel: str = "broadcast") -> None:
        self._net().send(self.name, BROADCAST, payload, channel)

    def send_anonymous(self, recipient: str, payload: object) -> None:
        self._net().send(self.name, recipient, payload, "anonymous")

    def _net(self) -> "Network":
        if self.network is None:
            raise ProtocolError(f"party {self.name!r} is not attached to a network")
        return self.network


Interceptor = Callable[[Message], Optional[Message]]
Tap = Callable[[Message], None]


class Network:
    """The event loop.

    Default: FIFO queue with guaranteed in-order delivery.  Passing a
    ``reorder_rng`` switches to the *asynchronous* model the paper's
    flexibility claim targets ("if the building blocks operate in the
    asynchronous communication model (with guaranteed delivery), so does
    the resulting secret handshake scheme"): each step delivers a
    uniformly random queued message, so protocols must tolerate arbitrary
    interleavings — delivery is still guaranteed, order is not.
    """

    #: Channels whose deliveries hide the sender identity.
    ANONYMOUS_CHANNELS = frozenset({"anonymous", "bulletin"})

    def __init__(self, reorder_rng=None) -> None:
        self._parties: Dict[str, Party] = {}
        self._queue: deque = deque()
        self._taps: List[Tap] = []
        self._interceptors: List[Interceptor] = []
        self._ids = itertools.count(1)
        self._delivered: List[Message] = []
        self._reorder_rng = reorder_rng

    # Topology ------------------------------------------------------------------

    def register(self, party: Party) -> Party:
        if party.name in self._parties:
            raise ProtocolError(f"duplicate party name {party.name!r}")
        self._parties[party.name] = party
        party.attached(self)
        return party

    def parties(self) -> Iterable[str]:
        return list(self._parties)

    # Adversary hooks --------------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Register a passive observer called on every enqueued message."""
        self._taps.append(tap)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Register an active rewriter.  Return a (possibly modified)
        message to deliver it, or ``None`` to drop it."""
        self._interceptors.append(interceptor)

    # Traffic -------------------------------------------------------------------

    def send(self, sender: str, recipient: str, payload: object,
             channel: str = "p2p") -> None:
        message = Message(
            msg_id=next(self._ids),
            sender=sender,
            recipient=recipient,
            channel=channel,
            payload=payload,
        )
        metrics.count_message_sent(message.size)
        metrics.bump(f"sent:{sender}")
        for tap in self._taps:
            tap(message)
        for interceptor in self._interceptors:
            maybe = interceptor(message)
            if maybe is None:
                return
            message = maybe
        self._queue.append(message)

    def inject(self, message: Message) -> None:
        """Adversarial injection: enqueue a forged message directly."""
        self._queue.append(message)

    def run(self, max_steps: int = 100_000) -> int:
        """Deliver queued messages until quiescent; returns deliveries made.

        Raises :class:`ProtocolError` if ``max_steps`` is exceeded (a
        protocol loop or message storm)."""
        steps = 0
        while self._queue:
            if steps >= max_steps:
                raise ProtocolError("network did not quiesce (message storm?)")
            if self._reorder_rng is None:
                message = self._queue.popleft()
            else:
                index = self._reorder_rng.randrange(len(self._queue))
                self._queue.rotate(-index)
                message = self._queue.popleft()
                self._queue.rotate(index)
            self._deliver(message)
            steps += 1
        return steps

    def _deliver(self, message: Message) -> None:
        targets: List[Party]
        if message.recipient == BROADCAST:
            targets = [p for name, p in self._parties.items() if name != message.sender]
        else:
            target = self._parties.get(message.recipient)
            if target is None:
                return  # Guaranteed delivery only to registered parties.
            targets = [target]
        delivered = message
        if message.channel in self.ANONYMOUS_CHANNELS:
            delivered = replace(message, sender=None)
        nbytes = delivered.size
        for party in targets:
            with metrics.scope(party.metrics_scope):
                metrics.count_message_received(nbytes)
                metrics.bump(f"received:{party.name}")
                party.on_message(delivered)
        self._delivered.append(delivered)

    # Introspection ----------------------------------------------------------------

    @property
    def history(self) -> List[Message]:
        """Every delivered message (what a global eavesdropper saw)."""
        return list(self._delivered)
