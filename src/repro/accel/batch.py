"""Room-scale batch verification of Phase III signatures (layer 1c).

The handshake's Phase III conclude makes every party verify every other
party's group signature: ``8·(m-1)`` ACJT multi-exps per party,
``O(m^2)`` per room.  This module collapses that scan three ways, all of
them behaviour- and counter-preserving:

1. **One verification per distinct signature.**  Parties of the same
   group verify *identical* ``(public key, member view, message, blob)``
   tuples — the verdict cannot differ between them.  A :class:`ScanCache`
   computes each distinct decrypt/verify once under a detached metrics
   recorder and replays the recorded counts into every later consumer's
   scopes, so each party's books are bit-identical to having done the
   work itself (the E1 invariant survives because *charges* are
   duplicated even though *work* is not).
2. **Shared fixed-base tables.**  Every large SPK exponent
   (``s3``/``s_z``/``s_w3``) attaches to a long-lived base (the group
   public key, the Pedersen pair, the accumulator value), so the whole
   room's d-values evaluate out of a handful of shared
   :mod:`repro.accel.fixed_base` tables — see :func:`warm_member` and
   the per-epoch accumulator registration in :mod:`repro.gsig.acjt`
   (the *warm-rejoin cache*: re-verifying after a rejoin at the same
   ``acc_epoch`` reuses the table; any epoch change unregisters it).
3. **Failure isolation.**  :func:`batch_verify` evaluates the shared
   d-value equations exposed by :mod:`repro.gsig.acjt` /
   :mod:`repro.gsig.kty`; if a signature's challenge does not match, it
   falls back to the sequential ``verify`` (under a discarded recorder)
   to pinpoint the verdict, so accept/reject outcomes are exactly the
   sequential set even if the batch evaluation path ever diverges.

Why not random-linear-combination batching?  The classic small-exponent
batch test (combine ``N`` verification equations with random
``l``-bit multipliers, check one product) needs signatures in ``(R, s)``
form, where the commitment values are *carried* and the verifier checks
an exponent identity over them.  ACJT/KTY signatures are Fiat-Shamir
``(c, s)`` form: the ``d`` values are not transmitted — they must be
*recomputed exactly* to feed the challenge hash, and a hash input admits
no algebraic combination.  Converting the wire format to ``(d, s)`` form
would enable RLC but change every transcript byte and message size,
which the accel contract (seed books byte-identical with accel off)
forbids.  So the honest win is amortization — shared tables, shared
verdicts — not probabilistic screening; as a bonus, batch acceptance
here equals sequential acceptance with probability 1, not ``1 - 2^-l``.

New counters (extras, outside the guarded books):

* ``accel:batch-scan-hit`` / ``accel:batch-scan-miss`` — cache reuse;
* ``accel:batch-verify`` — signatures that reached the d-value
  evaluation in :func:`batch_verify`;
* ``accel:batch-fallback`` — batch rejections re-checked sequentially;
* ``accel:batch-divergence`` — fallbacks whose sequential verdict
  *disagreed* with the batch evaluation (always 0 unless a future
  evaluation strategy introduces a bug — this counter is the tripwire);
* ``accel:batch-chunks`` — pool scan chunks shipped (one per worker
  instead of one per party; see ``_phase3_full``).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro import metrics
from repro.accel import fixed_base, state
from repro.accel.multi_exp import multi_exp
from repro.errors import ParameterError


class ScanCache:
    """Verdict/counter memo for one verification scan.

    ``compute(key, fn)`` runs ``fn`` once per distinct key under a
    detached recorder, stores ``(result, counts)``, and *replays* the
    counts into the caller's scopes on every access (first or cached) —
    so every consumer's books look exactly as if it had done the work
    inline, while the work itself happens once per room instead of once
    per party.

    ``fn`` must be pure given the key: the key must fingerprint every
    input the result depends on (the handshake keys on the member's
    :meth:`~repro.core.member.GcdMember.verification_context`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Hashable, Tuple[object, Dict[str, int]]] = {}

    def compute(self, key: Hashable, fn: Callable[[], object]) -> object:
        with self._lock:
            cached = self._entries.get(key)
        if cached is not None:
            result, counts = cached
            metrics.bump("accel:batch-scan-hit")
            metrics.replay(counts)
            return result
        metrics.bump("accel:batch-scan-miss")
        with metrics.detached() as rec:
            result = fn()
        counts = metrics.replayable_totals(rec)
        with self._lock:
            self._entries.setdefault(key, (result, counts))
        metrics.replay(counts)
        return result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------------
# Warm verification material.
# ---------------------------------------------------------------------------


def warm_member(member) -> None:
    """Register a member's long-lived verification bases with the
    fixed-base layer.

    Parent-side this is a no-op (the key-generation sites and the
    credential's ``apply_update`` already registered everything); its
    real job is *worker-side*: pool processes are fresh interpreters
    that never saw key generation run, so without this every chunked
    scan would fall back to builtin ``pow`` for the very bases the
    tables exist for.  Registration charges nothing, so books are
    unaffected either way.
    """
    from repro.gsig import acjt, kty

    try:
        pk = member.info.gsig_public_key
        credential = member.credential
    except AttributeError:
        return
    if isinstance(credential, acjt.AcjtCredential):
        for base in (pk.a, pk.a0, pk.g, pk.h, pk.y, pk.ped_g, pk.ped_h):
            fixed_base.register_base(base, pk.n)
        fixed_base.register_base(credential.acc_value, pk.n)
    elif isinstance(credential, kty.KtyCredential):
        for base in (pk.a, pk.a0, pk.b, pk.g, pk.h, pk.y):
            fixed_base.register_base(base, pk.n)


def warm_view(pk, member_view) -> None:
    """Warm-rejoin cache entry: register the view's accumulator value so
    d6's ``acc^c`` term (and nothing else about the epoch) is reusable
    across every signature verified under this view.  Invalidation is
    owned by :meth:`repro.gsig.acjt.AcjtCredential.apply_update`, which
    unregisters the old value on any epoch change."""
    acc_value = getattr(member_view, "acc_value", None)
    if acc_value is not None:
        fixed_base.register_base(acc_value, pk.n)


# ---------------------------------------------------------------------------
# Batch verification.
# ---------------------------------------------------------------------------


def _verify_one_acjt(pk, message: bytes, signature, member_view) -> bool:
    from repro.gsig import acjt

    if not acjt.spk_structural_ok(pk, signature, member_view):
        return False
    n = pk.n
    d_values = tuple(
        multi_exp(terms, n)
        for terms in acjt.spk_d_terms(pk, signature, member_view)
    )
    metrics.bump("accel:batch-verify")
    if acjt.spk_challenge(pk, member_view.acc_value, message,
                          signature, d_values) == signature.challenge:
        return True
    # Batch rejection: pinpoint the verdict with the sequential verifier.
    # Its charges are discarded (the batch evaluation above already paid
    # the sequential price), so the books stay identical either way.
    metrics.bump("accel:batch-fallback")
    with metrics.detached():
        authoritative = acjt.verify(pk, message, signature, member_view)
    if authoritative:
        metrics.bump("accel:batch-divergence")
    return authoritative


def _verify_one_kty(pk, message: bytes, signature, member_view,
                    expected_shield: Optional[int]) -> bool:
    from repro.gsig import kty

    if not kty.spk_structural_ok(pk, signature, expected_shield):
        return False
    n = pk.n
    d_values = tuple(
        kty.eval_d_group(group, n)
        for group in kty.spk_d_groups(pk, signature)
    )
    metrics.bump("accel:batch-verify")
    if kty.spk_challenge(pk, message, signature, d_values) \
            != signature.challenge:
        metrics.bump("accel:batch-fallback")
        with metrics.detached():
            authoritative = kty.verify(pk, message, signature, member_view,
                                       expected_shield=expected_shield)
        if authoritative:
            metrics.bump("accel:batch-divergence")
        return authoritative
    return kty.crl_ok(pk, signature, member_view)


def batch_verify(pk, items: Iterable[Tuple[bytes, object]], member_view,
                 expected_shield: Optional[int] = None) -> List[bool]:
    """Verify a room's worth of ``(message, signature)`` pairs against
    one member view; returns one verdict per item, in order.

    The accept/reject set is exactly what per-item sequential ``verify``
    returns, and so are the guarded counters (duplicates replay the
    first evaluation's charges).  With the subsystem or the batch switch
    off this *is* the sequential loop.
    """
    from repro.gsig import acjt, kty

    items = list(items)
    if isinstance(pk, acjt.AcjtPublicKey):
        if expected_shield is not None:
            raise ParameterError("ACJT has no self-distinction shield")
        sequential = lambda m, s: acjt.verify(pk, m, s, member_view)  # noqa: E731
        batched = lambda m, s: _verify_one_acjt(pk, m, s, member_view)  # noqa: E731
    elif isinstance(pk, kty.KtyPublicKey):
        sequential = lambda m, s: kty.verify(  # noqa: E731
            pk, m, s, member_view, expected_shield=expected_shield)
        batched = lambda m, s: _verify_one_kty(  # noqa: E731
            pk, m, s, member_view, expected_shield)
    else:
        raise ParameterError(f"unknown public key type {type(pk).__name__}")

    if not state.batch_enabled():
        return [sequential(message, signature)
                for message, signature in items]
    warm_view(pk, member_view)
    cache = ScanCache()
    return [
        cache.compute(("bv", message, signature),
                      lambda m=message, s=signature: batched(m, s))
        for message, signature in items
    ]


# ---------------------------------------------------------------------------
# The room scan (benchmark / test harness view of Phase III conclude).
# ---------------------------------------------------------------------------


def verify_room(members, items: Iterable[Tuple[bytes, bytes]],
                expected_shield: Optional[int] = None,
                cache: Optional[ScanCache] = None,
                ) -> List[List[Optional[bool]]]:
    """The Phase III verify scan without the transport around it: every
    member checks every other member's ``(message, blob)`` publication.

    Returns one verdict row per member (``None`` at its own index).
    With ``cache`` the scan runs batched — distinct ``(context, blob)``
    pairs verified once, counters replayed — and without it each member
    verifies everything itself, exactly like the sequential engine path.
    Used by ``benchmarks/bench_accel.py`` and the parity tests.
    """
    rows: List[List[Optional[bool]]] = []
    items = list(items)
    for index, member in enumerate(members):
        context = member.verification_context() if cache is not None else None
        row: List[Optional[bool]] = []
        for j, (message, blob) in enumerate(items):
            if j == index:
                row.append(None)
                continue
            if cache is None:
                row.append(member.gsig_verify(
                    message, blob, expected_shield=expected_shield))
            else:
                row.append(cache.compute(
                    ("ver", context, expected_shield, message, blob),
                    lambda m=message, b=blob, mem=member: mem.gsig_verify(
                        m, b, expected_shield=expected_shield)))
        rows.append(row)
    return rows
