"""repro.accel — crypto acceleration subsystem.

Three layers, all behaviour-preserving (see docs/PERFORMANCE.md):

1. **Algorithmic** (:mod:`repro.accel.fixed_base`,
   :mod:`repro.accel.multi_exp`, :mod:`repro.accel.batch`) — fixed-base
   windowed precomputation for long-lived bases, term-by-term
   multi-exponentiation that routes through those tables, and
   room-scale batch verification of Phase III signature scans.
2. **Parallel** (:mod:`repro.accel.pool`) — a ``ProcessPoolExecutor``
   worker pool with batch submit (``sign_many`` / ``verify_many`` /
   ``modexp_many``) and counter replay into the caller's books.
3. **Async** (:mod:`repro.accel.bridge`) — a ``run_in_executor`` bridge
   so the service client/server keep the event loop free while crypto
   computes.

Everything is off by default and switched with :func:`configure` /
:func:`enable`; the guarded E1/E2 counters (modexp, messages, bytes) and
every protocol output are bit-identical with acceleration on or off.
New ``accel:*`` extra counters and histograms ride on top.

Importing this package installs the fixed-base hook into
:func:`repro.crypto.modmath.mexp`; the hook is inert until enabled.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.accel import bridge, fixed_base, state
from repro.accel.fixed_base import (FixedBaseTable, lookup_pow,
                                    register_base, unregister_base)
from repro.accel.multi_exp import multi_exp
from repro.accel.pool import WorkerPool
from repro.crypto import modmath as _modmath
from repro.accel import batch  # noqa: E402  (needs fixed_base/state above)
from repro.accel.batch import ScanCache, batch_verify, verify_room

_modmath._install_accel_pow(lookup_pow)

__all__ = [
    "FixedBaseTable",
    "ScanCache",
    "WorkerPool",
    "batch",
    "batch_verify",
    "bridge",
    "configure",
    "disable",
    "enable",
    "get_pool",
    "is_enabled",
    "multi_exp",
    "register_base",
    "reset",
    "shutdown_pool",
    "stats",
    "unregister_base",
    "verify_room",
]

_POOL: Optional[WorkerPool] = None


def configure(enabled: Optional[bool] = None, *,
              window: Optional[int] = None,
              cache_size: Optional[int] = None,
              workers: Optional[int] = None,
              batch: Optional[bool] = None) -> Dict[str, object]:
    """Set any subset of the subsystem switches; returns the snapshot."""
    snap = state.configure(enabled=enabled, window=window,
                           cache_size=cache_size, workers=workers,
                           batch=batch)
    if cache_size is not None:
        fixed_base.configure_cache(cache_size)
    return snap


def enable(workers: Optional[int] = None) -> None:
    configure(enabled=True, workers=workers)


def disable() -> None:
    configure(enabled=False)


def is_enabled() -> bool:
    return state.is_enabled()


def get_pool(workers: Optional[int] = None) -> WorkerPool:
    """The shared process pool (created on first call)."""
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool(workers=workers)
    return _POOL


def shutdown_pool() -> None:
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()


def reset() -> None:
    """Drop caches, pools and bridge threads; configuration persists."""
    fixed_base.clear()
    shutdown_pool()
    bridge.shutdown()


def stats() -> Dict[str, object]:
    """One structured snapshot for STATUS replies and the CLI."""
    snap = state.snapshot()
    return {
        "enabled": snap["enabled"],
        "window": snap["window"],
        "workers": snap["workers"],
        "batch": snap["batch"],
        "fixed_base": fixed_base.stats(),
        "pool": dict(_POOL.stats, workers=_POOL.workers,
                     usable=_POOL.usable) if _POOL is not None else None,
        "bridge": bridge.stats(),
    }
