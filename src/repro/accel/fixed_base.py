"""Fixed-base windowed precomputation (layer 1 of :mod:`repro.accel`).

The protocol exponentiates a handful of *long-lived* bases thousands of
times: the DGKA group generator ``g``, the ACJT public bases
``a, a0, g, h, y`` and the Pedersen pair ``ped_g, ped_h``, and the
Cramer-Shoup tracing bases.  For those we precompute the classic
fixed-base windowed table

    ``rows[j][d] = base ** (d << (j * window))  (mod modulus)``

so any exponent becomes one modular multiply per non-zero ``window``-bit
digit — no squarings at all — at the cost of ``2^window`` stored powers
per digit row, built once and cached.

Accounting contract (the E1 invariant): a table lookup **replaces** one
``pow`` call inside :func:`repro.crypto.modmath.mexp`, which has already
charged its modexp before consulting the hook — so the guarded counters
are identical with the subsystem on or off.  Cache behaviour is layered
on top as new ``accel:fb-hit`` / ``accel:fb-miss`` extra counters.

Only *registered* bases get tables: :func:`register_base` is called from
the key-generation sites (ACJT manager, ``dh_group``, Cramer-Shoup
keygen), so random per-signature bases never pollute the cache.  The
table store itself is a bounded LRU keyed ``(base % modulus, modulus)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import metrics
from repro.accel import state

Key = Tuple[int, int]


class FixedBaseTable:
    """Digit-row table for one ``(base, modulus)`` pair.

    Rows are grown lazily: ACJT sigma responses run to ~3000 bits —
    far past the modulus size — so the number of rows follows the
    largest exponent actually seen instead of being fixed up front.
    """

    __slots__ = ("base", "modulus", "window", "rows", "mults",
                 "_row_base", "_lock")

    def __init__(self, base: int, modulus: int,
                 window: Optional[int] = None) -> None:
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window if window is not None else state.window()
        self.rows: list = []
        #: raw modular multiplies spent building rows (precompute cost).
        self.mults = 0
        self._row_base = self.base
        self._lock = threading.Lock()
        with self._lock:
            self._grow(1)

    def _grow(self, nrows: int) -> None:
        """Extend to ``nrows`` digit rows (caller holds the lock)."""
        radix = 1 << self.window
        mod = self.modulus
        while len(self.rows) < nrows:
            g = self._row_base
            row = [1 % mod, g % mod]
            value = g % mod
            for _ in range(radix - 2):
                value = (value * g) % mod
                row.append(value)
            self.rows.append(row)
            # Generator for the next row: g^(2^window) = row[-1] * g.
            self._row_base = (row[-1] * g) % mod
            self.mults += radix - 1

    def pow(self, exponent: int) -> int:
        """``base ** exponent % modulus`` — bit-identical to builtin pow."""
        if exponent < 0:
            raise ValueError("fixed-base tables take non-negative exponents")
        mod = self.modulus
        if mod == 1:
            return 0
        needed = (max(exponent.bit_length(), 1)
                  + self.window - 1) // self.window
        # Hold the lock only to guarantee enough rows exist.  Rows are
        # append-only and never mutated in place, so indices < needed
        # stay valid under concurrent growth — the windowed evaluation
        # itself runs lock-free and threads sharing a table (the bridge
        # offload, chunked scans) no longer serialize per exponentiation.
        with self._lock:
            if needed > len(self.rows):
                self._grow(needed)
            rows = self.rows
        mask = (1 << self.window) - 1
        result = 1
        j = 0
        e = exponent
        while e:
            digit = e & mask
            if digit:
                result = (result * rows[j][digit]) % mod
            e >>= self.window
            j += 1
        return result % mod


class TableCache:
    """Bounded LRU of :class:`FixedBaseTable`, with hit/miss accounting.

    Construction is **single-flight** per key: the first thread to miss
    builds the table outside the cache lock (big-int multiplies can be
    slow) while later arrivals wait on a per-key event instead of paying
    the full ``mults`` precompute for a table that would be thrown away.
    """

    def __init__(self, capacity: int) -> None:
        self._lock = threading.Lock()
        self._capacity = max(1, capacity)
        self._tables: "OrderedDict[Key, FixedBaseTable]" = OrderedDict()
        self._building: Dict[Key, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def resize(self, capacity: int) -> None:
        with self._lock:
            self._capacity = max(1, capacity)
            while len(self._tables) > self._capacity:
                self._tables.popitem(last=False)
                self.evictions += 1

    def lookup(self, key: Key) -> Tuple[FixedBaseTable, bool]:
        """Get-or-build the table for ``key``; returns ``(table, hit)``.
        LRU order is touch-on-use; waiters on an in-flight build count as
        hits (they pay no precompute)."""
        while True:
            with self._lock:
                table = self._tables.get(key)
                if table is not None:
                    self._tables.move_to_end(key)
                    self.hits += 1
                    return table, True
                pending = self._building.get(key)
                if pending is None:
                    done = self._building[key] = threading.Event()
                    self.misses += 1
                    break
            # Someone else is already building this table — wait, then
            # re-check (it may even have been evicted again by then).
            pending.wait()
        try:
            table = FixedBaseTable(key[0], key[1])
        except BaseException:
            with self._lock:
                self._building.pop(key, None)
            done.set()
            raise
        with self._lock:
            self._tables[key] = table
            self._tables.move_to_end(key)
            while len(self._tables) > self._capacity:
                self._tables.popitem(last=False)
                self.evictions += 1
            self._building.pop(key, None)
        done.set()
        return table, False

    def discard(self, key: Key) -> bool:
        """Drop one entry (registry eviction / unregistration); counted as
        an eviction when the key was present."""
        with self._lock:
            if self._tables.pop(key, None) is not None:
                self.evictions += 1
                return True
            return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def clear(self) -> None:
        with self._lock:
            self._tables.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "tables": len(self._tables),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


_REG_LOCK = threading.Lock()
#: Keys that key-generation sites have marked as long-lived.  Bounded to a
#: multiple of the cache so a pathological caller cannot grow it forever.
_REGISTERED: "OrderedDict[Key, None]" = OrderedDict()
_CACHE = TableCache(state.cache_size())


def _registry_capacity() -> int:
    return 4 * state.cache_size()


def register_base(base: int, modulus: int) -> None:
    """Mark ``(base, modulus)`` as long-lived.

    Cheap and unconditional (a set insert) so key-generation sites call
    it regardless of whether acceleration is currently on; the table
    itself is only built on first use *while* the subsystem is enabled.
    """
    if modulus <= 1:
        return
    key = (base % modulus, modulus)
    evicted = []
    with _REG_LOCK:
        _REGISTERED[key] = None
        _REGISTERED.move_to_end(key)
        while len(_REGISTERED) > _registry_capacity():
            evicted.append(_REGISTERED.popitem(last=False)[0])
    # A key that left the registry can never be served by lookup_pow
    # again — drop its table too, or it would pin cache capacity forever.
    for old in evicted:
        _CACHE.discard(old)


def unregister_base(base: int, modulus: int) -> None:
    """Forget a base and drop its table — e.g. an accumulator value made
    obsolete by an epoch change (see :mod:`repro.accel.batch`)."""
    if modulus <= 1:
        return
    key = (base % modulus, modulus)
    with _REG_LOCK:
        present = key in _REGISTERED
        if present:
            del _REGISTERED[key]
    if present:
        _CACHE.discard(key)


def is_registered(base: int, modulus: int) -> bool:
    with _REG_LOCK:
        return (base % modulus, modulus) in _REGISTERED


def lookup_pow(base: int, exponent: int, modulus: int) -> Optional[int]:
    """The :func:`repro.crypto.modmath.mexp` hook.

    Returns the power for registered bases while acceleration is on, or
    ``None`` to tell ``mexp`` to fall back to builtin ``pow``.  The
    caller has already charged the modexp; this layers ``accel:fb-hit``
    / ``accel:fb-miss`` extras on top (a *miss* is a registered base
    whose table had to be built — unregistered bases count nothing).
    """
    if not state.is_enabled() or exponent < 0 or modulus <= 1:
        return None
    key = (base % modulus, modulus)
    with _REG_LOCK:
        if key not in _REGISTERED:
            return None
    table, hit = _CACHE.lookup(key)
    metrics.bump("accel:fb-hit" if hit else "accel:fb-miss")
    return table.pow(exponent)


def configure_cache(capacity: int) -> None:
    _CACHE.resize(capacity)


def clear() -> None:
    """Drop all tables and accounting (tests and ``accel.reset``)."""
    _CACHE.clear()
    with _REG_LOCK:
        _REGISTERED.clear()


def stats() -> Dict[str, int]:
    out = _CACHE.stats()
    with _REG_LOCK:
        out["registered"] = len(_REGISTERED)
    return out
