"""Multi-term modular exponentiation with fixed-base splitting (layer 1b).

ACJT signing and verification are dominated by multi-term products of
the form ``b1^e1 * b2^e2 * ... (mod n)`` (the ``d1..d8`` commitment and
reconstruction values).  Most of those terms raise *long-lived* bases —
the group public key and Pedersen bases, the accumulator value — to the
very largest exponents (the ``s3``/``s_z`` responses run to ~6x the
modulus size), which is exactly what :mod:`repro.accel.fixed_base`
windowed tables are good at: one multiply per non-zero window digit, no
squarings.  The enabled path therefore splits each product by base:
registered bases evaluate through their shared table, everything else
(the per-signature ``T``-values, which only carry the short challenge
and ``s1_hat`` exponents) falls back to builtin ``pow``.

An earlier revision ran a pure-Python Shamir/Straus shared ladder here.
Profiling showed it *loses* to CPython's C ``pow`` on the mixed exponent
sizes these products actually contain — the shared squarings are Python
big-int multiplies, and the shortest exponent pads up to the longest —
so the ladder is gone; the split evaluation above is what made accel-on
finally beat accel-off on one core.

Accounting contract (the E1 invariant): a ``k``-term call charges
exactly ``k`` modexps — the number of :func:`repro.crypto.modmath.mexp`
calls it replaces — whether or not acceleration is enabled.  Negative
exponents are normalized per-pair through
:func:`repro.crypto.modmath.inverse`, mirroring what each replaced
``mexp`` would have done, so the ``inversions`` extra counter is also
independent of the accel switch.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro import metrics
from repro.accel import fixed_base, state
from repro.crypto.modmath import inverse

#: Historical term-group width of the retired shared-ladder evaluation;
#: kept as the canonical "how many terms does one ACJT d-value carry"
#: sizing constant (tests and strategies still reference it).
GROUP_SIZE = 4


def multi_exp(pairs: Iterable[Tuple[int, int]], modulus: int) -> int:
    """``prod(base**exp for base, exp in pairs) % modulus``, counted as
    ``len(pairs)`` modular exponentiations.

    Bit-identical to the naive per-term product for any input; the
    fixed-base split only changes *how* the same residue is reached, and
    only runs while :mod:`repro.accel` is enabled.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    terms: List[Tuple[int, int]] = []
    for base, exponent in pairs:
        if exponent < 0:
            base = inverse(base, modulus)
            exponent = -exponent
        terms.append((base % modulus, exponent))
    if not terms:
        return 1 % modulus
    metrics.count_modexp(len(terms))
    if modulus == 1:
        return 0
    if not state.is_enabled():
        result = 1
        for base, exponent in terms:
            result = (result * pow(base, exponent, modulus)) % modulus
        return result
    result = 1
    for base, exponent in terms:
        power = fixed_base.lookup_pow(base, exponent, modulus)
        if power is None:
            power = pow(base, exponent, modulus)
        result = (result * power) % modulus
    return result
