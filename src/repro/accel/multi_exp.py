"""Shamir/Straus simultaneous multi-exponentiation (layer 1b).

ACJT signing and verification are dominated by multi-term products of
the form ``b1^e1 * b2^e2 * ... (mod n)`` (the ``d1..d8`` commitment and
reconstruction values).  Computing the terms independently costs one
full square-and-multiply ladder *per term*; the Shamir/Straus trick
shares one ladder across a group of terms: precompute the ``2^k``
subset products of the bases, then do one squaring per exponent bit and
at most one multiply per bit — roughly ``k``× fewer squarings for a
``k``-term product.

Accounting contract (the E1 invariant): a ``k``-term call charges
exactly ``k`` modexps — the number of :func:`repro.crypto.modmath.mexp`
calls it replaces — whether or not the shared-ladder evaluation is
enabled.  Negative exponents are normalized per-pair through
:func:`repro.crypto.modmath.inverse`, mirroring what each replaced
``mexp`` would have done, so the new ``inversions`` extra counter is
also independent of the accel switch.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro import metrics
from repro.accel import state
from repro.crypto.modmath import inverse

#: Terms per shared ladder: 2^4 = 16 subset products is the sweet spot
#: for the 3-4 term products ACJT produces (table cost ~ 2^k multiplies).
GROUP_SIZE = 4


def multi_exp(pairs: Iterable[Tuple[int, int]], modulus: int) -> int:
    """``prod(base**exp for base, exp in pairs) % modulus``, counted as
    ``len(pairs)`` modular exponentiations.

    Bit-identical to the naive per-term product for any input; the
    Shamir/Straus evaluation only changes *how* the same residue is
    reached, and only runs while :mod:`repro.accel` is enabled.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    terms: List[Tuple[int, int]] = []
    for base, exponent in pairs:
        if exponent < 0:
            base = inverse(base, modulus)
            exponent = -exponent
        terms.append((base % modulus, exponent))
    if not terms:
        return 1 % modulus
    metrics.count_modexp(len(terms))
    if modulus == 1:
        return 0
    if not state.is_enabled() or len(terms) == 1:
        result = 1
        for base, exponent in terms:
            result = (result * pow(base, exponent, modulus)) % modulus
        return result
    result = 1
    for start in range(0, len(terms), GROUP_SIZE):
        chunk = _shamir(terms[start:start + GROUP_SIZE], modulus)
        result = (result * chunk) % modulus
    return result


def _shamir(terms: List[Tuple[int, int]], modulus: int) -> int:
    """One shared square-and-multiply ladder over ``terms`` (≤ GROUP_SIZE)."""
    if len(terms) == 1:
        return pow(terms[0][0], terms[0][1], modulus)
    k = len(terms)
    # table[mask] = product of bases[i] for each set bit i of mask.
    table = [1] * (1 << k)
    for i, (base, _) in enumerate(terms):
        bit = 1 << i
        for mask in range(bit, bit << 1):
            table[mask] = (table[mask ^ bit] * base) % modulus
    bits = max(exponent.bit_length() for _, exponent in terms)
    result = 1
    for pos in range(bits - 1, -1, -1):
        result = (result * result) % modulus
        mask = 0
        for i, (_, exponent) in enumerate(terms):
            if (exponent >> pos) & 1:
                mask |= 1 << i
        if mask:
            result = (result * table[mask]) % modulus
    return result
