"""Asyncio bridge (layer 3): run crypto off the event loop.

``service.client`` drives a full handshake state machine from coroutine
context, and the server decodes/encodes frames inline in its relay path.
Both block the loop for the duration of each ACJT operation — tens of
milliseconds at secure parameters — which is exactly the latency the
relay is supposed to keep flat.  :func:`run` pushes such a callable onto
a shared :class:`~concurrent.futures.ThreadPoolExecutor` and awaits it.

Threads (not processes) on purpose: handshake devices hold sockets,
queues and callbacks that do not pickle, and a thread is enough to get
blocking work off the *loop* even though the GIL still serializes
big-int math.  CPU-level parallelism is :mod:`repro.accel.pool`'s job.

Metrics: ``loop.run_in_executor`` does **not** propagate context
variables, so the wrapped callable re-pins the caller's recorder (and
optionally enters a scope) inside the worker thread — otherwise every
count would land in the thread's own private books and vanish.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

from repro import metrics
from repro.accel import state

_LOCK = threading.Lock()
_EXECUTOR: Optional[ThreadPoolExecutor] = None
_PENDING = 0
_TASKS = 0


def _default_workers() -> int:
    configured = state.workers()
    if configured is not None:
        return configured
    return min(32, (os.cpu_count() or 1) + 4)


def _executor() -> ThreadPoolExecutor:
    global _EXECUTOR
    with _LOCK:
        if _EXECUTOR is None:
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=_default_workers(),
                thread_name_prefix="repro-accel-bridge",
            )
        return _EXECUTOR


async def run(fn: Callable, *args: Any, scope: Optional[str] = None) -> Any:
    """Await ``fn(*args)`` on the bridge executor.

    The callable runs under the caller's recorder, inside ``scope`` when
    given, so its counters land exactly where inline execution would
    have put them.  Latency (submit → done) feeds the
    ``accel:bridge-latency`` histogram.
    """
    global _PENDING, _TASKS
    recorder = metrics.current_recorder()

    def _invoke() -> Any:
        with metrics.using(recorder):
            if scope is None:
                return fn(*args)
            with metrics.scope(scope):
                return fn(*args)

    loop = asyncio.get_running_loop()
    with _LOCK:
        _PENDING += 1
        depth = _PENDING
    metrics.observe("accel:bridge-queue-depth", depth, metrics.SIZE_BOUNDS)
    started = time.perf_counter()
    try:
        return await loop.run_in_executor(_executor(), _invoke)
    finally:
        with _LOCK:
            _PENDING -= 1
            _TASKS += 1
        metrics.observe("accel:bridge-latency", time.perf_counter() - started)
        metrics.bump("accel:bridge-tasks")


def shutdown() -> None:
    """Tear down the shared executor (a new one starts on next use)."""
    global _EXECUTOR
    with _LOCK:
        executor, _EXECUTOR = _EXECUTOR, None
    if executor is not None:
        executor.shutdown(wait=True)


def stats() -> Dict[str, int]:
    with _LOCK:
        return {
            "workers": (_EXECUTOR._max_workers
                        if _EXECUTOR is not None else _default_workers()),
            "running": _EXECUTOR is not None,
            "pending": _PENDING,
            "tasks": _TASKS,
        }
