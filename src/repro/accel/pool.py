"""Process-pool offload with counter replay (layer 2 of :mod:`repro.accel`).

Pure-Python big-int exponentiation holds the GIL, so threads cannot
parallelize a handshake — processes can.  The difficulty is the metrics
contract: every modexp/message/hash a worker performs must land in the
*caller's* books, attributed to the same scopes, or the E1/E2 counters
would silently shrink whenever the pool is on.

The mechanism: workers run each task under a **fresh**
:class:`repro.metrics.Recorder` and ship the non-zero totals back with
the result; the parent calls :func:`repro.metrics.replay` inside the
scopes the inline execution would have used.  The same wrapper runs for
the inline fallback, so pool, fallback, and plain execution are
indistinguishable to the counters.

Failure model: a pool that cannot start (sandboxes without fork), a
payload that cannot pickle, or a worker crash all degrade to inline
execution — recorded under ``accel:pool-inline`` /
``accel:pool-broken`` — and never change results.  Genuine exceptions
raised by the task itself propagate unchanged.
"""

from __future__ import annotations

import os
import pickle
import random
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import metrics
from repro.accel import state

#: Exception types that mean "this payload / pool cannot do process
#: transport" rather than "the task failed" — these fall back inline.
_TRANSPORT_ERRORS = (BrokenProcessPool, pickle.PicklingError, OSError)


def _worker_init(enabled: bool, window: int) -> None:
    """Run in each worker on start: mirror the parent's accel switches so
    workers also benefit from fixed-base tables (counters are unaffected
    either way — that is the whole point of the parity contract)."""
    if enabled:
        state.configure(enabled=True, window=window)


def _call_counted(fn: Callable, args: Tuple) -> Tuple[Any, Dict[str, int]]:
    """Execute ``fn(*args)`` under a fresh detached recorder; return the
    result plus the non-zero counter totals it accrued (wall time excluded
    — worker wall clock overlaps the parent's and must not be
    double-booked).  ``detached`` (not ``using``) matters for the inline
    fallback: run under the caller's open scopes, a bare recorder swap
    would still leak charges into those scopes' counters and the replay
    would then double-book them."""
    with metrics.detached() as rec:
        result = fn(*args)
    return result, metrics.replayable_totals(rec)


# --- picklable task bodies (must be module-level for process transport) ---


def _sign_task(credential: Any, message: bytes,
               rng_state: Tuple) -> Tuple[Any, Tuple]:
    """Group-sign ``message``; round-trips the caller's rng state so the
    draw sequence is identical to inline signing."""
    rng = random.Random()
    rng.setstate(rng_state)
    signature = credential.sign(message, rng)
    return signature, rng.getstate()


def _verify_task(pk: Any, message: bytes, signature: Any,
                 view: Any) -> bool:
    from repro.gsig import acjt, kty
    if isinstance(signature, acjt.AcjtSignature):
        return acjt.verify(pk, message, signature, view)
    return kty.verify(pk, message, signature, view)


def _modexp_chunk(triples: Sequence[Tuple[int, int, int]]) -> List[int]:
    from repro.crypto.modmath import mexp
    return [mexp(base, exponent, modulus)
            for base, exponent, modulus in triples]


class WorkerPool:
    """Lazily-started ``ProcessPoolExecutor`` with batch submit + replay.

    ``with WorkerPool(workers=4) as pool: pool.run_batch(...)`` — or keep
    one long-lived instance (the engine and benchmarks do) and call
    :meth:`shutdown` when done.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        configured = workers if workers is not None else state.workers()
        self.workers = max(1, configured if configured is not None
                           else (os.cpu_count() or 1))
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False
        self._lock = threading.Lock()
        self._pending = 0
        self.stats: Dict[str, int] = {
            "batches": 0, "tasks": 0, "inline": 0, "broken": 0,
        }

    # -- lifecycle --

    def _ensure(self) -> Optional[ProcessPoolExecutor]:
        with self._lock:
            if self._executor is None and not self._broken:
                try:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_worker_init,
                        initargs=(state.is_enabled(), state.window()),
                    )
                except (OSError, ValueError, PermissionError):
                    self._mark_broken_locked()
            return self._executor

    def _mark_broken_locked(self) -> None:
        self._broken = True
        self.stats["broken"] += 1
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    @property
    def usable(self) -> bool:
        return not self._broken

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- batch API --

    def run_batch(self, fn: Callable, arg_tuples: Sequence[Tuple],
                  scopes: Optional[Sequence[Optional[str]]] = None) -> List:
        """Run ``fn(*args)`` for each tuple; replay each task's counters
        into ``scopes[i]`` (plus whatever scopes are active at the call
        site).  Returns results in submission order."""
        items = list(arg_tuples)
        if not items:
            return []
        self.stats["batches"] += 1
        executor = self._ensure()
        futures: Optional[List] = None
        if executor is not None:
            try:
                with self._lock:
                    self._pending += len(items)
                    depth = self._pending
                metrics.observe("accel:pool-queue-depth", depth,
                                metrics.SIZE_BOUNDS)
                futures = [executor.submit(_call_counted, fn, args)
                           for args in items]
            except _TRANSPORT_ERRORS + (RuntimeError,):
                with self._lock:
                    self._pending -= len(items)
                    self._mark_broken_locked()
                futures = None

        results: List = []
        for index, args in enumerate(items):
            outcome = None
            started = time.perf_counter()
            if futures is not None:
                try:
                    outcome = futures[index].result()
                except BrokenProcessPool:
                    for late in futures[index + 1:]:
                        late.cancel()
                    with self._lock:
                        self._mark_broken_locked()
                        # Items past this one never reach the per-item
                        # decrement below once futures is dropped.
                        self._pending -= len(items) - index - 1
                    futures = None
                except _TRANSPORT_ERRORS:
                    pass        # this payload only; later futures may be fine
                finally:
                    with self._lock:
                        self._pending -= 1
            if outcome is None:
                metrics.bump("accel:pool-inline")
                self.stats["inline"] += 1
                outcome = _call_counted(fn, args)
            result, counts = outcome
            metrics.observe("accel:task-latency",
                            time.perf_counter() - started)
            self.stats["tasks"] += 1
            metrics.bump("accel:pool-tasks")
            scope_name = scopes[index] if scopes is not None else None
            if scope_name is not None:
                with metrics.scope(scope_name):
                    metrics.replay(counts)
            else:
                metrics.replay(counts)
            results.append(result)
        return results

    # -- domain wrappers --

    def sign_many(self, jobs: Sequence[Tuple[Any, bytes, random.Random]],
                  scopes: Optional[Sequence[Optional[str]]] = None) -> List:
        """Batch group-sign: ``jobs`` is ``(credential, message, rng)``;
        each rng is advanced exactly as inline signing would have."""
        payload = [(credential, message, rng.getstate())
                   for credential, message, rng in jobs]
        outcomes = self.run_batch(_sign_task, payload, scopes=scopes)
        signatures = []
        for (signature, rng_state), (_, _, rng) in zip(outcomes, jobs):
            rng.setstate(rng_state)
            signatures.append(signature)
        return signatures

    def verify_many(self, jobs: Sequence[Tuple[Any, bytes, Any, Any]],
                    scopes: Optional[Sequence[Optional[str]]] = None,
                    ) -> List[bool]:
        """Batch group-signature verification: ``(pk, message, signature,
        member_view)`` per job."""
        return self.run_batch(_verify_task, [tuple(j) for j in jobs],
                              scopes=scopes)

    def modexp_many(self, triples: Sequence[Tuple[int, int, int]],
                    chunk_size: Optional[int] = None) -> List[int]:
        """Chunked modexp burst: ``(base, exponent, modulus)`` per entry."""
        items = list(triples)
        if not items:
            return []
        if chunk_size is None:
            chunk_size = max(1, (len(items) + 2 * self.workers - 1)
                             // (2 * self.workers))
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]
        out: List[int] = []
        for chunk_result in self.run_batch(_modexp_chunk,
                                           [(chunk,) for chunk in chunks]):
            out.extend(chunk_result)
        return out
