"""Global configuration for the acceleration subsystem.

Kept in its own leaf module (no imports beyond the standard library) so
``fixed_base``/``multi_exp``/``pool`` can consult the switches without
pulling in the package ``__init__`` — which would create an import cycle
through :mod:`repro.crypto.modmath`.

The subsystem is **off by default**: every algorithm must produce
bit-identical results either way, so enabling it is purely a performance
decision (made by the CLI flags, the benchmarks, or a library caller via
:func:`repro.accel.configure`).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

_LOCK = threading.RLock()

_ENABLED = False
#: Fixed-base window width in bits; 2^window table entries per row.
_WINDOW = 5
#: Bounded LRU capacity for fixed-base tables (distinct (base, modulus)).
_CACHE_SIZE = 64
#: Worker count for pools/bridges; ``None`` means "ask os.cpu_count()".
_WORKERS: Optional[int] = None
#: Room-scale batch verification (:mod:`repro.accel.batch`).  On by
#: default but only effective while the subsystem itself is enabled, so
#: the accel-off books stay untouched.
_BATCH = True


def configure(enabled: Optional[bool] = None,
              window: Optional[int] = None,
              cache_size: Optional[int] = None,
              workers: Optional[int] = None,
              batch: Optional[bool] = None) -> Dict[str, object]:
    """Update any subset of the switches; returns the resulting snapshot."""
    global _ENABLED, _WINDOW, _CACHE_SIZE, _WORKERS, _BATCH
    with _LOCK:
        if enabled is not None:
            _ENABLED = bool(enabled)
        if window is not None:
            if not 1 <= int(window) <= 16:
                raise ValueError("window must be in [1, 16]")
            _WINDOW = int(window)
        if cache_size is not None:
            if int(cache_size) < 1:
                raise ValueError("cache_size must be >= 1")
            _CACHE_SIZE = int(cache_size)
        if workers is not None:
            if int(workers) < 1:
                raise ValueError("workers must be >= 1")
            _WORKERS = int(workers)
        if batch is not None:
            _BATCH = bool(batch)
        return snapshot()


def snapshot() -> Dict[str, object]:
    with _LOCK:
        return {
            "enabled": _ENABLED,
            "window": _WINDOW,
            "cache_size": _CACHE_SIZE,
            "workers": _WORKERS,
            "batch": _BATCH,
        }


def enable(workers: Optional[int] = None) -> None:
    configure(enabled=True, workers=workers)


def disable() -> None:
    configure(enabled=False)


def is_enabled() -> bool:
    return _ENABLED


def batch_enabled() -> bool:
    """True when room-scale batch verification should run: the subsystem
    is on *and* the batch switch has not been turned off."""
    return _ENABLED and _BATCH


def window() -> int:
    return _WINDOW


def cache_size() -> int:
    return _CACHE_SIZE


def workers() -> Optional[int]:
    return _WORKERS
