"""DGKA interface (paper Fig. 5).

A protocol run involves ``m`` instances ``Pi_U^i``.  We model each instance
as a :class:`DgkaParty` driven through synchronous broadcast rounds: in
round ``r`` every party emits a payload (or ``None``), then receives the
payloads of all parties.  On completion each instance exposes the Fig. 5
variables:

* ``acc`` — success flag,
* ``sid`` — session id (hash of all messages sent and received, per the
  paper's suggestion of concatenating the communication),
* ``pid`` — the indices of the intended participants,
* ``session_key`` — the agreed secret (32 bytes, KDF-derived from the
  group element so it composes with the CGKD key via XOR in GCD Phase I).

``run_locally`` executes a set of parties without the network simulator —
used by unit tests and by adversarial harnesses that splice messages.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import hashing
from repro.errors import ProtocolError, SessionError


class DgkaParty(abc.ABC):
    """One protocol instance Pi_U^i."""

    #: True when every party broadcasts in every round (e.g. Burmester-
    #: Desmedt).  Chain protocols with per-round single speakers (GDH.2)
    #: set this False; broadcast-relay drivers check it up front instead
    #: of deadlocking mid-session waiting for silent parties.
    all_speak: bool = True

    def __init__(self, index: int, m: int) -> None:
        if not 0 <= index < m or m < 2:
            raise SessionError(f"bad party index {index} for m={m}")
        self.index = index
        self.m = m
        self.acc = False
        self._transcript: List[Tuple[int, int, object]] = []
        self._session_key: Optional[bytes] = None

    # Round-based driver interface ------------------------------------------

    @property
    @abc.abstractmethod
    def rounds(self) -> int:
        """Number of synchronous broadcast rounds."""

    @abc.abstractmethod
    def emit(self, round_no: int) -> Optional[object]:
        """Payload this party broadcasts in ``round_no`` (None = silent)."""

    @abc.abstractmethod
    def absorb(self, round_no: int, payloads: Dict[int, object]) -> None:
        """Process the round's payloads, keyed by sender index (own payload
        included).  Raises :class:`ProtocolError` on malformed input."""

    # Fig. 5 outputs -----------------------------------------------------------

    @property
    def pid(self) -> Tuple[int, ...]:
        """Identities of the intended participants (all indices)."""
        return tuple(range(self.m))

    @property
    def sid(self) -> bytes:
        """Session id: digest of every message sent/received, in order."""
        return hashing.iter_digest("dgka-sid", self._flatten_transcript())

    @property
    def session_key(self) -> bytes:
        if not self.acc or self._session_key is None:
            raise SessionError("session key unavailable (acc is False)")
        return self._session_key

    def unique_string(self, index: int) -> bytes:
        """Digest of every message sent by party ``index`` as seen by this
        instance — the per-party unique string ``s`` that Phase II of the
        GCD handshake MACs (Fig. 6 footnote: "e.g., the message(s) it sent
        in the DGKA.GroupKeyAgreement execution")."""
        items = []
        for round_no, sender, payload in self._transcript:
            if sender == index:
                items.extend((round_no, _canonical(payload)))
        return hashing.iter_digest("dgka-party-string", items)

    # Helpers for subclasses ------------------------------------------------------

    def _record(self, round_no: int, sender: int, payload: object) -> None:
        self._transcript.append((round_no, sender, payload))

    def _flatten_transcript(self):
        for round_no, sender, payload in self._transcript:
            yield round_no
            yield sender
            yield _canonical(payload)

    def _finish(self, group_element: int) -> None:
        """Derive the 32-byte session key from the agreed group element and
        the session id, then mark success."""
        raw = group_element.to_bytes((group_element.bit_length() + 7) // 8 or 1, "big")
        self._session_key = hashing.kdf(raw + self.sid, "dgka-session-key")
        self.acc = True


def _canonical(payload: object):
    if payload is None:
        return None
    if isinstance(payload, (int, bytes, str)):
        return payload
    if isinstance(payload, (tuple, list)):
        return tuple(_canonical(v) for v in payload)
    if isinstance(payload, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in payload.items()))
    raise ProtocolError(f"cannot canonicalize payload type {type(payload).__name__}")


class DgkaSession:
    """Synchronous driver for a list of co-located parties.

    The optional ``tamper`` hook receives ``(round_no, sender_index,
    payload)`` and returns the payload to actually deliver — the MITM and
    splicing adversaries of the test-suite plug in here.
    """

    def __init__(self, parties: Sequence[DgkaParty], tamper=None) -> None:
        if len({p.index for p in parties}) != len(parties):
            raise SessionError("duplicate party indices")
        self.parties = list(parties)
        self.tamper = tamper

    def run(self) -> None:
        if not self.parties:
            return
        rounds = self.parties[0].rounds
        for party in self.parties:
            if party.rounds != rounds:
                raise SessionError("parties disagree on round count")
        for round_no in range(rounds):
            payloads: Dict[int, object] = {}
            for party in self.parties:
                payload = party.emit(round_no)
                if payload is not None:
                    payloads[party.index] = payload
            for party in self.parties:
                delivered = {}
                for sender, payload in payloads.items():
                    if self.tamper is not None:
                        payload = self.tamper(round_no, sender, party.index, payload)
                    if payload is not None:
                        delivered[sender] = payload
                party.absorb(round_no, delivered)


def run_locally(parties: Sequence[DgkaParty], tamper=None) -> None:
    """Run a complete session among co-located parties."""
    DgkaSession(parties, tamper).run()
