"""GDH.2 group Diffie-Hellman (Steiner-Tsudik-Waidner [30]).

An upflow chain followed by one broadcast:

* Upflow round ``i`` (0 <= i < m-1): party ``i`` extends the chain.  Its
  message to party ``i+1`` is the set ``{g^{prod r_1..r_i / r_j} : j <= i}``
  together with the running value ``g^{r_1..r_i}``.
* Final round: party ``m-1`` computes ``K = (g^{r_1..r_{m-1}})^{r_{m-1}}``
  — wait, it *raises the running value* to ``r_{m-1}`` to get the key and
  broadcasts the per-party values ``g^{r_1..r_m / r_j}``; party ``j``
  computes ``K = (g^{r_1..r_m / r_j})^{r_j}``.

Cost: party ``i`` performs ``i + 1`` exponentiations; the last party does
``m`` — the O(m) exponentiation profile benchmark E9 contrasts with BD's
constant.  Fits the same round-driver as BD by treating "no message" rounds
as silent.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.crypto.modmath import mexp
from repro.crypto.params import DHParams, dh_group
from repro.dgka.base import DgkaParty
from repro.errors import ProtocolError


class GdhParty(DgkaParty):
    """One GDH.2 instance.

    Round layout for the synchronous driver: rounds ``0 .. m-2`` are upflow
    (only party ``round_no`` speaks; its payload is consumed by everybody
    but only party ``round_no + 1`` needs it before its own turn), round
    ``m-1`` is the final broadcast by party ``m-1``.
    """

    all_speak = False   # chain protocol: one speaker per round

    def __init__(self, index: int, m: int,
                 group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, m)
        self.group = group or dh_group(256)
        rng = rng or random
        self._r = self.group.random_exponent(rng)
        self._incoming: Optional[List[int]] = None

    @property
    def rounds(self) -> int:
        return self.m

    def emit(self, round_no: int):
        p, g = self.group.p, self.group.g
        if round_no != self.index:
            return None
        if self.index == 0:
            # Chain start: [g  (slot for j=0: g^{prod/r_0} = g), g^{r_0}].
            return (g, mexp(g, self._r, p))
        if self._incoming is None:
            raise ProtocolError(f"party {self.index} has no upflow input")
        values = self._incoming
        running = values[-1]
        partials = values[:-1]
        if self.index < self.m - 1:
            # Extend: new partials = old partials each ^ r_i, plus the old
            # running value (which is g^{prod/r_i} for the new set), then
            # the new running value.
            new_partials = [mexp(v, self._r, p) for v in partials]
            new_partials.append(running)
            new_running = mexp(running, self._r, p)
            return tuple(new_partials + [new_running])
        # Last party: broadcast g^{prod all / r_j} for every j < m-1, and
        # its own slot value = old running (so slot list has length m).
        finals = [mexp(v, self._r, p) for v in partials]
        finals.append(running)  # slot for self: g^{prod / r_{m-1}}
        return tuple(finals)

    def absorb(self, round_no: int, payloads: Dict[int, object]) -> None:
        expected_sender = round_no
        payload = payloads.get(expected_sender)
        if payload is None:
            if round_no == self.index:
                raise ProtocolError("driver dropped this party's own message")
            raise ProtocolError(f"missing GDH payload in round {round_no}")
        if not isinstance(payload, tuple) or not all(
            isinstance(v, int) and 1 <= v < self.group.p for v in payload
        ):
            raise ProtocolError(f"bad GDH payload from {expected_sender}")
        self._record(round_no, expected_sender, payload)
        if round_no < self.m - 1:
            if len(payload) != round_no + 2:
                raise ProtocolError("GDH upflow payload has wrong arity")
            if self.index == round_no + 1:
                self._incoming = list(payload)
        else:
            if len(payload) != self.m:
                raise ProtocolError("GDH broadcast payload has wrong arity")
            if self.index == self.m - 1:
                # The last party derived the key when emitting; recompute
                # here so key material is set after absorb for everyone.
                key = mexp(self._incoming[-1], self._r, self.group.p)
            else:
                key = mexp(payload[self.index], self._r, self.group.p)
            self._finish(key)


def make_parties(m: int, group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None):
    """Convenience: the m party objects for one GDH.2 session."""
    return [GdhParty(i, m, group, rng) for i in range(m)]
