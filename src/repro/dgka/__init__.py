"""Building block III: distributed group key agreement (paper Section 6,
Fig. 5).

* :mod:`repro.dgka.burmester_desmedt` — the Burmester-Desmedt conference
  key protocol [11]: two broadcast rounds, a constant number of modular
  exponentiations per party.  The default DGKA of both GCD instantiations.
* :mod:`repro.dgka.gdh` — GDH.2 (Steiner-Tsudik-Waidner [30]): an
  upflow/broadcast chain with O(m) exponentiations for the last party;
  implemented as the comparison point for benchmark E9.

Both are deliberately *unauthenticated* ("raw") as Fig. 5 requires; the
man-in-the-middle exposure this creates is exactly what the GCD Phase-II
MAC (keyed with the CGKD group key) repairs — see benchmark E11.
"""

from repro.dgka.base import DgkaParty, DgkaSession, run_locally  # noqa: F401
