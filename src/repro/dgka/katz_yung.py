"""Katz-Yung-style authenticated group key agreement (CRYPTO 2003, [21]).

The paper's DGKA definition is deliberately *unauthenticated* (Fig. 5
remark) because GCD's Phase II supplies authentication through the CGKD
key.  Katz-Yung showed the complementary route: a generic compiler that
turns any secure unauthenticated protocol into an authenticated one by
(1) prefixing a round of fresh nonces and (2) signing every message
together with the nonce vector, under long-lived signature keys.

We implement that compiler over Burmester-Desmedt.  It is *not* used by
GCD (it would destroy anonymity: signatures identify the signers!) — it
exists as the comparison point the paper's design implicitly argues
against, and the test-suite demonstrates both facts:

* the MITM splitter that silently defeats raw BD is detected here, and
* the transcript openly reveals the participants' identities,
  which is exactly why GCD authenticates with MACs under the secret
  group key instead.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.crypto import hashing
from repro.crypto.params import DHParams, dh_group
from repro.crypto.sigma import SchnorrSignature
from repro.dgka.base import DgkaParty
from repro.dgka.burmester_desmedt import BurmesterDesmedtParty
from repro.errors import ProtocolError


def keygen(group: Optional[DHParams] = None,
           rng: Optional[random.Random] = None) -> Tuple[int, int]:
    """Long-lived signature keypair for one principal: (public, secret)."""
    return SchnorrSignature.keygen(group or dh_group(256), rng)


class KatzYungParty(DgkaParty):
    """Authenticated BD: nonce round + signed protocol messages.

    ``directory`` maps party index -> long-lived public key; each party
    holds its own ``secret``.  Round 0 broadcasts nonces; rounds 1..2 are
    the BD rounds, each signed over (index, round, payload, nonce-vector).
    """

    def __init__(self, index: int, m: int, secret: int,
                 directory: Dict[int, int],
                 group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, m)
        if set(directory) != set(range(m)):
            raise ProtocolError("directory must cover every party index")
        self.group = group or dh_group(256)
        self._rng = rng if rng is not None else random.Random()
        self._secret = secret
        self._directory = dict(directory)
        self._inner = BurmesterDesmedtParty(index, m, self.group, self._rng)
        self._nonces: Dict[int, int] = {}

    @property
    def rounds(self) -> int:
        return 1 + self._inner.rounds

    def _nonce_vector(self) -> Tuple[int, ...]:
        return tuple(self._nonces[i] for i in sorted(self._nonces))

    def emit(self, round_no: int):
        if round_no == 0:
            return ("nonce", self._rng.getrandbits(128))
        inner_payload = self._inner.emit(round_no - 1)
        body = hashing.encode(
            "ky-auth", self.index, round_no, inner_payload, self._nonce_vector()
        )
        signature = SchnorrSignature.sign(self.group, self._secret, body,
                                          self._rng)
        return ("signed", inner_payload, signature.challenge,
                signature.response)

    def absorb(self, round_no: int, payloads: Dict[int, object]) -> None:
        if set(payloads) != set(range(self.m)):
            raise ProtocolError("KY needs a payload from every party")
        if round_no == 0:
            for sender, payload in sorted(payloads.items()):
                kind, nonce = payload
                if kind != "nonce" or not isinstance(nonce, int):
                    raise ProtocolError(f"bad nonce payload from {sender}")
                self._nonces[sender] = nonce
                self._record(round_no, sender, payload)
            return
        inner_payloads = {}
        for sender, payload in sorted(payloads.items()):
            kind, inner, challenge, response = payload
            if kind != "signed":
                raise ProtocolError(f"unsigned KY payload from {sender}")
            body = hashing.encode(
                "ky-auth", sender, round_no, inner, self._nonce_vector()
            )
            signature = SchnorrSignature(challenge, response)
            if not signature.verify(self.group, self._directory[sender], body):
                raise ProtocolError(
                    f"authentication failure: bad signature from {sender}"
                )
            inner_payloads[sender] = inner
            self._record(round_no, sender, payload)
        self._inner.absorb(round_no - 1, inner_payloads)
        if self._inner.acc:
            self._finish_from_inner()

    def _finish_from_inner(self) -> None:
        # Re-derive from the inner session key, bound to the authenticated
        # transcript (including nonces and signatures).
        seed = self._inner.session_key + self.sid
        self._session_key = hashing.kdf(seed, "ky-session-key")
        self.acc = True

    @property
    def session_key(self) -> bytes:
        if not self.acc or self._session_key is None:
            raise ProtocolError("session key unavailable")
        return self._session_key


def make_parties(m: int, group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None):
    """A ready-made KY session: generates the PKI directory too."""
    group = group or dh_group(256)
    rng = rng if rng is not None else random.Random()
    keys = [keygen(group, rng) for _ in range(m)]
    directory = {i: keys[i][0] for i in range(m)}
    return [
        KatzYungParty(i, m, keys[i][1], directory, group, rng)
        for i in range(m)
    ]
