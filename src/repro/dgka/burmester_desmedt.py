"""Burmester-Desmedt conference key agreement [11] (the "BD" protocol).

Two broadcast rounds over a safe-prime group:

* Round 0: party ``i`` broadcasts ``z_i = g^{r_i}``.
* Round 1: party ``i`` broadcasts ``X_i = (z_{i+1} / z_{i-1})^{r_i}``
  (indices cyclic mod m).
* Key:   ``K = z_{i-1}^{m * r_i} * X_i^{m-1} * X_{i+1}^{m-2} * ... *
  X_{i+m-2}^{1} = g^{r_1 r_2 + r_2 r_3 + ... + r_m r_1}``.

Each party computes a *constant* number of exponentiations (3, plus the
O(m) small multiplications of the key assembly) — the property benchmark
E9 contrasts with GDH's O(m).  The protocol is unauthenticated by design
(Fig. 5); MITM resistance comes from the surrounding GCD handshake.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.crypto.modmath import inverse, mexp
from repro.crypto.params import DHParams, dh_group
from repro.dgka.base import DgkaParty
from repro.errors import ProtocolError


class BurmesterDesmedtParty(DgkaParty):
    """One BD instance."""

    def __init__(self, index: int, m: int,
                 group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, m)
        self.group = group or dh_group(256)
        rng = rng or random
        self._r = self.group.random_exponent(rng)
        self._z: Dict[int, int] = {}
        self._x: Dict[int, int] = {}

    @property
    def rounds(self) -> int:
        return 2

    def emit(self, round_no: int):
        if round_no == 0:
            return self.group.power_of_g(self._r)
        if round_no == 1:
            left = self._z[(self.index - 1) % self.m]
            right = self._z[(self.index + 1) % self.m]
            ratio = (right * inverse(left, self.group.p)) % self.group.p
            return mexp(ratio, self._r, self.group.p)
        raise ProtocolError(f"BD has no round {round_no}")

    def absorb(self, round_no: int, payloads: Dict[int, object]) -> None:
        if set(payloads) != set(range(self.m)):
            raise ProtocolError("BD needs a payload from every party")
        for sender in sorted(payloads):
            value = payloads[sender]
            if not isinstance(value, int) or not 1 <= value < self.group.p:
                raise ProtocolError(f"bad BD payload from {sender}")
            self._record(round_no, sender, value)
        if round_no == 0:
            self._z = dict(payloads)  # type: ignore[arg-type]
        elif round_no == 1:
            self._x = dict(payloads)  # type: ignore[arg-type]
            self._compute_key()
        else:
            raise ProtocolError(f"BD has no round {round_no}")

    def _compute_key(self) -> None:
        p, m = self.group.p, self.m
        left = self._z[(self.index - 1) % m]
        key = mexp(left, m * self._r, p)
        for offset in range(m - 1):
            x = self._x[(self.index + offset) % m]
            key = (key * mexp(x, m - 1 - offset, p)) % p
        self._finish(key)


def make_parties(m: int, group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None):
    """Convenience: the m party objects for one BD session."""
    return [BurmesterDesmedtParty(i, m, group, rng) for i in range(m)]
