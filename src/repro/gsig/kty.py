"""Kiayias-(Tsiounis-)Yung traceable-signature variant (paper Appendix H)
with the self-distinction modification of Section 8.2.

Member key: ``(A, e, x, xt)`` with ``A^e = a0 * a^x * b^xt (mod n)``, where

* ``x``  — the *tracing trapdoor*, known to both the member and the group
  manager (this is what lets the GM trace and lets members check a CRL);
* ``xt`` — known only to the member (``x'`` in the paper; gives
  no-misattribution and powers the self-distinction tags).

A signature carries the seven values of Appendix H::

    T1 = A y^w   T2 = g^w   T3 = g^e h^w          (identity escrow)
    T4 = T5^x    T5 = g^k                          (GM tracing via x)
    T6 = T7^xt   T7 = g^k'                         (claiming / distinction)

plus a Fiat-Shamir SPK of ``(e, x, xt, w, ew, k)`` tying everything
together.  The paper's observation: ``T7`` is only an "anonymity shield" —
the signer need not prove knowledge of ``k'``.  So if a *common* ``T7`` is
imposed on all handshake participants (derived via an ideal hash from the
session transcript), each participant is forced to reveal a deterministic
``T6 = T7^xt`` — distinct signers yield distinct ``T6`` values, giving
**self-distinction**, while fresh ``T7`` values across sessions preserve
unlinkability.  :func:`common_shield` implements the hash-derived base, and
``sign(..., shield=...)`` the modified signing.

Because signatures by the same signer under the same ``T7`` are linkable by
design, this scheme offers *anonymity* (not full-anonymity) — exactly the
weakening Theorems 2/3 of the paper account for.

Revocation is CRL-based via the tracing trapdoor (the GM publishes revoked
members' ``x`` values to current members; verifiers reject any signature
with ``T4 == T5^x`` for a revoked ``x``).  This matches the KTY implicit-
tracing mechanism and keeps unrevoked members unlinkable.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.accel.fixed_base import register_base
from repro.crypto import hashing
from repro.crypto.modmath import (
    int_in_symmetric_range,
    inverse,
    mexp,
    random_int_symmetric,
)
from repro.crypto.params import AcjtLengths, acjt_profile
from repro.crypto.primes import random_prime_in_interval
from repro.crypto.rsa import RsaGroup, generators
from repro.errors import (
    MembershipError,
    ParameterError,
    RevocationError,
    VerificationError,
)
from repro.gsig.base import (
    GroupMemberCredential,
    GroupSignatureManager,
    GroupSignatureScheme,
    StateUpdate,
)

_CHALLENGE_DOMAIN = "kty-spk"
_JOIN_DOMAIN = "kty-join-pok"
_SHIELD_DOMAIN = "kty-common-shield"


@dataclass(frozen=True)
class KtyPublicKey:
    """Group public key: n, a, a0, b, g, h, y (Appendix H parameters)."""

    n: int
    lengths: AcjtLengths
    a: int
    a0: int
    b: int
    g: int
    h: int
    y: int


@dataclass(frozen=True)
class KtyMemberView:
    """Member-side verification state: the CRL of revoked tracing trapdoors
    (known only to current members, per SHS.CreateGroup)."""

    revoked_tags: FrozenSet[int]
    epoch: int


@dataclass(frozen=True)
class KtyJoinRequest:
    user_id: str
    commitment: int  # C = b^xt
    challenge: int
    response: int


@dataclass(frozen=True)
class KtyJoinResponse:
    big_a: int
    e: int
    x: int
    epoch: int


@dataclass(frozen=True)
class KtySignature:
    t1: int
    t2: int
    t3: int
    t4: int
    t5: int
    t6: int
    t7: int
    challenge: int
    s_e: int
    s_x: int
    s_xt: int
    s_z: int  # for e*w
    s_w: int
    s_k: int
    shielded: bool  # True when T7 is an externally imposed common base


def common_shield(pk: KtyPublicKey, *context) -> int:
    """The paper's ideal-hash-derived common T7 base for a handshake
    session: H : {0,1}* -> QR(n) applied to the session context (e.g. the
    concatenation of all DGKA messages)."""
    return hashing.hash_to_qr(_SHIELD_DOMAIN, pk.n, *context)


def _spk_challenge(pk: KtyPublicKey, message: bytes,
                   t_values: Tuple[int, ...], d_values: Tuple[int, ...]) -> int:
    return hashing.hash_to_int(
        _CHALLENGE_DOMAIN, pk.lengths.k,
        pk.n, pk.a, pk.a0, pk.b, pk.g, pk.h, pk.y,
        message, tuple(t_values), tuple(d_values),
    )


# ---------------------------------------------------------------------------
# Join protocol.
# ---------------------------------------------------------------------------


def begin_join(pk: KtyPublicKey, user_id: str,
               rng: Optional[random.Random] = None) -> Tuple[KtyJoinRequest, int]:
    """User step 1: pick the private ``xt``, commit ``C = b^xt``, prove it.

    Returns ``(request, xt)``."""
    rng = rng or random
    lengths = pk.lengths
    xt = rng.randrange(lengths.x_low + 1, lengths.x_high)
    commitment = mexp(pk.b, xt, pk.n)
    t = random_int_symmetric(lengths.epsilon * (lengths.lambda2 + lengths.k), rng)
    d = mexp(pk.b, t, pk.n)
    challenge = hashing.hash_to_int(
        _JOIN_DOMAIN, lengths.k, pk.n, pk.b, user_id, commitment, d
    )
    response = t - challenge * (xt - (1 << lengths.lambda1))
    return KtyJoinRequest(user_id, commitment, challenge, response), xt


def _verify_join_request(pk: KtyPublicKey, request: KtyJoinRequest) -> bool:
    lengths = pk.lengths
    if not int_in_symmetric_range(
        request.response, lengths.epsilon * (lengths.lambda2 + lengths.k) + 1
    ):
        return False
    if not 1 < request.commitment < pk.n:
        return False
    shifted = request.response - request.challenge * (1 << lengths.lambda1)
    d = (
        mexp(request.commitment, request.challenge, pk.n)
        * mexp(pk.b, shifted, pk.n)
    ) % pk.n
    expected = hashing.hash_to_int(
        _JOIN_DOMAIN, lengths.k, pk.n, pk.b, request.user_id, request.commitment, d
    )
    return expected == request.challenge


def finish_join(pk: KtyPublicKey, user_id: str, xt: int,
                response: KtyJoinResponse) -> "KtyCredential":
    """User step 2: check ``A^e = a0 a^x b^xt`` and build the credential."""
    lhs = mexp(response.big_a, response.e, pk.n)
    rhs = (
        pk.a0 * mexp(pk.a, response.x, pk.n) * mexp(pk.b, xt, pk.n)
    ) % pk.n
    if lhs != rhs:
        raise VerificationError("manager issued an invalid KTY certificate")
    if not pk.lengths.e_low < response.e < pk.lengths.e_high:
        raise VerificationError("certificate prime outside Gamma")
    if not pk.lengths.x_low < response.x < pk.lengths.x_high:
        raise VerificationError("tracing trapdoor outside Lambda")
    return KtyCredential(
        public_key=pk, user_id=user_id,
        big_a=response.big_a, e=response.e, x=response.x, xt=xt,
        epoch=response.epoch,
    )


# ---------------------------------------------------------------------------
# Manager.
# ---------------------------------------------------------------------------


@dataclass
class _MemberRecord:
    user_id: str
    big_a: int
    e: int
    x: int
    revoked: bool = False


class KtyManager(GroupSignatureManager):
    """GM for the KTY variant: holds the opening trapdoor theta and the
    per-member tracing trapdoors x."""

    def __init__(self, profile: str = "tiny",
                 rng: Optional[random.Random] = None) -> None:
        rng = rng or random
        self._lengths = acjt_profile(profile)
        self._group = RsaGroup.from_precomputed(self._lengths.lp)
        a, a0, b, g, h = generators(self._group, 5, rng)
        self._theta = rng.randrange(1, self._group.n // 4)
        y = self._group.exp(g, self._theta)
        self._pk = KtyPublicKey(
            n=self._group.n, lengths=self._lengths,
            a=a, a0=a0, b=b, g=g, h=h, y=y,
        )
        # Long-lived bases for repro.accel's fixed-base tables (the ACJT
        # manager has done this since the accel layer landed; the KTY
        # verifier exponentiates a, b, g, h, y just as hard).
        for base in (a, a0, b, g, h, y):
            register_base(base, self._group.n)
        self._members: Dict[str, _MemberRecord] = {}
        self._by_big_a: Dict[int, str] = {}
        self._revoked_tags: set = set()
        self._epoch = 0
        self._rng = rng

    @property
    def public_key(self) -> KtyPublicKey:
        return self._pk

    @property
    def lengths(self) -> AcjtLengths:
        return self._lengths

    def member_view(self) -> KtyMemberView:
        return KtyMemberView(
            revoked_tags=frozenset(self._revoked_tags), epoch=self._epoch
        )

    def admit(self, request: KtyJoinRequest) -> Tuple[KtyJoinResponse, StateUpdate]:
        if request.user_id in self._members:
            raise MembershipError(f"{request.user_id} already joined")
        if not _verify_join_request(self._pk, request):
            raise VerificationError("join request proof rejected")
        lengths = self._lengths
        x = self._rng.randrange(lengths.x_low + 1, lengths.x_high)
        while True:
            e = random_prime_in_interval(lengths.e_low, lengths.e_high, self._rng)
            if self._group.coprime_to_order(e):
                break
        base = (
            self._pk.a0
            * self._group.exp(self._pk.a, x)
            * request.commitment
        ) % self._pk.n
        big_a = self._group.exp(base, self._group.invert_exponent(e))
        self._members[request.user_id] = _MemberRecord(request.user_id, big_a, e, x)
        self._by_big_a[big_a] = request.user_id
        self._epoch += 1
        response = KtyJoinResponse(big_a=big_a, e=e, x=x, epoch=self._epoch)
        update = StateUpdate(epoch=self._epoch, kind="join", payload={})
        return response, update

    def join(self, user_id: str, rng=None) -> Tuple["KtyCredential", StateUpdate]:
        """Convenience one-call Join running both sides locally."""
        request, xt = begin_join(self._pk, user_id, rng or self._rng)
        response, update = self.admit(request)
        return finish_join(self._pk, user_id, xt, response), update

    def revoke(self, user_id: str) -> StateUpdate:
        record = self._members.get(user_id)
        if record is None:
            raise MembershipError(f"unknown member {user_id}")
        if record.revoked:
            raise RevocationError(f"{user_id} already revoked")
        record.revoked = True
        self._revoked_tags.add(record.x)
        self._epoch += 1
        return StateUpdate(
            epoch=self._epoch, kind="revoke", payload={"revoked_tag": record.x}
        )

    def revoke_batch(self, user_ids: Sequence[str]) -> StateUpdate:
        """Revoke several members in one epoch: the CRL analogue of the
        accumulator's batched delete — one epoch bump, one update record
        carrying every newly revoked tracing tag."""
        ids = list(user_ids)
        if not ids:
            raise RevocationError("empty revocation batch")
        if len(set(ids)) != len(ids):
            raise RevocationError("duplicate user in revocation batch")
        records = []
        for user_id in ids:
            record = self._members.get(user_id)
            if record is None:
                raise MembershipError(f"unknown member {user_id}")
            if record.revoked:
                raise RevocationError(f"{user_id} already revoked")
            records.append(record)
        tags = tuple(record.x for record in records)
        for record in records:
            record.revoked = True
        self._revoked_tags.update(tags)
        self._epoch += 1
        return StateUpdate(
            epoch=self._epoch, kind="epoch", payload={"revoked_tags": tags}
        )

    def open(self, message: bytes, signature: KtySignature,
             member_view: Optional[KtyMemberView] = None) -> Optional[str]:
        """Open via the escrow pair: A = T1 / T2^theta."""
        view = member_view or self.member_view()
        if not verify(self._pk, message, signature, view):
            return None
        big_a = (
            signature.t1
            * inverse(self._group.exp(signature.t2, self._theta), self._pk.n)
        ) % self._pk.n
        return self._by_big_a.get(big_a)

    def trace_tag(self, user_id: str) -> int:
        """The tracing trapdoor x for ``user_id`` (GM-side tracing)."""
        record = self._members.get(user_id)
        if record is None:
            raise MembershipError(f"unknown member {user_id}")
        return record.x

    def signature_is_by(self, signature: KtySignature, user_id: str) -> bool:
        """KTY implicit tracing: check T4 == T5^x for the user's trapdoor."""
        x = self.trace_tag(user_id)
        return mexp(signature.t5, x, self._pk.n) == signature.t4

    def is_member(self, user_id: str) -> bool:
        record = self._members.get(user_id)
        return record is not None and not record.revoked


# ---------------------------------------------------------------------------
# Member credential & signing.
# ---------------------------------------------------------------------------


@dataclass
class KtyCredential(GroupMemberCredential):
    public_key: KtyPublicKey
    user_id: str
    big_a: int
    e: int
    x: int = field(repr=False)
    xt: int = field(repr=False)
    epoch: int = 0
    revoked: bool = False
    _revoked_tags: set = field(default_factory=set, repr=False)

    def apply_update(self, update: StateUpdate) -> None:
        if update.epoch <= self.epoch:
            return  # Stale replay (board posts carry increasing epochs).
        if update.kind == "join":
            pass  # No member-side state for joins in the KTY variant.
        elif update.kind == "revoke":
            tag = update.payload["revoked_tag"]
            if tag == self.x:
                self.revoked = True
            self._revoked_tags.add(tag)
        elif update.kind == "epoch":
            tags = tuple(update.payload["revoked_tags"])
            if self.x in tags:
                self.revoked = True
            self._revoked_tags.update(tags)
        else:
            raise ParameterError(f"unknown update kind {update.kind!r}")
        self.epoch = update.epoch

    def member_view(self) -> KtyMemberView:
        """This member's local view (CRL) for verifying peers' signatures."""
        return KtyMemberView(revoked_tags=frozenset(self._revoked_tags),
                             epoch=self.epoch)

    def sign(self, message: bytes, rng: Optional[random.Random] = None,
             shield: Optional[int] = None) -> KtySignature:
        """Sign ``message``.

        ``shield`` — if given, the common T7 base of the self-distinction
        mode (Section 8.2): T7 := shield and T6 = T7^xt becomes
        deterministic for this session.  If ``None``, a fresh random T7 is
        used (plain Appendix-H signing).
        """
        if self.revoked:
            raise RevocationError("credential has been revoked")
        rng = rng or random
        pk = self.public_key
        n, lengths = pk.n, pk.lengths
        eps, k_len = lengths.epsilon, lengths.k
        two_lp = 2 * lengths.lp

        w = rng.getrandbits(two_lp)
        k = rng.getrandbits(two_lp)
        t1 = (self.big_a * mexp(pk.y, w, n)) % n
        t2 = mexp(pk.g, w, n)
        t3 = (mexp(pk.g, self.e, n) * mexp(pk.h, w, n)) % n
        t5 = mexp(pk.g, k, n)
        t4 = mexp(t5, self.x, n)
        if shield is None:
            k_prime = rng.getrandbits(two_lp)
            t7 = mexp(pk.g, k_prime, n)
            shielded = False
        else:
            if not 1 < shield < n:
                raise ParameterError("shield out of range")
            t7 = shield % n
            shielded = True
        t6 = mexp(t7, self.xt, n)

        t_e = random_int_symmetric(eps * (lengths.gamma2 + k_len), rng)
        t_x = random_int_symmetric(eps * (lengths.lambda2 + k_len), rng)
        t_xt = random_int_symmetric(eps * (lengths.lambda2 + k_len), rng)
        t_z = random_int_symmetric(eps * (lengths.gamma1 + two_lp + k_len + 1), rng)
        t_w = random_int_symmetric(eps * (two_lp + k_len), rng)
        t_k = random_int_symmetric(eps * (two_lp + k_len), rng)

        d1 = (
            mexp(t1, t_e, n)
            * inverse(
                (mexp(pk.a, t_x, n) * mexp(pk.b, t_xt, n) * mexp(pk.y, t_z, n)) % n,
                n,
            )
        ) % n
        d2 = (mexp(t2, t_e, n) * inverse(mexp(pk.g, t_z, n), n)) % n
        d3 = mexp(pk.g, t_w, n)
        d4 = (mexp(pk.g, t_e, n) * mexp(pk.h, t_w, n)) % n
        d5 = mexp(pk.g, t_k, n)
        d6 = mexp(t5, t_x, n)
        d7 = mexp(t7, t_xt, n)

        challenge = _spk_challenge(
            pk, message, (t1, t2, t3, t4, t5, t6, t7),
            (d1, d2, d3, d4, d5, d6, d7),
        )

        return KtySignature(
            t1=t1, t2=t2, t3=t3, t4=t4, t5=t5, t6=t6, t7=t7,
            challenge=challenge,
            s_e=t_e - challenge * (self.e - (1 << lengths.gamma1)),
            s_x=t_x - challenge * (self.x - (1 << lengths.lambda1)),
            s_xt=t_xt - challenge * (self.xt - (1 << lengths.lambda1)),
            s_z=t_z - challenge * (self.e * w),
            s_w=t_w - challenge * w,
            s_k=t_k - challenge * k,
            shielded=shielded,
        )

    def distinction_tag(self, shield: int) -> int:
        """The deterministic T6 this member would produce for ``shield``."""
        return mexp(shield, self.xt, self.public_key.n)

    def claim(self, signature: KtySignature,
              rng: Optional[random.Random] = None) -> "KtyClaim":
        """Claim authorship of one of this member's signatures.

        Appendix H: "(T6, T7) allows one to claim its signatures" — the
        claimer proves knowledge of ``xt`` with ``T6 = T7^xt``, without
        revealing ``xt`` and without affecting any *other* signature's
        anonymity (each unshielded signature has its own fresh T7).
        """
        if mexp(signature.t7, self.xt, self.public_key.n) != signature.t6:
            raise VerificationError("cannot claim a signature by someone else")
        return KtyClaim.create(self.public_key, signature, self.xt, rng)


# ---------------------------------------------------------------------------
# Verification.
# ---------------------------------------------------------------------------


def spk_structural_ok(pk: KtyPublicKey, signature: KtySignature,
                      expected_shield: Optional[int] = None) -> bool:
    """The cheap Verify prechecks, in their exact original order: shield
    match, response-interval checks, and range/coprimality of the seven
    T values.  Shared by :func:`verify` and :mod:`repro.accel.batch`."""
    lengths = pk.lengths
    n = pk.n
    eps, k_len = lengths.epsilon, lengths.k
    two_lp = 2 * lengths.lp

    if expected_shield is not None and signature.t7 != expected_shield % n:
        return False
    if not int_in_symmetric_range(signature.s_e, eps * (lengths.gamma2 + k_len) + 1):
        return False
    if not int_in_symmetric_range(signature.s_x, eps * (lengths.lambda2 + k_len) + 1):
        return False
    if not int_in_symmetric_range(signature.s_xt, eps * (lengths.lambda2 + k_len) + 1):
        return False
    if not int_in_symmetric_range(signature.s_z, eps * (lengths.gamma1 + two_lp + k_len + 1) + 1):
        return False
    if not int_in_symmetric_range(signature.s_w, eps * (two_lp + k_len) + 1):
        return False
    if not int_in_symmetric_range(signature.s_k, eps * (two_lp + k_len) + 1):
        return False
    for value in (signature.t1, signature.t2, signature.t3, signature.t4,
                  signature.t5, signature.t6, signature.t7):
        if not 1 <= value < n or math.gcd(value, n) != 1:
            return False
    return True


def spk_d_groups(pk: KtyPublicKey, signature: KtySignature,
                 ) -> Tuple[Tuple[Tuple[Tuple[int, int], ...],
                                  Tuple[Tuple[int, int], ...]], ...]:
    """The seven SPK reconstruction equations as ``(numerator_terms,
    denominator_terms)`` pairs of ``(base, exponent)`` tuples, in
    challenge-hash order: ``d_i = prod(num) * inverse(prod(den))``.

    The split (rather than folding denominators into negative exponents)
    preserves the verifier's exact operation pattern — one ``inverse``
    per non-empty denominator *product*, not per term — which is what
    keeps the ``inversions`` counter identical however the equations are
    evaluated (see :func:`eval_d_group`)."""
    c = signature.challenge
    lengths = pk.lengths
    se_hat = signature.s_e - c * (1 << lengths.gamma1)
    sx_hat = signature.s_x - c * (1 << lengths.lambda1)
    sxt_hat = signature.s_xt - c * (1 << lengths.lambda1)
    return (
        (((pk.a0, c), (signature.t1, se_hat)),
         ((pk.a, sx_hat), (pk.b, sxt_hat), (pk.y, signature.s_z))),
        (((signature.t2, se_hat),), ((pk.g, signature.s_z),)),
        (((signature.t2, c), (pk.g, signature.s_w)), ()),
        (((signature.t3, c), (pk.g, se_hat), (pk.h, signature.s_w)), ()),
        (((signature.t5, c), (pk.g, signature.s_k)), ()),
        (((signature.t4, c), (signature.t5, sx_hat)), ()),
        (((signature.t6, c), (signature.t7, sxt_hat)), ()),
    )


def eval_d_group(group: Tuple[Tuple[Tuple[int, int], ...],
                              Tuple[Tuple[int, int], ...]], n: int) -> int:
    """Evaluate one :func:`spk_d_groups` pair with the verifier's exact
    operation pattern: one ``mexp`` per term (negative exponents handled
    inside ``mexp``, as before), one ``inverse`` per non-empty
    denominator product."""
    numerator, denominator = group
    value = 1
    for base, exponent in numerator:
        value = (value * mexp(base, exponent, n)) % n
    if denominator:
        product = 1
        for base, exponent in denominator:
            product = (product * mexp(base, exponent, n)) % n
        value = (value * inverse(product, n)) % n
    return value


def spk_challenge(pk: KtyPublicKey, message: bytes, signature: KtySignature,
                  d_values: Tuple[int, ...]) -> int:
    """Recompute the Fiat-Shamir challenge for ``signature`` given its
    reconstructed ``d`` values."""
    return _spk_challenge(
        pk, message,
        (signature.t1, signature.t2, signature.t3, signature.t4,
         signature.t5, signature.t6, signature.t7),
        d_values,
    )


def crl_ok(pk: KtyPublicKey, signature: KtySignature,
           member_view: KtyMemberView) -> bool:
    """CRL check (KTY implicit tracing): reject revoked tracing
    trapdoors — ``T4 == T5^x`` exposes a revoked signer."""
    for tag in member_view.revoked_tags:
        if mexp(signature.t5, tag, pk.n) == signature.t4:
            return False
    return True


def verify(pk: KtyPublicKey, message: bytes, signature: KtySignature,
           member_view: KtyMemberView,
           expected_shield: Optional[int] = None) -> bool:
    """Verify a KTY signature against the member's view (CRL).

    ``expected_shield`` — in self-distinction mode, the common T7 the
    session imposes; a signature with any other T7 is rejected.
    """
    if not spk_structural_ok(pk, signature, expected_shield):
        return False
    n = pk.n
    d_values = tuple(
        eval_d_group(group, n) for group in spk_d_groups(pk, signature)
    )
    expected = spk_challenge(pk, message, signature, d_values)
    if expected != signature.challenge:
        return False
    return crl_ok(pk, signature, member_view)


@dataclass(frozen=True)
class KtyClaim:
    """NIZK proof of knowledge of ``xt`` with ``T6 = T7^xt`` for a specific
    signature — the KTY claiming operation.  The challenge binds the whole
    signature, so a claim cannot be transplanted onto another one."""

    challenge: int
    response: int

    @staticmethod
    def create(pk: KtyPublicKey, signature: KtySignature, xt: int,
               rng: Optional[random.Random] = None) -> "KtyClaim":
        rng = rng or random
        lengths = pk.lengths
        t = random_int_symmetric(
            lengths.epsilon * (lengths.lambda2 + lengths.k), rng
        )
        d = mexp(signature.t7, t, pk.n)
        challenge = hashing.hash_to_int(
            "kty-claim", lengths.k,
            pk.n, signature.t6, signature.t7, signature.challenge, d,
        )
        response = t - challenge * (xt - (1 << lengths.lambda1))
        return KtyClaim(challenge, response)

    def verify(self, pk: KtyPublicKey, signature: KtySignature) -> bool:
        lengths = pk.lengths
        if not int_in_symmetric_range(
            self.response, lengths.epsilon * (lengths.lambda2 + lengths.k) + 1
        ):
            return False
        shifted = self.response - self.challenge * (1 << lengths.lambda1)
        d = (
            mexp(signature.t6, self.challenge, pk.n)
            * mexp(signature.t7, shifted, pk.n)
        ) % pk.n
        expected = hashing.hash_to_int(
            "kty-claim", lengths.k,
            pk.n, signature.t6, signature.t7, signature.challenge, d,
        )
        return expected == self.challenge


def check_self_distinction(signatures: Sequence[KtySignature],
                           shield: int) -> bool:
    """True iff every signature uses the common shield and all T6 tags are
    pairwise distinct — i.e. all signers are distinct (Section 8.2)."""
    tags = []
    for signature in signatures:
        if signature.t7 != shield:
            return False
        tags.append(signature.t6)
    return len(set(tags)) == len(tags)


class KtyScheme(GroupSignatureScheme):
    """Factory conforming to :class:`GroupSignatureScheme`."""

    name = "kty"

    def __init__(self, profile: str = "tiny") -> None:
        self._profile = profile

    def setup(self, rng=None) -> KtyManager:
        return KtyManager(self._profile, rng)

    def verify(self, public_key: KtyPublicKey, message: bytes,
               signature: KtySignature, member_state=None) -> bool:
        view = member_state or KtyMemberView(frozenset(), 0)
        return verify(public_key, message, signature, view)
