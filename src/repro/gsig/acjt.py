"""ACJT group signatures (Ateniese, Camenisch, Joye, Tsudik — CRYPTO 2000)
with dynamic-accumulator revocation (Camenisch-Lysyanskaya, CRYPTO 2002).

This is the GSIG component of the paper's first instantiation (Section 8.1,
"GSIG based on [1, 12]").

Structure
---------
* Setup: RSA modulus ``n = pq`` of safe primes; random QR(n) generators
  ``a, a0, g, h``; opening key ``y = g^theta``; accumulator for revocation;
  Pedersen bases for the accumulator membership proof.
* Join (interactive, 2 messages): the user picks membership secret
  ``x in Lambda`` and sends ``C = a^x`` with a proof of knowledge; the
  manager picks certificate prime ``e in Gamma``, computes
  ``A = (a0 * C)^{1/e} mod n`` and accumulates ``e``.  The user ends with
  credential ``(A, e, x)`` satisfying ``A^e = a0 * a^x``; the manager never
  learns ``x`` (required for no-misattribution).
* Sign: ``T1 = A y^w, T2 = g^w, T3 = g^e h^w`` plus a Fiat-Shamir SPK of
  ``(x, e, w, ew)`` with interval checks on ``x`` and ``e`` — and, fused
  under the *same challenge*, a Camenisch-Lysyanskaya proof that the very
  same ``e`` is currently accumulated (revocation check).  Sharing the
  ``s_e`` response across both sub-proofs binds the accumulated prime to
  the certificate prime, which defeats the mix-and-match attack where a
  revoked member borrows a non-revoked member's accumulator witness.
* Verify: recompute the challenge; check response intervals and the
  accumulator epoch.
* Open: ``A = T1 / T2^theta``; look up ``A`` in the membership registry.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro import metrics
from repro.accel.fixed_base import register_base, unregister_base
from repro.accel.multi_exp import multi_exp
from repro.crypto import hashing
from repro.crypto.accumulator import (
    Accumulator,
    AccumulatorPublic,
    update_witness_after_add,
    update_witness_after_delete,
    update_witness_epoch,
    verify_witness,
)
from repro.crypto.modmath import (
    int_in_symmetric_range,
    inverse,
    mexp,
    random_int_symmetric,
)
from repro.crypto.params import AcjtLengths, acjt_profile
from repro.crypto.primes import random_prime_in_interval
from repro.crypto.rsa import RsaGroup, generators
from repro.errors import (
    MembershipError,
    ParameterError,
    RevocationError,
    VerificationError,
)
from repro.gsig.base import (
    GroupMemberCredential,
    GroupSignatureManager,
    GroupSignatureScheme,
    StateUpdate,
)

_CHALLENGE_DOMAIN = "acjt-spk"
_JOIN_DOMAIN = "acjt-join-pok"


@dataclass(frozen=True)
class AcjtPublicKey:
    """Group public key pk_GM (plus accumulator-proof bases)."""

    n: int
    lengths: AcjtLengths
    a: int
    a0: int
    g: int
    h: int
    y: int
    ped_g: int
    ped_h: int


@dataclass(frozen=True)
class AcjtMemberView:
    """The member-side system state required by ``Verify``: the current
    accumulator value.  In GCD this travels to members encrypted under the
    CGKD group key, so outsiders cannot verify signatures against it."""

    acc_value: int
    acc_epoch: int


@dataclass(frozen=True)
class JoinRequest:
    """User -> manager: commitment to the membership secret plus a PoK."""

    user_id: str
    commitment: int  # C = a^x
    challenge: int
    response: int


@dataclass(frozen=True)
class JoinResponse:
    """Manager -> user: certificate, accumulator witness, current state."""

    big_a: int
    e: int
    witness: int
    acc_value: int
    acc_epoch: int


@dataclass(frozen=True)
class AcjtSignature:
    """A group signature with the fused accumulator-membership proof."""

    t1: int
    t2: int
    t3: int
    challenge: int
    s1: int  # response for e
    s2: int  # response for x
    s3: int  # response for e*w
    s4: int  # response for w
    c_e: int  # Pedersen commitment to e (accumulator binding)
    c_u: int  # blinded accumulator witness
    c_r: int
    s_r1: int
    s_r2: int
    s_r3: int
    s_z: int
    s_w3: int
    acc_epoch: int


def _spk_challenge(pk: AcjtPublicKey, acc_value: int, message: bytes,
                   t1: int, t2: int, t3: int, c_e: int, c_u: int, c_r: int,
                   d_values: Tuple[int, ...]) -> int:
    return hashing.hash_to_int(
        _CHALLENGE_DOMAIN, pk.lengths.k,
        pk.n, pk.a, pk.a0, pk.g, pk.h, pk.y, pk.ped_g, pk.ped_h,
        acc_value, message, t1, t2, t3, c_e, c_u, c_r, tuple(d_values),
    )


# ---------------------------------------------------------------------------
# Join protocol (user side).
# ---------------------------------------------------------------------------


def begin_join(pk: AcjtPublicKey, user_id: str,
               rng: Optional[random.Random] = None) -> Tuple[JoinRequest, int]:
    """User step 1: pick x in Lambda, commit C = a^x, prove knowledge.

    Returns ``(request, x)``; the caller keeps ``x`` secret.
    """
    rng = rng or random
    lengths = pk.lengths
    x = rng.randrange(lengths.x_low + 1, lengths.x_high)
    commitment = mexp(pk.a, x, pk.n)
    t = random_int_symmetric(lengths.epsilon * (lengths.lambda2 + lengths.k), rng)
    d = mexp(pk.a, t, pk.n)
    challenge = hashing.hash_to_int(
        _JOIN_DOMAIN, lengths.k, pk.n, pk.a, user_id, commitment, d
    )
    response = t - challenge * (x - (1 << lengths.lambda1))
    return JoinRequest(user_id, commitment, challenge, response), x


def _verify_join_request(pk: AcjtPublicKey, request: JoinRequest) -> bool:
    lengths = pk.lengths
    if not int_in_symmetric_range(
        request.response, lengths.epsilon * (lengths.lambda2 + lengths.k) + 1
    ):
        return False
    if not 1 < request.commitment < pk.n:
        return False
    shifted = request.response - request.challenge * (1 << lengths.lambda1)
    d = multi_exp(
        ((request.commitment, request.challenge), (pk.a, shifted)), pk.n
    )
    expected = hashing.hash_to_int(
        _JOIN_DOMAIN, lengths.k, pk.n, pk.a, request.user_id, request.commitment, d
    )
    return expected == request.challenge


def finish_join(pk: AcjtPublicKey, user_id: str, x: int,
                response: JoinResponse) -> "AcjtCredential":
    """User step 2: validate the certificate and build the credential."""
    lhs = mexp(response.big_a, response.e, pk.n)
    rhs = (pk.a0 * mexp(pk.a, x, pk.n)) % pk.n
    if lhs != rhs:
        raise VerificationError("manager issued an invalid ACJT certificate")
    if not pk.lengths.e_low < response.e < pk.lengths.e_high:
        raise VerificationError("certificate prime outside Gamma")
    # The accumulator value is a fixed base for the whole epoch (it
    # anchors d6 in every Verify) — warm it for the accel tables.
    register_base(response.acc_value, pk.n)
    return AcjtCredential(
        public_key=pk,
        user_id=user_id,
        big_a=response.big_a,
        e=response.e,
        x=x,
        witness=response.witness,
        acc_value=response.acc_value,
        acc_epoch=response.acc_epoch,
    )


# ---------------------------------------------------------------------------
# Manager.
# ---------------------------------------------------------------------------


@dataclass
class _MemberRecord:
    user_id: str
    big_a: int
    e: int
    revoked: bool = False


class AcjtManager(GroupSignatureManager):
    """GM: admits members, revokes via the accumulator, opens signatures."""

    def __init__(self, profile: str = "tiny",
                 rng: Optional[random.Random] = None) -> None:
        rng = rng or random
        self._lengths = acjt_profile(profile)
        self._group = RsaGroup.from_precomputed(self._lengths.lp)
        a, a0, g, h, ped_g, ped_h = generators(self._group, 6, rng)
        self._theta = rng.randrange(1, self._group.n // 4)
        y = self._group.exp(g, self._theta)
        self._pk = AcjtPublicKey(
            n=self._group.n, lengths=self._lengths,
            a=a, a0=a0, g=g, h=h, y=y, ped_g=ped_g, ped_h=ped_h,
        )
        # These bases are exponentiated for the lifetime of the group —
        # mark them for repro.accel's fixed-base precomputation tables.
        for base in (a, a0, g, h, y, ped_g, ped_h):
            register_base(base, self._group.n)
        self._accumulator = Accumulator(self._group, rng)
        # Epoch -> accumulator value, so Open can verify signatures made
        # under older system states (tracing must survive later rekeys).
        self._acc_history: Dict[int, int] = {
            self._accumulator.epoch: self._accumulator.value
        }
        self._members: Dict[str, _MemberRecord] = {}
        self._by_big_a: Dict[int, str] = {}
        self._rng = rng

    # Interface ---------------------------------------------------------------

    @property
    def public_key(self) -> AcjtPublicKey:
        return self._pk

    @property
    def lengths(self) -> AcjtLengths:
        return self._lengths

    def member_view(self) -> AcjtMemberView:
        """Current member-side verification state."""
        return AcjtMemberView(
            acc_value=self._accumulator.value,
            acc_epoch=self._accumulator.epoch,
        )

    def admit(self, request: JoinRequest) -> Tuple[JoinResponse, StateUpdate]:
        """Manager side of Join: verify the PoK, issue (A, e), accumulate e."""
        if request.user_id in self._members:
            raise MembershipError(f"{request.user_id} already joined")
        if not _verify_join_request(self._pk, request):
            raise VerificationError("join request proof rejected")
        lengths = self._lengths
        while True:
            e = random_prime_in_interval(lengths.e_low, lengths.e_high, self._rng)
            if self._group.coprime_to_order(e) and not self._accumulator.contains(e):
                break
        e_inverse = self._group.invert_exponent(e)
        base = (self._pk.a0 * request.commitment) % self._pk.n
        big_a = self._group.exp(base, e_inverse)
        witness = self._accumulator.add(e)
        self._acc_history[self._accumulator.epoch] = self._accumulator.value
        self._members[request.user_id] = _MemberRecord(request.user_id, big_a, e)
        self._by_big_a[big_a] = request.user_id
        response = JoinResponse(
            big_a=big_a, e=e, witness=witness,
            acc_value=self._accumulator.value,
            acc_epoch=self._accumulator.epoch,
        )
        update = StateUpdate(
            epoch=self._accumulator.epoch,
            kind="join",
            payload={"added_e": e, "acc_value": self._accumulator.value},
        )
        return response, update

    def join(self, user_id: str, rng=None) -> Tuple["AcjtCredential", StateUpdate]:
        """Convenience one-call Join running both protocol sides locally."""
        request, x = begin_join(self._pk, user_id, rng or self._rng)
        response, update = self.admit(request)
        return finish_join(self._pk, user_id, x, response), update

    def revoke(self, user_id: str) -> StateUpdate:
        record = self._members.get(user_id)
        if record is None:
            raise MembershipError(f"unknown member {user_id}")
        if record.revoked:
            raise RevocationError(f"{user_id} already revoked")
        self._accumulator.delete(record.e)
        self._acc_history[self._accumulator.epoch] = self._accumulator.value
        record.revoked = True
        return StateUpdate(
            epoch=self._accumulator.epoch,
            kind="revoke",
            payload={"deleted_e": record.e, "acc_value": self._accumulator.value},
        )

    def revoke_batch(self, user_ids: Sequence[str]) -> StateUpdate:
        """Revoke a whole epoch's worth of members with ONE accumulator
        trapdoor exponentiation (product of the deleted primes) and ONE
        epoch bump.  Returns a ``kind="epoch"`` update carrying the full
        delta so members apply a single coalesced witness update."""
        ids = list(user_ids)
        if not ids:
            raise RevocationError("empty revocation batch")
        if len(set(ids)) != len(ids):
            raise RevocationError("duplicate user in revocation batch")
        records = []
        for user_id in ids:
            record = self._members.get(user_id)
            if record is None:
                raise MembershipError(f"unknown member {user_id}")
            if record.revoked:
                raise RevocationError(f"{user_id} already revoked")
            records.append(record)
        primes = tuple(record.e for record in records)
        self._accumulator.delete_batch(primes)
        self._acc_history[self._accumulator.epoch] = self._accumulator.value
        for record in records:
            record.revoked = True
        return StateUpdate(
            epoch=self._accumulator.epoch,
            kind="epoch",
            payload={"deleted": primes, "acc_value": self._accumulator.value},
        )

    def fresh_witness(self, user_id: str) -> int:
        """Manager-assisted witness reissue (lazy-refresh fallback): one
        trapdoor modexp hands a returning member a current witness no
        matter how many epochs it slept through."""
        record = self._members.get(user_id)
        if record is None:
            raise MembershipError(f"unknown member {user_id}")
        if record.revoked:
            raise RevocationError(f"{user_id} has been revoked")
        return self._accumulator.issue_witness(record.e)

    def open(self, message: bytes, signature: AcjtSignature) -> Optional[str]:
        """Recover the signer: A = T1 / T2^theta, then registry lookup.

        Opens only structurally valid signatures (Fig. 3: Open runs Verify
        first).  Verification uses the accumulator value at the signature's
        epoch so that older transcripts stay traceable after later rekeys —
        the paper's point that traceability remains valuable "for
        investigating activities of group members before they become
        corrupt"."""
        acc_value = self._acc_history.get(signature.acc_epoch)
        if acc_value is None:
            return None
        view = AcjtMemberView(acc_value=acc_value, acc_epoch=signature.acc_epoch)
        if not verify(self._pk, message, signature, view):
            return None
        big_a = (
            signature.t1
            * inverse(self._group.exp(signature.t2, self._theta), self._pk.n)
        ) % self._pk.n
        return self._by_big_a.get(big_a)

    def is_member(self, user_id: str) -> bool:
        record = self._members.get(user_id)
        return record is not None and not record.revoked

    def certificate_prime(self, user_id: str) -> int:
        """The e issued to ``user_id`` (manager bookkeeping, used by tests)."""
        record = self._members.get(user_id)
        if record is None:
            raise MembershipError(f"unknown member {user_id}")
        return record.e


# ---------------------------------------------------------------------------
# Member credential.
# ---------------------------------------------------------------------------


@dataclass
class AcjtCredential(GroupMemberCredential):
    """Member secrets plus the evolving accumulator witness."""

    public_key: AcjtPublicKey
    user_id: str
    big_a: int
    e: int
    x: int = field(repr=False)
    witness: int = field(repr=False)
    acc_value: int
    acc_epoch: int
    revoked: bool = False

    def apply_update(self, update: StateUpdate) -> None:
        """Fig. 3 Update: refresh the accumulator witness.

        Idempotent against replays: board posts carry strictly increasing
        accumulator epochs, so an update at or below this credential's
        epoch has already been absorbed (e.g. by a lazy refresh that ran
        ahead of the board cursor) and is skipped — re-applying a witness
        update would corrupt the witness.

        Also rotates the warm-rejoin verification material: the old
        accumulator value's fixed-base table can never serve a current
        verification again (epoch mismatch rejects first), so it is
        dropped and the new value registered in its place."""
        if update.epoch <= self.acc_epoch:
            return
        n = self.public_key.n
        if update.kind == "join":
            added = update.payload["added_e"]
            if added != self.e:
                self.witness = update_witness_after_add(self.witness, added, n)
            new_value = update.payload["acc_value"]
        elif update.kind == "revoke":
            deleted = update.payload["deleted_e"]
            new_value = update.payload["acc_value"]
            if deleted == self.e:
                self.revoked = True
            else:
                self.witness = update_witness_after_delete(
                    self.witness, self.e, deleted, new_value, n
                )
        elif update.kind == "epoch":
            deleted = tuple(update.payload["deleted"])
            new_value = update.payload["acc_value"]
            metrics.bump("rev:delta-applies")
            if self.e in deleted:
                self.revoked = True
            else:
                self.witness = update_witness_epoch(
                    self.witness, self.e, (), deleted, new_value, n
                )
        else:
            raise ParameterError(f"unknown update kind {update.kind!r}")
        if new_value != self.acc_value:
            unregister_base(self.acc_value, n)
            register_base(new_value, n)
        self.acc_value = new_value
        self.acc_epoch = update.epoch

    def apply_epochs(self, deltas: Iterable) -> int:
        """Lazy refresh: coalesce a replayed delta log into ONE witness
        update and ONE warm-rejoin base rotation.

        ``deltas`` is an epoch-ordered iterable of records with ``epoch``,
        ``added``, ``deleted`` and ``acc_value`` attributes (the revocation
        service's delta log).  Entries at or below the credential's epoch
        are skipped.  Returns the number of epochs absorbed; costs at most
        3 modexps + 1 egcd total (vs 1 modexp per missed add and 2 per
        missed delete replayed one by one) and rotates the fixed-base
        table once, not once per missed epoch."""
        added: list = []
        deleted: list = []
        new_value = self.acc_value
        last_epoch = self.acc_epoch
        applied = 0
        for delta in deltas:
            if delta.epoch <= last_epoch:
                continue
            added.extend(e for e in delta.added if e != self.e)
            deleted.extend(delta.deleted)
            new_value = delta.acc_value
            last_epoch = delta.epoch
            applied += 1
        if not applied:
            return 0
        n = self.public_key.n
        metrics.bump("rev:lazy-epochs-coalesced", applied)
        if self.e in deleted:
            self.revoked = True
        else:
            self.witness = update_witness_epoch(
                self.witness, self.e, added, deleted, new_value, n
            )
        if new_value != self.acc_value:
            unregister_base(self.acc_value, n)
            register_base(new_value, n)
        self.acc_value = new_value
        self.acc_epoch = last_epoch
        return applied

    def install_fresh_witness(self, witness: int, acc_value: int,
                              acc_epoch: int) -> None:
        """Adopt a manager-reissued witness (lazy-refresh fallback past the
        delta-log horizon), rotating the warm-rejoin base exactly once."""
        n = self.public_key.n
        public = AccumulatorPublic(n, acc_value, acc_epoch)
        if not verify_witness(public, witness, self.e):
            raise VerificationError("reissued witness does not open the accumulator")
        self.witness = witness
        if acc_value != self.acc_value:
            unregister_base(self.acc_value, n)
            register_base(acc_value, n)
        self.acc_value = acc_value
        self.acc_epoch = acc_epoch

    def witness_is_current(self) -> bool:
        public = AccumulatorPublic(self.public_key.n, self.acc_value, self.acc_epoch)
        return verify_witness(public, self.witness, self.e)

    def sign(self, message: bytes,
             rng: Optional[random.Random] = None) -> AcjtSignature:
        """ACJT Sign with the fused accumulator-membership proof."""
        if self.revoked:
            raise RevocationError("credential has been revoked")
        rng = rng or random
        pk = self.public_key
        n, lengths = pk.n, pk.lengths
        eps, k = lengths.epsilon, lengths.k
        two_lp = 2 * lengths.lp

        w = rng.getrandbits(two_lp)
        t1 = (self.big_a * mexp(pk.y, w, n)) % n
        t2 = mexp(pk.g, w, n)
        t3 = multi_exp(((pk.g, self.e), (pk.h, w)), n)

        # Accumulator blinding.
        r1 = rng.randrange(1, n // 4)
        r2 = rng.randrange(1, n // 4)
        r3 = rng.randrange(1, n // 4)
        c_e = multi_exp(((pk.ped_g, self.e), (pk.ped_h, r1)), n)
        c_u = (self.witness * mexp(pk.ped_h, r2, n)) % n
        c_r = multi_exp(((pk.ped_g, r2), (pk.ped_h, r3)), n)
        z = self.e * r2
        w3 = self.e * r3

        ln = n.bit_length()
        t_e = random_int_symmetric(eps * (lengths.gamma2 + k), rng)
        t_x = random_int_symmetric(eps * (lengths.lambda2 + k), rng)
        t_z = random_int_symmetric(eps * (lengths.gamma1 + two_lp + k + 1), rng)
        t_w = random_int_symmetric(eps * (two_lp + k), rng)
        t_r1 = random_int_symmetric(eps * (ln + k), rng)
        t_r2 = random_int_symmetric(eps * (ln + k), rng)
        t_r3 = random_int_symmetric(eps * (ln + k), rng)
        t_az = random_int_symmetric(eps * (lengths.gamma1 + ln + k + 1), rng)
        t_w3 = random_int_symmetric(eps * (lengths.gamma1 + ln + k + 1), rng)

        d1 = multi_exp(((t1, t_e), (pk.a, -t_x), (pk.y, -t_z)), n)
        d2 = multi_exp(((t2, t_e), (pk.g, -t_z)), n)
        d3 = mexp(pk.g, t_w, n)
        d4 = multi_exp(((pk.g, t_e), (pk.h, t_w)), n)
        d5 = multi_exp(((pk.ped_g, t_e), (pk.ped_h, t_r1)), n)
        d6 = multi_exp(((c_u, t_e), (pk.ped_h, -t_az)), n)
        d7 = multi_exp(((pk.ped_g, t_r2), (pk.ped_h, t_r3)), n)
        d8 = multi_exp(((c_r, t_e), (pk.ped_g, -t_az), (pk.ped_h, -t_w3)), n)

        challenge = _spk_challenge(
            pk, self.acc_value, message, t1, t2, t3, c_e, c_u, c_r,
            (d1, d2, d3, d4, d5, d6, d7, d8),
        )

        return AcjtSignature(
            t1=t1, t2=t2, t3=t3, challenge=challenge,
            s1=t_e - challenge * (self.e - (1 << lengths.gamma1)),
            s2=t_x - challenge * (self.x - (1 << lengths.lambda1)),
            s3=t_z - challenge * (self.e * w),
            s4=t_w - challenge * w,
            c_e=c_e, c_u=c_u, c_r=c_r,
            s_r1=t_r1 - challenge * r1,
            s_r2=t_r2 - challenge * r2,
            s_r3=t_r3 - challenge * r3,
            s_z=t_az - challenge * z,
            s_w3=t_w3 - challenge * w3,
            acc_epoch=self.acc_epoch,
        )


# ---------------------------------------------------------------------------
# Verification.
# ---------------------------------------------------------------------------


def spk_structural_ok(pk: AcjtPublicKey, signature: AcjtSignature,
                      member_view: AcjtMemberView) -> bool:
    """The cheap Verify prechecks, in their exact original order: epoch
    match, response-interval checks, and range/coprimality of the group
    elements.  Shared by :func:`verify` and the room-scale batch path in
    :mod:`repro.accel.batch`."""
    lengths = pk.lengths
    n = pk.n
    eps, k = lengths.epsilon, lengths.k
    two_lp = 2 * lengths.lp

    if signature.acc_epoch != member_view.acc_epoch:
        return False
    if not int_in_symmetric_range(signature.s1, eps * (lengths.gamma2 + k) + 1):
        return False
    if not int_in_symmetric_range(signature.s2, eps * (lengths.lambda2 + k) + 1):
        return False
    if not int_in_symmetric_range(signature.s3, eps * (lengths.gamma1 + two_lp + k + 1) + 1):
        return False
    if not int_in_symmetric_range(signature.s4, eps * (two_lp + k) + 1):
        return False
    for value in (signature.t1, signature.t2, signature.t3,
                  signature.c_e, signature.c_u, signature.c_r):
        if not 1 <= value < n or math.gcd(value, n) != 1:
            return False
    return True


def spk_d_terms(pk: AcjtPublicKey, signature: AcjtSignature,
                member_view: AcjtMemberView,
                ) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
    """The eight SPK reconstruction equations as ``(base, exponent)``
    term tuples: ``d_i = prod(base**exp) mod n`` for each tuple, in
    challenge-hash order.

    Exposed (rather than inlined in :func:`verify`) so
    :mod:`repro.accel.batch` can evaluate a whole room's signatures with
    shared fixed-base tables — note how every large exponent
    (``s3``/``s_z``/``s_w3``, ``s2_hat``) attaches to a *fixed* base
    (``a, y, g, h, ped_g, ped_h``, the accumulator value) while the
    per-signature bases only carry the short ``c`` and ``s1_hat``.
    """
    c = signature.challenge
    lengths = pk.lengths
    s1_hat = signature.s1 - c * (1 << lengths.gamma1)
    s2_hat = signature.s2 - c * (1 << lengths.lambda1)
    return (
        ((pk.a0, c), (signature.t1, s1_hat),
         (pk.a, -s2_hat), (pk.y, -signature.s3)),
        ((signature.t2, s1_hat), (pk.g, -signature.s3)),
        ((signature.t2, c), (pk.g, signature.s4)),
        ((signature.t3, c), (pk.g, s1_hat), (pk.h, signature.s4)),
        ((signature.c_e, c), (pk.ped_g, s1_hat),
         (pk.ped_h, signature.s_r1)),
        ((member_view.acc_value, c), (signature.c_u, s1_hat),
         (pk.ped_h, -signature.s_z)),
        ((signature.c_r, c), (pk.ped_g, signature.s_r2),
         (pk.ped_h, signature.s_r3)),
        ((signature.c_r, s1_hat), (pk.ped_g, -signature.s_z),
         (pk.ped_h, -signature.s_w3)),
    )


def spk_challenge(pk: AcjtPublicKey, acc_value: int, message: bytes,
                  signature: AcjtSignature,
                  d_values: Tuple[int, ...]) -> int:
    """Recompute the Fiat-Shamir challenge for ``signature`` given its
    reconstructed ``d`` values."""
    return _spk_challenge(
        pk, acc_value, message,
        signature.t1, signature.t2, signature.t3,
        signature.c_e, signature.c_u, signature.c_r,
        d_values,
    )


def verify(pk: AcjtPublicKey, message: bytes, signature: AcjtSignature,
           member_view: AcjtMemberView) -> bool:
    """Verify an ACJT signature against the member's current system view."""
    if not spk_structural_ok(pk, signature, member_view):
        return False
    n = pk.n
    d_values = tuple(
        multi_exp(terms, n)
        for terms in spk_d_terms(pk, signature, member_view)
    )
    expected = spk_challenge(pk, member_view.acc_value, message,
                             signature, d_values)
    return expected == signature.challenge


class AcjtScheme(GroupSignatureScheme):
    """Factory conforming to :class:`GroupSignatureScheme`."""

    name = "acjt"

    def __init__(self, profile: str = "tiny") -> None:
        self._profile = profile

    def setup(self, rng=None) -> AcjtManager:
        return AcjtManager(self._profile, rng)

    def verify(self, public_key: AcjtPublicKey, message: bytes,
               signature: AcjtSignature, member_state=None) -> bool:
        if member_state is None:
            raise ParameterError("ACJT verification needs the member view")
        return verify(public_key, message, signature, member_state)
