"""Group signature scheme interface (paper Fig. 3).

A scheme exposes the manager side (:class:`GroupSignatureManager`:
Setup/Join/Revoke/Open) and the member side (:class:`GroupMemberCredential`:
Sign plus Update processing).  Verification needs only the public key and
the member's view of the current system state.

State propagation follows the paper: every Join/Revoke produces a
:class:`StateUpdate` record that the group authority distributes to members
(in GCD, encrypted under the fresh CGKD key); each member feeds the record
to ``apply_update`` to refresh its local state (Fig. 3 ``Update``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class StateUpdate:
    """One system-state update record.

    ``kind`` is ``"join"`` or ``"revoke"``; ``payload`` is scheme-specific
    (for accumulator revocation: the accumulated/deleted prime and the new
    accumulator value; for VLR: the new revocation token).
    """

    epoch: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class GroupSignatureManager(abc.ABC):
    """Manager-side interface (GM in the paper)."""

    @property
    @abc.abstractmethod
    def public_key(self):
        """The group public key ``pk_GM`` (scheme-specific dataclass)."""

    @abc.abstractmethod
    def join(self, user_id: str, rng=None) -> Tuple[object, StateUpdate]:
        """Admit ``user_id``; return ``(credential, state_update)``."""

    @abc.abstractmethod
    def revoke(self, user_id: str) -> StateUpdate:
        """Revoke ``user_id``'s membership; return the state update."""

    @abc.abstractmethod
    def open(self, message: bytes, signature) -> Optional[str]:
        """Identify the signer of a valid signature (Fig. 3 ``Open``);
        returns the user id, or ``None`` if the signature is invalid or the
        signer is unknown."""


class GroupMemberCredential(abc.ABC):
    """Member-side interface: holds secrets, signs, applies updates."""

    @abc.abstractmethod
    def sign(self, message: bytes, rng=None):
        """Produce a group signature on ``message``."""

    @abc.abstractmethod
    def apply_update(self, update: StateUpdate) -> None:
        """Process a state update (Fig. 3 ``Update``)."""


class GroupSignatureScheme(abc.ABC):
    """Factory bundling the pieces of one concrete scheme."""

    name: str = "abstract"

    @abc.abstractmethod
    def setup(self, rng=None) -> GroupSignatureManager:
        """Run ``Setup`` and return a fresh manager."""

    @abc.abstractmethod
    def verify(self, public_key, message: bytes, signature,
               member_state=None) -> bool:
        """``Verify`` per Fig. 3.  ``member_state`` carries any member-only
        verification inputs (e.g. the CRL, which the paper makes known only
        to current group members)."""
