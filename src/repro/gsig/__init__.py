"""Building block I: group signature schemes (paper Section 4, Fig. 3).

* :mod:`repro.gsig.acjt` — the ACJT (Ateniese-Camenisch-Joye-Tsudik,
  CRYPTO 2000) scheme with dynamic-accumulator revocation; full-anonymity.
  Used by GCD instantiation 1 (Theorem 1 / 8.1).
* :mod:`repro.gsig.kty` — the Kiayias-(Tsiounis-)Yung traceable-signature
  variant of Appendix H with the T1..T7 structure, supporting the paper's
  self-distinction modification (common hash-derived T7); anonymity (not
  full-anonymity).  Used by GCD instantiation 2 (Theorem 3 / 8.2).
"""

from repro.gsig.base import GroupSignatureScheme, StateUpdate  # noqa: F401
