"""Operation counters used by the benchmark harness.

The paper's efficiency claims are stated in *number of modular
exponentiations* and *number of messages* per participant (Sections 8.1 and
8.2).  To reproduce those claims we instrument the two primitives everything
else is built from:

* :func:`count_modexp` is called by :func:`repro.crypto.modmath.mexp` on every
  modular exponentiation;
* :class:`repro.net.simulator.Network` calls :func:`count_message` whenever a
  protocol message is delivered.

Counters are grouped into named scopes so a benchmark can attribute cost to a
particular party or protocol phase::

    with metrics.scope("party-3"):
        run_protocol()
    print(metrics.snapshot()["party-3"].modexp)

Scopes nest; an operation is charged to every active scope plus the implicit
``"total"`` scope.  Counting is thread-local-free and deterministic because
the whole library runs single-threaded simulations.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Counters:
    """Tallies for one scope."""

    modexp: int = 0
    modmul: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    hashes: int = 0
    pairings: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def copy(self) -> "Counters":
        clone = Counters(
            modexp=self.modexp,
            modmul=self.modmul,
            messages_sent=self.messages_sent,
            messages_received=self.messages_received,
            bytes_sent=self.bytes_sent,
            hashes=self.hashes,
            pairings=self.pairings,
        )
        clone.extra = dict(self.extra)
        return clone


_TOTAL = "total"
_counters: Dict[str, Counters] = {_TOTAL: Counters()}
_active: List[str] = [_TOTAL]


def reset() -> None:
    """Drop all counters and scopes (benchmarks call this between runs)."""
    _counters.clear()
    _counters[_TOTAL] = Counters()
    del _active[:]
    _active.append(_TOTAL)


@contextlib.contextmanager
def scope(name: str) -> Iterator[Counters]:
    """Attribute operations performed inside the block to ``name``."""
    counters = _counters.setdefault(name, Counters())
    _active.append(name)
    try:
        yield counters
    finally:
        _active.remove(name)


def _each_active() -> List[Counters]:
    return [_counters[name] for name in _active]


def count_modexp(amount: int = 1) -> None:
    for c in _each_active():
        c.modexp += amount


def count_modmul(amount: int = 1) -> None:
    for c in _each_active():
        c.modmul += amount


def count_hash(amount: int = 1) -> None:
    for c in _each_active():
        c.hashes += amount


def count_pairing(amount: int = 1) -> None:
    for c in _each_active():
        c.pairings += amount


def count_message_sent(nbytes: int = 0) -> None:
    for c in _each_active():
        c.messages_sent += 1
        c.bytes_sent += nbytes


def count_message_received() -> None:
    for c in _each_active():
        c.messages_received += 1


def bump(name: str, amount: int = 1) -> None:
    for c in _each_active():
        c.bump(name, amount)


def snapshot() -> Dict[str, Counters]:
    """Return a copy of every scope's counters."""
    return {name: c.copy() for name, c in _counters.items()}


def total() -> Counters:
    """Counters accumulated since the last :func:`reset`."""
    return _counters[_TOTAL].copy()
