"""Observability layer: operation counters, timers, trace events, exporters.

The paper's efficiency claims are stated in *number of modular
exponentiations* and *number of messages* per participant (Sections 8.1 and
8.2).  To reproduce those claims we instrument the two primitives everything
else is built from:

* :func:`count_modexp` is called by :func:`repro.crypto.modmath.mexp` on every
  modular exponentiation;
* :class:`repro.net.simulator.Network` calls :func:`count_message_sent` /
  :func:`count_message_received` (with wire-level byte sizes) on every
  enqueue / delivery.

Counters are grouped into named scopes so a benchmark can attribute cost to a
particular party or protocol phase::

    with metrics.scope("party-3"):
        run_protocol()
    print(metrics.snapshot()["party-3"].modexp)

Scopes nest; an operation is charged to every *distinct* active scope plus
the implicit ``"total"`` scope.  Re-entering a name that is already on the
stack is legal and charges that scope **once** (the naive
charge-every-frame rule would double-count a party scope wrapped around a
sub-protocol that re-opens the same scope).

Concurrency model
-----------------

The scope stack lives in a :class:`contextvars.ContextVar`, so nesting is
restored exactly on exit (token-based, correct under exceptions and
re-entrancy) and coroutines see their own stacks.  Counter storage lives in
a :class:`Recorder`; the active recorder is resolved per thread (with an
optional :func:`using` override), so two threads running handshakes
concurrently observe fully independent counters — no cross-thread bleed.
All mutation of a recorder is guarded by a lock, so explicitly sharing one
recorder across threads (via :func:`using`) is also safe.

Beyond raw counts the layer records:

* **wall-clock timers** — every scope accrues ``wall_time`` (inclusive,
  charged once per distinct scope even when re-entered, and once per
  *union* interval when the same scope is open concurrently in several
  tasks or threads sharing one recorder);
* **trace events** — an opt-in structured stream (scope begin/end, message
  send/receive with byte sizes, coalesced modexp bursts); see
  :func:`enable_tracing` / :func:`events`;
* **histograms** — fixed-bucket distributions with percentile summaries
  (handshake latency, relay frame latency, modexp burst sizes); see
  :func:`observe` / :func:`histogram`;
* **spans** — the :mod:`repro.obs` layer records start/end/duration spans
  with parent/child links into the current recorder (storage lives here so
  spans, counters and histograms share one measurement context);
* **exporters** — :func:`export_json` / :func:`export_csv` /
  :func:`format_table` turn a snapshot into artifacts the benchmark
  harness and the ``python -m repro stats`` CLI consume; span exporters
  (Chrome ``trace_event`` JSON, JSONL) live in :mod:`repro.obs.export`.

Asyncio guidance: a :class:`contextvars.ContextVar` is copied into every
task at *creation* time, so tasks spawned inside ``with using(rec):``
inherit ``rec``; tasks spawned **before** the swap keep whatever recorder
their creation context had (usually the shared per-thread one) and will
interleave their counts with every other such task.  Either spawn workers
inside the ``using`` block, or call :meth:`Recorder.bind_task` first thing
inside the task body to pin its books explicitly.
"""

from __future__ import annotations

import bisect
import contextlib
import csv
import io
import json
import threading
import time
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class Counters:
    """Tallies for one scope."""

    modexp: int = 0
    modmul: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    hashes: int = 0
    pairings: int = 0
    wall_time: float = 0.0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def copy(self) -> "Counters":
        clone = Counters(
            modexp=self.modexp,
            modmul=self.modmul,
            messages_sent=self.messages_sent,
            messages_received=self.messages_received,
            bytes_sent=self.bytes_sent,
            bytes_received=self.bytes_received,
            hashes=self.hashes,
            pairings=self.pairings,
            wall_time=self.wall_time,
        )
        clone.extra = dict(self.extra)
        return clone

    def as_dict(self) -> Dict[str, object]:
        """Flat exporter view: fixed fields first, then ``extra`` inline."""
        out: Dict[str, object] = {f: getattr(self, f) for f in FIELDS}
        out.update(self.extra)
        return out


#: Fixed counter fields, in export order.
FIELDS: Tuple[str, ...] = (
    "modexp",
    "modmul",
    "messages_sent",
    "messages_received",
    "bytes_sent",
    "bytes_received",
    "hashes",
    "pairings",
    "wall_time",
)

#: Fields a worker's books can be replayed into a parent recorder
#: (:func:`replay`): everything except wall time, which overlaps the
#: parent's clock and would double-book.
REPLAY_FIELDS: Tuple[str, ...] = tuple(f for f in FIELDS if f != "wall_time")

_REPLAY_SET = frozenset(REPLAY_FIELDS)

_TOTAL = "total"


@dataclass
class TraceEvent:
    """One structured trace record.

    ``ts``/``ts_end`` are seconds since the recorder's epoch (its creation
    or last :func:`reset`).  ``scope`` is the innermost active scope at
    emission time (``"total"`` outside any scope).  Burst kinds (e.g.
    ``"modexp"``) coalesce consecutive same-scope events into one record
    with an aggregated ``count`` and a widened ``[ts, ts_end]`` window.
    """

    kind: str
    scope: str
    ts: float
    ts_end: float
    data: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "scope": self.scope,
            "ts": self.ts,
            "ts_end": self.ts_end,
            **self.data,
        }


#: Event kinds that coalesce into bursts instead of one record per call.
_BURST_KINDS = frozenset({"modexp", "modmul", "hash"})

#: Default bucket upper bounds for latency histograms (seconds).
LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default bucket upper bounds for burst/size histograms (counts).
SIZE_BOUNDS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000,
)


class Histogram:
    """Fixed-bucket distribution with a percentile summary.

    Buckets are upper-inclusive (Prometheus ``le`` semantics): a value
    lands in the first bucket whose bound is ``>= value``; anything above
    the last bound lands in the overflow bucket.  Percentiles interpolate
    linearly inside a bucket; the overflow bucket reports the observed
    maximum (the honest answer when the tail is unbounded).

    Samples beyond the last bound also increment ``clamped``, exposed in
    :meth:`summary`: interpolation has no resolution out there (the whole
    overflow bucket collapses onto the observed max), so a nonzero
    ``clamped`` is the signal that tail percentiles (p99 under open-loop
    overload, typically) are clamped estimates and the bounds need to be
    widened before trusting them.

    Not locked itself — the owning :class:`Recorder` serializes access.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "min", "max",
                 "clamped")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, "
                             "non-empty sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.clamped = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value > self.bounds[-1]:
            self.clamped += 1

    def percentile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (0..1) of the distribution.

        Interpolated values are clamped to the observed ``[min, max]`` so a
        sparse histogram never reports a quantile outside what was seen."""
        if self.total == 0:
            return 0.0
        target = max(1.0, fraction * self.total)
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                if i == len(self.bounds):       # overflow bucket
                    return float(self.max)
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                estimate = lo + (hi - lo) * ((target - cumulative) / count)
                return min(max(estimate, float(self.min)), float(self.max))
            cumulative += count
        return float(self.max)

    def summary(self) -> Dict[str, object]:
        """Exporter view: totals, extrema, p50/p90/p99, raw buckets."""
        return {
            "count": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": (self.sum / self.total) if self.total else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "clamped": self.clamped,
            "buckets": [
                {"le": b, "count": c}
                for b, c in zip(self.bounds, self.counts)
            ] + [{"le": None, "count": self.counts[-1]}],
        }

    def copy(self) -> "Histogram":
        clone = Histogram(self.name, self.bounds)
        clone.counts = list(self.counts)
        clone.total = self.total
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        clone.clamped = self.clamped
        return clone


class _Frame:
    """One scope activation: the name plus the counters it charges."""

    __slots__ = ("name", "counters", "t0")

    def __init__(self, name: str, counters: Counters, t0: float) -> None:
        self.name = name
        self.counters = counters
        self.t0 = t0


class Recorder:
    """Counter + trace storage for one logical measurement context.

    Normally one recorder exists per thread (created lazily); benchmarks
    never see it directly — the module-level functions proxy to the
    current one.  Pass a recorder to :func:`using` to pin it explicitly
    (e.g. to aggregate several worker threads into one set of books).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counters] = {_TOTAL: Counters()}
        self._events: List[TraceEvent] = []
        self._hists: Dict[str, Histogram] = {}
        self._spans: List[object] = []
        self._next_span_id = 1
        #: id(Counters) -> [open-frame refcount, interval start]; the
        #: union-interval bookkeeping behind scope wall time.
        self._open: Dict[int, List[float]] = {}
        self._tracing = False
        self._epoch = time.perf_counter()

    # Storage ----------------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self._counters = {_TOTAL: Counters()}
            self._events = []
            self._hists = {}
            self._spans = []
            self._next_span_id = 1
            self._open = {}
            self._epoch = time.perf_counter()

    def bind_task(self) -> Token:
        """Pin this recorder for the *current* context (thread or asyncio
        task) without a ``with`` block — the escape hatch for tasks that
        were spawned before a :func:`using` swap and would otherwise fall
        back to the shared per-thread recorder.  Call it first thing in
        the task body; the returned token can restore the previous binding
        via ``_RECORDER.reset(token)`` but normally dies with the task."""
        return _RECORDER.set(self)

    def counters_for(self, name: str) -> Counters:
        with self._lock:
            return self._counters.setdefault(name, Counters())

    def snapshot(self) -> Dict[str, Counters]:
        with self._lock:
            snap = {name: c.copy() for name, c in self._counters.items()}
            # "total" is never a scope frame, so its wall clock is the
            # recorder's own: time elapsed since creation / last reset.
            snap[_TOTAL].wall_time = time.perf_counter() - self._epoch
            return snap

    def total(self) -> Counters:
        with self._lock:
            clone = self._counters[_TOTAL].copy()
            clone.wall_time = time.perf_counter() - self._epoch
            return clone

    # Histograms -------------------------------------------------------------

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        """Get-or-create the named histogram (latency-style bounds by
        default).  Passing bounds that contradict an existing histogram's
        is a programming error — the buckets could not be merged."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = Histogram(name, bounds or LATENCY_BOUNDS)
                self._hists[name] = hist
            elif (bounds is not None
                    and tuple(float(b) for b in bounds) != hist.bounds):
                raise ValueError(
                    f"histogram {name!r} already exists with different "
                    f"bounds")
            return hist

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        with self._lock:
            self.histogram(name, bounds).observe(value)

    def histograms(self) -> Dict[str, Histogram]:
        """Copies of every histogram, keyed by name."""
        with self._lock:
            return {name: h.copy() for name, h in self._hists.items()}

    # Spans ------------------------------------------------------------------

    def next_span_id(self) -> int:
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            return span_id

    def record_span(self, span: object) -> None:
        """Store one *finished* span (see :mod:`repro.obs.spans`)."""
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[object]:
        with self._lock:
            return list(self._spans)

    def drain_spans(self) -> List[object]:
        """Remove and return every finished span — the shipping half of
        cross-process telemetry (:mod:`repro.obs.telemetry`): a shard's
        heartbeat loop drains its recorder and sends the batch over the
        supervision pipe, so the span store stays bounded however long
        the worker lives."""
        with self._lock:
            drained = self._spans
            self._spans = []
            return drained

    @property
    def epoch(self) -> float:
        """``time.perf_counter()`` value all ts fields are relative to."""
        return self._epoch

    # Tracing ----------------------------------------------------------------

    @property
    def tracing(self) -> bool:
        return self._tracing

    @tracing.setter
    def tracing(self, on: bool) -> None:
        self._tracing = bool(on)

    def trace(self, kind: str, scope: str, **data: object) -> None:
        if not self._tracing:
            return
        with self._lock:
            now = time.perf_counter() - self._epoch
            if kind in _BURST_KINDS and self._events:
                last = self._events[-1]
                if last.kind == kind and last.scope == scope:
                    last.data["count"] = (
                        int(last.data.get("count", 0)) + int(data.get("count", 1))
                    )
                    last.ts_end = now
                    return
            # A non-coalescing event closes any burst in flight: its final
            # size feeds the burst-size histogram (the tail burst of a run
            # is closed by the enclosing scope-end event).
            if self._events:
                last = self._events[-1]
                if last.kind in _BURST_KINDS and (last.kind != kind
                                                  or last.scope != scope):
                    self.histogram(f"{last.kind}:burst", SIZE_BOUNDS).observe(
                        int(last.data.get("count", 1)))
            if kind in _BURST_KINDS:
                data.setdefault("count", 1)
            self._events.append(
                TraceEvent(kind=kind, scope=scope, ts=now, ts_end=now, data=data)
            )

    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)


# ---------------------------------------------------------------------------
# Recorder + stack resolution.
# ---------------------------------------------------------------------------

#: Scope stack: immutable tuple so token-based reset restores the exact
#: previous stack (the seed implementation's ``_active.remove(name)``
#: popped the *first* occurrence, corrupting re-entrant same-name scopes).
_STACK: ContextVar[Tuple[_Frame, ...]] = ContextVar("repro.metrics.stack",
                                                    default=())

#: Explicit recorder override (see :func:`using`); ``None`` means "use the
#: current thread's recorder".
_RECORDER: ContextVar[Optional[Recorder]] = ContextVar(
    "repro.metrics.recorder", default=None
)

_thread_state = threading.local()


def current_recorder() -> Recorder:
    """The recorder all module-level calls resolve to.

    An explicit :func:`using` override wins; otherwise each thread gets its
    own lazily-created recorder, so concurrent measurements stay disjoint.
    """
    rec = _RECORDER.get()
    if rec is not None:
        return rec
    rec = getattr(_thread_state, "recorder", None)
    if rec is None:
        rec = Recorder()
        _thread_state.recorder = rec
    return rec


@contextlib.contextmanager
def using(recorder: Recorder) -> Iterator[Recorder]:
    """Pin ``recorder`` as the active one for the dynamic extent."""
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)


@contextlib.contextmanager
def detached(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Pin a fresh recorder *and* an empty scope stack for the extent.

    :func:`using` alone does not isolate a measurement: frames already on
    the scope stack keep charging their counter objects — which belong to
    the *outer* recorder — through :func:`_charged`.  A record-here,
    replay-there block (the worker-pool inline fallback, the batch-scan
    memo) run inline under active scopes would therefore charge those
    scopes twice: once by leak-through, once by the replay.  Detaching
    clears the stack too, so the block's counts land only in the fresh
    recorder; the caller replays them wherever they belong.
    """
    rec = recorder if recorder is not None else Recorder()
    stack_token = _STACK.set(())
    rec_token = _RECORDER.set(rec)
    try:
        yield rec
    finally:
        _RECORDER.reset(rec_token)
        _STACK.reset(stack_token)


def reset() -> None:
    """Drop all counters, scopes and events (benchmarks call this between
    runs).  Scopes still open keep charging their (now detached) counter
    objects, which simply no longer appear in :func:`snapshot`."""
    current_recorder().reset()


# ---------------------------------------------------------------------------
# Scopes.
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def scope(name: str) -> Iterator[Counters]:
    """Attribute operations performed inside the block to ``name``.

    Exit restores the exact prior stack (token-based), so re-entrant
    same-name scopes and teardown on exception are both correct.  Wall
    time is charged inclusively as the *union* of open intervals: the
    recorder refcounts open frames per counter object, so a same-name
    re-entry in one task — or the same scope open concurrently in two
    tasks or threads sharing the recorder — books each wall-clock second
    exactly once.  (The previous stack-local rule saw only its own task's
    frames and double-booked concurrent overlap.)
    """
    rec = current_recorder()
    counters = rec.counters_for(name)
    frame = _Frame(name, counters, time.perf_counter())
    token = _STACK.set(_STACK.get() + (frame,))
    with rec._lock:
        entry = rec._open.get(id(counters))
        if entry is None:
            rec._open[id(counters)] = [1, frame.t0]
        else:
            entry[0] += 1
    rec.trace("scope-begin", name)
    try:
        yield counters
    finally:
        _STACK.reset(token)
        now = time.perf_counter()
        with rec._lock:
            entry = rec._open.get(id(counters))
            # A reset() between enter and exit drops the entry: the
            # detached counter simply misses its wall charge.
            if entry is not None:
                entry[0] -= 1
                if entry[0] <= 0:
                    counters.wall_time += now - entry[1]
                    del rec._open[id(counters)]
        rec.trace("scope-end", name, elapsed=now - frame.t0)


@contextlib.contextmanager
def timer(name: str) -> Iterator[Counters]:
    """Alias of :func:`scope` for call sites that only want the clock."""
    with scope(name) as counters:
        yield counters


def active_scopes() -> List[str]:
    """Names currently on the scope stack, outermost first (diagnostics)."""
    return [frame.name for frame in _STACK.get()]


def _charged() -> List[Counters]:
    """Every counter object the current operation must be charged to:
    the recorder's total plus each *distinct* active scope (a name opened
    twice on the stack shares one ``Counters`` and is charged once)."""
    rec = current_recorder()
    total = rec.counters_for(_TOTAL)
    targets = [total]
    seen = {id(total)}
    for frame in _STACK.get():
        ident = id(frame.counters)
        if ident not in seen:
            seen.add(ident)
            targets.append(frame.counters)
    return targets


def _innermost() -> str:
    stack = _STACK.get()
    return stack[-1].name if stack else _TOTAL


# ---------------------------------------------------------------------------
# Counting hooks.
# ---------------------------------------------------------------------------


def count_modexp(amount: int = 1) -> None:
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            c.modexp += amount
    rec.trace("modexp", _innermost(), count=amount)


def count_modmul(amount: int = 1) -> None:
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            c.modmul += amount
    rec.trace("modmul", _innermost(), count=amount)


def count_hash(amount: int = 1) -> None:
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            c.hashes += amount
    rec.trace("hash", _innermost(), count=amount)


def count_pairing(amount: int = 1) -> None:
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            c.pairings += amount


def count_message_sent(nbytes: int = 0) -> None:
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            c.messages_sent += 1
            c.bytes_sent += nbytes
    rec.trace("send", _innermost(), nbytes=nbytes)


def count_message_received(nbytes: int = 0) -> None:
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            c.messages_received += 1
            c.bytes_received += nbytes
    rec.trace("recv", _innermost(), nbytes=nbytes)


def bump(name: str, amount: int = 1) -> None:
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            c.bump(name, amount)


def replayable_totals(recorder: Recorder) -> Dict[str, int]:
    """The non-zero totals of ``recorder`` as a flat dict :func:`replay`
    accepts: fixed :data:`REPLAY_FIELDS` plus ``extra`` counters, wall
    time excluded.  The record-elsewhere/replay-here half of the worker
    pool and batch-scan protocols."""
    totals = recorder.total()
    counts: Dict[str, int] = {}
    for name in REPLAY_FIELDS:
        value = getattr(totals, name)
        if value:
            counts[name] = value
    for name, value in totals.extra.items():
        if value:
            counts[name] = counts.get(name, 0) + value
    return counts


def replay(counts: Dict[str, int]) -> None:
    """Charge a bulk dict of counts produced under *another* recorder —
    e.g. a :mod:`repro.accel.pool` worker process — to the current one.

    Keys are fixed field names (:data:`REPLAY_FIELDS`) or ``extra``
    counter names; everything is charged to the total plus each distinct
    active scope, exactly as if the operations had run inline here.
    ``wall_time`` keys are ignored (worker clocks overlap the parent's).
    """
    if not counts:
        return
    fixed = [(k, v) for k, v in counts.items() if k in _REPLAY_SET and v]
    extras = [(k, v) for k, v in counts.items()
              if k not in _REPLAY_SET and k != "wall_time" and v]
    if not fixed and not extras:
        return
    rec = current_recorder()
    with rec._lock:
        for c in _charged():
            for name, amount in fixed:
                setattr(c, name, getattr(c, name) + amount)
            for name, amount in extras:
                c.bump(name, amount)
    modexp_total = counts.get("modexp", 0)
    if modexp_total:
        rec.trace("modexp", _innermost(), count=modexp_total)


# ---------------------------------------------------------------------------
# Reading results.
# ---------------------------------------------------------------------------


def snapshot() -> Dict[str, Counters]:
    """Return a copy of every scope's counters."""
    return current_recorder().snapshot()


def total() -> Counters:
    """Counters accumulated since the last :func:`reset`."""
    return current_recorder().total()


def value(scope_name: str, field_name: str, default: int = 0) -> object:
    """One value out of the current snapshot, via the exporter view.

    ``field_name`` may be a fixed field (``"modexp"``) or an ``extra``
    key (``"hs-sent:0"``).  Missing scope or field yields ``default`` —
    benchmark code reads counters through this instead of poking
    :class:`Counters` attributes."""
    counters = snapshot().get(scope_name)
    if counters is None:
        return default
    return counters.as_dict().get(field_name, default)


# ---------------------------------------------------------------------------
# Histograms + spans (module-level proxies).
# ---------------------------------------------------------------------------


def observe(name: str, value: float,
            bounds: Optional[Sequence[float]] = None) -> None:
    """Record one observation into the named histogram of the current
    recorder (created on first use; ``bounds`` only matter then)."""
    current_recorder().observe(name, value, bounds)


def histogram(name: str,
              bounds: Optional[Sequence[float]] = None) -> Histogram:
    """The live named histogram of the current recorder."""
    return current_recorder().histogram(name, bounds)


def histograms() -> Dict[str, Histogram]:
    """Copies of every histogram in the current recorder."""
    return current_recorder().histograms()


def spans() -> List[object]:
    """Finished spans recorded since the last :func:`reset` (see
    :mod:`repro.obs.spans` for the span type and how to start them)."""
    return current_recorder().spans()


# ---------------------------------------------------------------------------
# Tracing controls.
# ---------------------------------------------------------------------------


def enable_tracing(on: bool = True) -> None:
    """Switch the structured trace-event stream on (off by default —
    counting stays cheap unless someone asks for the event log)."""
    current_recorder().tracing = on


@contextlib.contextmanager
def tracing() -> Iterator[None]:
    """Enable trace events for the extent of the block."""
    rec = current_recorder()
    before = rec.tracing
    rec.tracing = True
    try:
        yield
    finally:
        rec.tracing = before


def events() -> List[TraceEvent]:
    """The trace-event stream since the last :func:`reset` (copies)."""
    return current_recorder().events()


# ---------------------------------------------------------------------------
# Exporters.
# ---------------------------------------------------------------------------


def export_json(snap: Optional[Dict[str, Counters]] = None, *,
                include_events: bool = False,
                include_histograms: bool = True, indent: int = 2) -> str:
    """Serialize a snapshot (default: the live one) as JSON.

    Layout: ``{"scopes": {...}, "histograms": {...}, "events": [...]}``;
    events only when requested (they can be large), histograms whenever
    any exist."""
    snap = snapshot() if snap is None else snap
    doc: Dict[str, object] = {
        "scopes": {name: c.as_dict() for name, c in sorted(snap.items())}
    }
    if include_histograms:
        hists = histograms()
        if hists:
            doc["histograms"] = {
                name: hists[name].summary() for name in sorted(hists)
            }
    if include_events:
        doc["events"] = [e.as_dict() for e in events()]
    return json.dumps(doc, indent=indent, sort_keys=False)


def format_histograms(hists: Optional[Dict[str, Histogram]] = None,
                      title: str = "histograms") -> str:
    """Aligned percentile table, one row per histogram (CLI helper)."""
    hists = histograms() if hists is None else hists
    header = ["histogram", "count", "min", "p50", "p90", "p99", "max", "mean"]
    rows: List[List[str]] = []
    for name in sorted(hists):
        s = hists[name].summary()
        rows.append([name, str(s["count"])] + [
            "-" if s[k] is None else f"{s[k]:.6g}"
            for k in ("min", "p50", "p90", "p99", "max", "mean")
        ])
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title),
             "  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def export_csv(snap: Optional[Dict[str, Counters]] = None) -> str:
    """Serialize a snapshot as CSV: one row per scope, fixed fields plus
    the union of all ``extra`` keys as trailing columns."""
    snap = snapshot() if snap is None else snap
    extra_keys = sorted({k for c in snap.values() for k in c.extra})
    header = ["scope", *FIELDS, *extra_keys]
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    for name in sorted(snap):
        flat = snap[name].as_dict()
        writer.writerow([name] + [flat.get(col, 0) for col in header[1:]])
    return buf.getvalue()


def write_json(path: str, **kwargs) -> None:
    with open(path, "w") as handle:
        handle.write(export_json(**kwargs) + "\n")


def write_csv(path: str) -> None:
    with open(path, "w") as handle:
        handle.write(export_csv())


def format_table(snap: Optional[Dict[str, Counters]] = None,
                 scopes: Optional[Sequence[str]] = None,
                 fields: Sequence[str] = ("modexp", "messages_sent",
                                          "messages_received", "bytes_sent",
                                          "bytes_received", "wall_time"),
                 title: str = "metrics") -> str:
    """Render selected scopes x fields as an aligned text table (the CLI
    and the benchmark harness share this)."""
    snap = snapshot() if snap is None else snap
    names = list(scopes) if scopes is not None else sorted(snap)
    header = ["scope", *fields]
    rows: List[List[str]] = []
    for name in names:
        counters = snap.get(name)
        flat = counters.as_dict() if counters is not None else {}
        cells = [name]
        for f in fields:
            v = flat.get(f, 0)
            cells.append(f"{v:.4f}" if isinstance(v, float) else str(v))
        rows.append(cells)
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title),
             "  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
