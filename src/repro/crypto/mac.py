"""Message authentication codes.

The handshake's Phase II (Fig. 6) publishes ``MAC(k'_i, s, i)`` where ``s``
is a string unique to party ``i``.  We implement HMAC-SHA256 with the
canonical encoding from :mod:`repro.crypto.hashing` so the MAC'd tuple is
unambiguous.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro import metrics
from repro.crypto import hashing
from repro.errors import ParameterError

TAG_LENGTH = 32


def mac(key: bytes, *values) -> bytes:
    """HMAC-SHA256 over the canonical encoding of ``values``."""
    if not key:
        raise ParameterError("MAC key must be non-empty")
    metrics.count_hash()
    return _hmac.new(key, hashing.encode(*values), hashlib.sha256).digest()


def verify(key: bytes, tag: bytes, *values) -> bool:
    """Constant-time verification of an HMAC tag."""
    if len(tag) != TAG_LENGTH:
        return False
    return _hmac.compare_digest(mac(key, *values), tag)


def mac_from_int(key_int: int, *values) -> bytes:
    """MAC keyed by a group-element-sized integer (used with k'_i)."""
    return mac(hashing.int_to_key(key_int, "mac-key"), *values)


def verify_from_int(key_int: int, tag: bytes, *values) -> bool:
    """Verify a tag produced by :func:`mac_from_int`."""
    return verify(hashing.int_to_key(key_int, "mac-key"), tag, *values)
