"""Precomputed cryptographic parameters and length profiles.

Safe primes are expensive to generate, so the library ships several
precomputed sets (the same philosophy as the RFC 3526 MODP groups: fixed,
published parameters).  They were produced by ``scripts/gen_params.py`` with
32 rounds of Miller-Rabin on both ``p`` and ``(p-1)/2``.

Two families of parameters live here:

* :class:`DHParams` — safe-prime groups for Diffie-Hellman style protocols
  (the DGKA component, ElGamal, Cramer-Shoup). ``g`` generates the order-q
  subgroup of quadratic residues, ``q = (p-1)/2``.
* :class:`AcjtLengths` — the bit-length profile (``lp``, ``k``, ``epsilon``,
  ``lambda1/2``, ``gamma1/2``) that parameterizes ACJT-style group
  signatures and the Kiayias-Yung variant.

Security note: profiles named ``tiny``/``test`` exist so the test-suite runs
in seconds.  They intentionally relax the ACJT requirement ``lambda2 > 4*lp``
(documented in DESIGN.md).  Use ``secure`` profiles for anything real.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto import primes
from repro.crypto.modmath import mexp
from repro.errors import ParameterError

# --------------------------------------------------------------------------
# Precomputed safe primes, indexed by bit size.  Three per size: the first
# two are used as RSA factors (p, q), the third as a DH group modulus.
# --------------------------------------------------------------------------

SAFE_PRIMES: Dict[int, Tuple[int, ...]] = {
    256: (
        0xF59D7C48337E98EF48206DE7708F436093DCD0DA49B35078A1277F868563E48F,
        0xB2CDB02BAC40AFA6EAE69634482C11213687FAE90FFAE56D317F975363664223,
        0xF3EEEE93CBA6426D01E2C3C0EF248C824A748DED986E10AB47935530CF572EAB,
    ),
    384: (
        0xF49E4D9B4F84B94792A78A78C83ABE8FA44885ADB22366979EFDC208711790CC0557FA6BB41F753B87EF60E48D3DFC1B,
        0x991D0BDA8D44A8162359CD3844984BDD6575C01A9762FFD702B9F0F05ADE15FBF9088C4AA5DFFD864EAA95622934A53F,
        0xFC8EFFC92026B6E9CFF40ECCBFDE566DF5B4E727E06D3C653E8921A5AE2268B1523C518BE31719FD16B5B459019A788F,
    ),
    512: (
        0xA5887BAC3829422D758D93E31CDD103B6D9A4134AC1109F5AA5B4B3FC3100C3BCA1CB5543554A152813F5D0E4E1699954ABFA970EB9655C2D2F888181C602387,
        0xE58455036CC1B654101917CA0E8A21F37B4CBEBF438A08E6C8B1ABE7591E0082E791E90F74FFDCC5B4170F94AAEB2C7FC6BF0C3647CC22E767157153BC4691EF,
        0xC63EDE72B6678CDD40EFF3F7A16D30431A8D9C7D444EB9B8B8FF674888224C69C4734DA6B913196FAD4772CD570FF145D1D750E17AFE2AADBBEA9F5D0EB0C4DF,
    ),
    768: (
        0x868D197B7EF7174E72275C52114A743989E31EE65BCD595D60AE833BEE59550A1B71412066466035D51B14623D2434BD5E5B2D35358634CC6CD4078B743A79E287646B8736DD0C968A6A6504C101C89F81506AE1F1AB75DBEE0A3A574D40B393,
        0xD55A4D33B486D487AC121C4492A5C492F1BF9E97A70A94B32E5EC7B10C99FFBC9D620AAFE4286DC5E92F2D06BC48C2C08545EA0D0937BF27D2AAEAC10F7988F9C93EBDD3C9917E1D2E6632A6DD62D3FC829C3C539C40F48485E4329A53FAA60B,
        0xECC8A57711FE4A908EB6B579867FF54D45F17333D153FD804AC94F29A1CD72B016E993BC34657FDA831AFDAE98FAB14EC1BE42A032F810C91B0D6FAFF2C3F05AB9AC45829E66F76D1AEDAEACA2F405F7B27DC5E6CAEE6DBFABD221CD23F21507,
    ),
    1024: (
        0xF1DC8BECEA491D4D05F862E58CD4574FA37C8BA66704D7C093C1AA9A2D125359214400EA0F7C517DFFEAE365B04929EE740C03B0220BE77EBD5F2AEE91D98342F334DDA90C3EBDC9D149568178353F5E79C9FEBE6A97B15199819DD1D444C5DDD4423594374308F29FC68B5162A001D6275B04B823302D2EC189955AD38DF10F,
        0x917C3284F5E92F07AA4F4D52C438E17F71EFFB78A46145656837619F23E3CECA5B78EBCA062A436019B23515534D712F9C26248F08B242C3BBDB8B1C4E16D5DE608889CB998CB09CD4E2DB682C4A8A33CBBF4A2B370B993018255892A4D813843CB7B0A3FB7F5717C6D692B926B1722777604197608CC1AAFD9FB2CE3A6835C7,
        0x85DE79BDBE16870A9FD82BAFA4584D701BF9F3A80DD5F6AA42F17E505DA80AB649433F0BC7578367DCBDA5AF8362A05239A7F3E0CFF751B8E6503803F8A7C019F90473B56AEC47C76109B91806FB6A6281A49F5F5E7A923BBF2839577DF01D33FFE10B4670561427FCE46BFA3CE1B0272737583858CB5B265FA1ADACD87CB35F,
    ),
    1536: (
        0xBD6E17A8E82080C166528CD384ECDA7ECC0C9A77851713E06BAE79CEC84A6E99E09549722F377FD285D057A650024AC06F126CBAC7814C1432E080AA967F197EAFC8FE57360A1CBE31A0FD49740EE70AA46F5AEABA4E7CC91ABF6C86094AB9A182DFEADBEFC0E1E5B9CD357649CBEC3E118F67938B56941F34ED4EC1708FB41CEA65EAEEF1CC108BC2F3F32A6E088CCA8693E302C3AB0D379F201CF59E832F29459604D2D0A0DCD93A011D2C911C412F593F16CA28AAAA5C56AD583AD2009B97,
        0xC9E986C0425C0DD8B5D59FB373CEF9A05607702AB465824CD6D16932CA579720F1FD7DD0E375CD3E3C5ED693F637ED482AE164590B487C00377EC064662BA747248E23921C60ED561028DD3AAEC0724BB3DB487476A08639F3D1517D6822BBA8B5069A4514A5D76BD7BCB3D8F749379BAA1955CF0480756250764D01C2761A9986BCD1A4DF738B7C29B520E2BBB1C7E191D26055561B6D9927978DB2CD43F7AEA8105ECC3B9987C65769537EC62E8FC117BDFA39CF0F2A5AAE084C8F39D45DDF,
        0xB7D4208926F444E5BC80AD8D9B7879D8D7DAE408D55B6F06072D0EDA4F1ED0F26902D54D2EA8199E7547A09A6D6F7409D654588EE384EE55F20FE4E8DC9596BFD9412AFFEE6B6AE54507626B71D9D754F8BE78F0D8E26EB15EFAD3B9AA1B2078B86BB402E3D541F6958A9764F4F425438DDBF5E068E53FE35CDE3AE29C1D2E6554B70F1EB7BEA600AA5FC817395CE5B699C7B9A0C9F5F6113632568A7B00ED6E832E62E71F752E6A3519D8C4CC650F4EE8F645D638657EB654D19AFBE2D25E5B,
    ),
}


@dataclass(frozen=True)
class DHParams:
    """A safe-prime group: ``p = 2q + 1``, ``g`` generates QR(p) of order q."""

    p: int
    q: int
    g: int
    name: str = ""

    def contains(self, element: int) -> bool:
        """True iff ``element`` is in the order-q subgroup of QR(p)."""
        if not 1 <= element < self.p:
            return False
        return mexp(element, self.q, self.p) == 1

    def random_exponent(self, rng: Optional[random.Random] = None) -> int:
        rng = rng or random
        return rng.randrange(1, self.q)

    def exp(self, base: int, exponent: int) -> int:
        return mexp(base, exponent, self.p)

    def power_of_g(self, exponent: int) -> int:
        return mexp(self.g, exponent, self.p)


def _find_qr_generator(p: int) -> int:
    """Smallest square that generates QR(p) for safe prime p.

    For a safe prime, QR(p) has prime order q, so any residue other than 1
    generates it; 4 = 2^2 always works.
    """
    return 4 % p


_DH_CACHE: Dict[int, DHParams] = {}


def dh_group(bits: int) -> DHParams:
    """A precomputed safe-prime DH group of the requested size."""
    if bits not in SAFE_PRIMES:
        raise ParameterError(
            f"no precomputed {bits}-bit safe prime; available: {sorted(SAFE_PRIMES)}"
        )
    if bits not in _DH_CACHE:
        p = SAFE_PRIMES[bits][2]
        params = DHParams(
            p=p, q=(p - 1) // 2, g=_find_qr_generator(p), name=f"modp-{bits}"
        )
        # The subgroup generator is exponentiated for the life of the
        # process — a prime candidate for fixed-base precomputation.
        from repro.accel.fixed_base import register_base
        register_base(params.g, p)
        _DH_CACHE[bits] = params
    return _DH_CACHE[bits]


def rsa_safe_primes(bits_each: int) -> Tuple[int, int]:
    """A precomputed pair of distinct safe primes for an RSA modulus."""
    if bits_each not in SAFE_PRIMES:
        raise ParameterError(
            f"no precomputed {bits_each}-bit safe primes; available: {sorted(SAFE_PRIMES)}"
        )
    p, q = SAFE_PRIMES[bits_each][0], SAFE_PRIMES[bits_each][1]
    return p, q


# --------------------------------------------------------------------------
# ACJT bit-length profiles.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AcjtLengths:
    """Bit lengths for ACJT-style signatures.

    ``lp``     : bit length of each RSA safe-prime factor.
    ``k``      : challenge length (Fiat-Shamir hash truncation).
    ``epsilon``: slack factor (> 1); we use integer 2 for simple arithmetic.
    ``lambda1, lambda2`` : membership-secret interval ``Lambda``.
    ``gamma1, gamma2``   : certificate-prime interval ``Gamma``.

    Invariants enforced: ``lambda1 > epsilon*(lambda2 + k) + 2`` and
    ``gamma1 > epsilon*(gamma2 + k) + 2`` and ``gamma2 > lambda1 + 2``.
    The full ACJT security analysis additionally wants ``lambda2 > 4*lp``;
    the ``strict`` flag records whether a profile satisfies it.
    """

    lp: int
    k: int
    epsilon: int
    lambda2: int
    name: str = ""

    @property
    def lambda1(self) -> int:
        return self.epsilon * (self.lambda2 + self.k) + 3

    @property
    def gamma2(self) -> int:
        return self.lambda1 + 3

    @property
    def gamma1(self) -> int:
        return self.epsilon * (self.gamma2 + self.k) + 3

    @property
    def strict(self) -> bool:
        return self.lambda2 > 4 * self.lp

    @property
    def modulus_bits(self) -> int:
        return 2 * self.lp

    def validate(self) -> None:
        if self.epsilon < 2:
            raise ParameterError("epsilon must be >= 2 (integer slack)")
        if self.lambda1 <= self.epsilon * (self.lambda2 + self.k) + 2:
            raise ParameterError("lambda1 too small")
        if self.gamma1 <= self.epsilon * (self.gamma2 + self.k) + 2:
            raise ParameterError("gamma1 too small")
        if self.gamma2 <= self.lambda1 + 2:
            raise ParameterError("gamma2 too small")

    # Interval bounds -------------------------------------------------------

    @property
    def x_low(self) -> int:
        return (1 << self.lambda1) - (1 << self.lambda2)

    @property
    def x_high(self) -> int:
        return (1 << self.lambda1) + (1 << self.lambda2)

    @property
    def e_low(self) -> int:
        return (1 << self.gamma1) - (1 << self.gamma2)

    @property
    def e_high(self) -> int:
        return (1 << self.gamma1) + (1 << self.gamma2)


_PROFILES: Dict[str, AcjtLengths] = {
    # Fast research profile for the test-suite: everything fits in a few
    # hundred bits, protocol logic identical to production.
    "tiny": AcjtLengths(lp=256, k=80, epsilon=2, lambda2=96, name="tiny"),
    # Medium profile used by benchmarks.
    "test": AcjtLengths(lp=384, k=128, epsilon=2, lambda2=160, name="test"),
    # Parameter sizes in the spirit of the original ACJT recommendation
    # (lp = 512) with the strict lambda2 > 4 lp requirement honoured.
    "secure": AcjtLengths(lp=512, k=160, epsilon=2, lambda2=2080, name="secure"),
    # Larger modulus, still strict.
    "secure-1536": AcjtLengths(lp=768, k=160, epsilon=2, lambda2=3120, name="secure-1536"),
}


def acjt_profile(name: str = "tiny") -> AcjtLengths:
    """Look up a named ACJT length profile."""
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise ParameterError(
            f"unknown ACJT profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
    profile.validate()
    return profile


def verify_embedded_parameters(rounds: int = 8) -> bool:
    """Re-check primality of every embedded safe prime (used by tests)."""
    for bits, triple in SAFE_PRIMES.items():
        for p in triple:
            if p.bit_length() != bits:
                return False
            if not primes.is_prime(p, rounds) or not primes.is_prime((p - 1) // 2, rounds):
                return False
    return True
