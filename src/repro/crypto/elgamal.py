"""ElGamal encryption over a safe-prime group.

Two flavours:

* :class:`ElGamal` — textbook ElGamal on group elements (IND-CPA under DDH).
  Used by baselines and as a building block.
* :class:`HybridElGamal` — hashed ElGamal KEM + the library AEAD (IND-CCA2
  in the random-oracle model).  Offered as the cheaper alternative to
  Cramer-Shoup for the tracing key; benchmarks compare the two.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto import encoding, hashing, symmetric
from repro.crypto.modmath import inverse, mexp
from repro.crypto.params import DHParams
from repro.errors import DecryptionError


@dataclass(frozen=True)
class ElGamalPublicKey:
    group: DHParams
    h: int  # h = g^x


@dataclass(frozen=True)
class ElGamalSecretKey:
    group: DHParams
    x: int


@dataclass(frozen=True)
class ElGamalCiphertext:
    c1: int
    c2: int


class ElGamal:
    """Textbook ElGamal on subgroup elements."""

    @staticmethod
    def keygen(group: DHParams,
               rng: Optional[random.Random] = None) -> Tuple[ElGamalPublicKey, ElGamalSecretKey]:
        rng = rng or random
        x = group.random_exponent(rng)
        return ElGamalPublicKey(group, group.power_of_g(x)), ElGamalSecretKey(group, x)

    @staticmethod
    def encrypt_element(pk: ElGamalPublicKey, m: int,
                        rng: Optional[random.Random] = None) -> ElGamalCiphertext:
        rng = rng or random
        r = pk.group.random_exponent(rng)
        c1 = pk.group.power_of_g(r)
        c2 = (mexp(pk.h, r, pk.group.p) * m) % pk.group.p
        return ElGamalCiphertext(c1, c2)

    @staticmethod
    def decrypt_element(sk: ElGamalSecretKey, ct: ElGamalCiphertext) -> int:
        shared = mexp(ct.c1, sk.x, sk.group.p)
        return (ct.c2 * inverse(shared, sk.group.p)) % sk.group.p

    @staticmethod
    def encrypt_bytes(pk: ElGamalPublicKey, message: bytes,
                      rng: Optional[random.Random] = None) -> ElGamalCiphertext:
        return ElGamal.encrypt_element(
            pk, encoding.bytes_to_element(pk.group, message), rng
        )

    @staticmethod
    def decrypt_bytes(sk: ElGamalSecretKey, ct: ElGamalCiphertext) -> bytes:
        return encoding.element_to_bytes(sk.group, ElGamal.decrypt_element(sk, ct))

    @staticmethod
    def rerandomize(pk: ElGamalPublicKey, ct: ElGamalCiphertext,
                    rng: Optional[random.Random] = None) -> ElGamalCiphertext:
        """Multiply in a fresh encryption of 1 (used in unlinkability tests)."""
        rng = rng or random
        r = pk.group.random_exponent(rng)
        c1 = (ct.c1 * pk.group.power_of_g(r)) % pk.group.p
        c2 = (ct.c2 * mexp(pk.h, r, pk.group.p)) % pk.group.p
        return ElGamalCiphertext(c1, c2)


class HybridElGamal:
    """Hashed-ElGamal KEM + AEAD.  Ciphertext: ``(c1, aead_blob)``."""

    @staticmethod
    def keygen(group: DHParams,
               rng: Optional[random.Random] = None) -> Tuple[ElGamalPublicKey, ElGamalSecretKey]:
        return ElGamal.keygen(group, rng)

    @staticmethod
    def encrypt(pk: ElGamalPublicKey, message: bytes,
                rng: Optional[random.Random] = None) -> Tuple[int, bytes]:
        rng = rng or random
        r = pk.group.random_exponent(rng)
        c1 = pk.group.power_of_g(r)
        shared = mexp(pk.h, r, pk.group.p)
        key = hashing.digest("hybrid-elgamal-kem", pk.group.p, pk.h, c1, shared)
        return c1, symmetric.encrypt(key, message, rng)

    @staticmethod
    def decrypt(sk: ElGamalSecretKey, ciphertext: Tuple[int, bytes]) -> bytes:
        c1, blob = ciphertext
        if not 1 <= c1 < sk.group.p:
            raise DecryptionError("KEM element out of range")
        shared = mexp(c1, sk.x, sk.group.p)
        h = sk.group.power_of_g(sk.x)
        key = hashing.digest("hybrid-elgamal-kem", sk.group.p, h, c1, shared)
        return symmetric.decrypt(key, blob)
