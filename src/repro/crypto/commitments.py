"""Pedersen commitments over known-order and hidden-order groups.

* :class:`PedersenScheme` — over a safe-prime DH group (order q known):
  ``commit(m; r) = g^m h^r`` with m, r in Z_q.  Perfectly hiding,
  computationally binding under discrete log.
* :class:`IntegerPedersenScheme` — over QR(n) (hidden order): commitments to
  arbitrary integers, as used inside the accumulator's ZK membership proof
  and the ACJT-style signature proofs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.modmath import mexp
from repro.crypto.params import DHParams
from repro.crypto.rsa import RsaGroup
from repro.errors import ParameterError


@dataclass(frozen=True)
class PedersenScheme:
    """Pedersen commitments in an order-q subgroup.

    ``h`` must have unknown discrete log w.r.t. ``g`` for binding; the
    constructor derives it from a random exponent that is thrown away.
    """

    group: DHParams
    h: int

    @classmethod
    def setup(cls, group: DHParams, rng: Optional[random.Random] = None) -> "PedersenScheme":
        rng = rng or random
        h = group.power_of_g(group.random_exponent(rng))
        while h == 1 or h == group.g:
            h = group.power_of_g(group.random_exponent(rng))
        return cls(group=group, h=h)

    def commit(self, message: int,
               rng: Optional[random.Random] = None) -> Tuple[int, int]:
        """Return ``(commitment, opening)``."""
        rng = rng or random
        r = self.group.random_exponent(rng)
        return self.commit_with(message, r), r

    def commit_with(self, message: int, r: int) -> int:
        m = message % self.group.q
        return (
            self.group.power_of_g(m) * mexp(self.h, r % self.group.q, self.group.p)
        ) % self.group.p

    def verify(self, commitment: int, message: int, r: int) -> bool:
        return commitment == self.commit_with(message, r)

    def combine(self, c1: int, c2: int) -> int:
        """Homomorphic addition: commit(m1+m2; r1+r2)."""
        return (c1 * c2) % self.group.p


@dataclass(frozen=True)
class IntegerPedersenScheme:
    """Pedersen commitments to integers in QR(n) (hidden order).

    ``commit(m; r) = g^m h^r mod n`` with r drawn from [1, n/4).  Hiding is
    statistical; binding rests on the strong RSA assumption.
    """

    group: RsaGroup
    g: int
    h: int

    @classmethod
    def setup(cls, group: RsaGroup,
              rng: Optional[random.Random] = None) -> "IntegerPedersenScheme":
        g = group.random_generator(rng)
        h = group.random_generator(rng)
        while h == g:
            h = group.random_generator(rng)
        return cls(group=group, g=g, h=h)

    def commit(self, message: int,
               rng: Optional[random.Random] = None) -> Tuple[int, int]:
        if message < 0:
            raise ParameterError("integer commitments expect non-negative messages")
        r = self.group.random_qr_exponent(rng)
        return self.commit_with(message, r), r

    def commit_with(self, message: int, r: int) -> int:
        return self.group.mul(
            self.group.exp(self.g, message), self.group.exp(self.h, r)
        )

    def verify(self, commitment: int, message: int, r: int) -> bool:
        return commitment == self.commit_with(message, r)
