"""Camenisch-Lysyanskaya dynamic accumulator (CRYPTO 2002).

The paper's Section 3 observes that group-signature revocation is "usually
based on dynamic accumulators [12]"; scheme 1 therefore revokes GSIG
credentials through this accumulator.  An accumulator value ``v`` in QR(n)
absorbs a set of primes {e_i}; each member holds a witness ``w`` with
``w^{e_i} = v (mod n)``.

Operations:

* ``add(e)``      — v' = v^e; every existing witness updates as w' = w^e.
* ``delete(e)``   — v' = v^{1/e mod p'q'} (manager, with trapdoor); every
  remaining member updates its witness *without* the trapdoor via the
  Bezout identity a*e_del + b*e_mine = 1:  w' = w^a * v'^b.
* ``verify``      — w^e == v.
* :class:`AccumulatorMembershipProof` — zero-knowledge proof of knowledge of
  a witness for a *committed* value (so a group signature can prove
  "my certificate prime is currently accumulated" without revealing it).

The ZK proof follows the Camenisch-Lysyanskaya commitment technique: blind
the witness as ``Cu = w * h^{r2}``, publish auxiliary commitment
``Cr = g^{r2} h^{r3}``, and prove consistency of the exponents with a
Fiat-Shamir proof over the hidden-order group, including an interval check
on the certificate prime.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.crypto import hashing
from repro.crypto.commitments import IntegerPedersenScheme
from repro.crypto.modmath import egcd, int_in_symmetric_range, mexp, random_int_symmetric
from repro.crypto.params import AcjtLengths
from repro.crypto.rsa import RsaGroup
from repro.errors import ParameterError, RevocationError, VerificationError


@dataclass(frozen=True)
class AccumulatorPublic:
    """Everything a verifier needs: the modulus and the current value."""

    n: int
    value: int
    epoch: int


class Accumulator:
    """Manager-side dynamic accumulator (holds the trapdoor)."""

    def __init__(self, group: RsaGroup, rng: Optional[random.Random] = None) -> None:
        if not group.has_trapdoor:
            raise ParameterError("accumulator manager needs the RSA trapdoor")
        self._group = group
        self._value = group.random_generator(rng)
        self._members: Dict[int, int] = {}  # prime -> epoch added
        self._epoch = 0

    # Introspection ----------------------------------------------------------

    @property
    def group(self) -> RsaGroup:
        return self._group

    @property
    def value(self) -> int:
        return self._value

    @property
    def epoch(self) -> int:
        return self._epoch

    def public(self) -> AccumulatorPublic:
        return AccumulatorPublic(n=self._group.n, value=self._value, epoch=self._epoch)

    def contains(self, e: int) -> bool:
        return e in self._members

    def __len__(self) -> int:
        return len(self._members)

    # Mutation ----------------------------------------------------------------

    def add(self, e: int) -> int:
        """Accumulate prime ``e``; returns the *witness* for ``e`` (the value
        before this addition, exponentiated by everything added since — which
        at add time is simply the pre-add value)."""
        self._check_prime(e)
        if e in self._members:
            raise RevocationError(f"{e} already accumulated")
        witness = self._value
        self._value = self._group.exp(self._value, e)
        self._members[e] = self._epoch
        self._epoch += 1
        return witness

    def delete(self, e: int) -> None:
        """Remove prime ``e`` using the trapdoor: v' = v^{1/e}."""
        if e not in self._members:
            raise RevocationError(f"{e} not accumulated")
        inv = self._group.invert_exponent(e)
        self._value = self._group.exp(self._value, inv)
        del self._members[e]
        self._epoch += 1

    def delete_batch(self, primes: Sequence[int]) -> None:
        """Remove a whole revocation epoch's primes with ONE trapdoor
        exponentiation: v' = v^{1/(e_1*...*e_k) mod p'q'}.

        This is the manager side of batched epoch rekey — k sequential
        :meth:`delete` calls cost k modexps, the batch costs exactly one
        (plus one egcd for the inverted exponent), and the whole batch
        advances the epoch counter by a single step so members can apply
        one coalesced witness update per epoch.
        """
        batch = list(primes)
        if not batch:
            raise RevocationError("empty revocation batch")
        if len(set(batch)) != len(batch):
            raise RevocationError("duplicate prime in revocation batch")
        for e in batch:
            if e not in self._members:
                raise RevocationError(f"{e} not accumulated")
        product = math.prod(batch)
        inv = self._group.invert_exponent(product)
        self._value = self._group.exp(self._value, inv)
        for e in batch:
            del self._members[e]
        self._epoch += 1

    def issue_witness(self, e: int) -> int:
        """Fresh witness for an accumulated prime via the trapdoor:
        w = v^{1/e}.  One modexp regardless of how many epochs the member
        slept through — the manager-assisted fallback of lazy refresh."""
        if e not in self._members:
            raise RevocationError(f"{e} not accumulated")
        inv = self._group.invert_exponent(e)
        return self._group.exp(self._value, inv)

    def _check_prime(self, e: int) -> None:
        if e < 3 or e % 2 == 0:
            raise ParameterError("accumulated values must be odd primes >= 3")
        if not self._group.coprime_to_order(e):
            raise ParameterError("prime shares a factor with the group order")

    # Verification -------------------------------------------------------------

    def verify_witness(self, witness: int, e: int) -> bool:
        return verify_witness(self.public(), witness, e)


def verify_witness(public: AccumulatorPublic, witness: int, e: int) -> bool:
    """Public check: witness^e == value (mod n)."""
    if not 1 < witness < public.n:
        return False
    return pow(witness, e, public.n) == public.value


def update_witness_after_add(witness: int, added_e: int, n: int) -> int:
    """Member-side witness refresh after another prime was accumulated.

    Counted through :func:`mexp` so the witness-maintenance books are as
    honest as the handshake books (one modexp per missed addition)."""
    return mexp(witness, added_e, n)


def update_witness_after_delete(
    witness: int, own_e: int, deleted_e: int, new_value: int, n: int
) -> int:
    """Member-side witness refresh after ``deleted_e`` was removed.

    Uses Bezout: a*deleted_e + b*own_e = 1, then  w' = w^a * v'^b.
    Exactly two counted modexps (negative Bezout coefficients route
    through the counted inversion inside :func:`mexp`).
    """
    g, a, b = egcd(deleted_e, own_e)
    if g != 1:
        raise ParameterError("accumulated primes must be distinct (gcd != 1)")
    return (mexp(witness, a, n) * mexp(new_value, b, n)) % n


def update_witness_epoch(
    witness: int,
    own_e: int,
    added: Iterable[int],
    deleted: Iterable[int],
    new_value: int,
    n: int,
) -> int:
    """Coalesced member-side witness update across one or more epochs.

    ``added``/``deleted`` are every prime accumulated/removed since this
    witness was last current (own prime excluded from ``added``), and
    ``new_value`` the accumulator value after all of them.  Let
    P_A = prod(added) and P_D = prod(deleted); then

        w1 = w^{P_A}                        (absorb the additions)
        a*P_D + b*own_e = 1   (Bezout)      (batched deletion update)
        w' = w1^a * new_value^b

    Correct for any interleaving because  w1^e = v_old^{P_A} = v'^{P_D},
    so  w'^e = v'^{a*P_D + b*e} = v'.  Cost: at most THREE counted
    modexps + one egcd no matter how many epochs were missed — the
    member-side half of the batched-epoch revocation cost model (a
    sequential replay pays 1 modexp per add plus 2 per delete).
    """
    add_product = math.prod(added, start=1)
    del_product = math.prod(deleted, start=1)
    if del_product % own_e == 0:
        raise ParameterError("cannot update a witness for a deleted prime")
    if add_product != 1:
        witness = mexp(witness, add_product, n)
    if del_product == 1:
        return witness
    g, a, b = egcd(del_product, own_e)
    if g != 1:
        raise ParameterError("accumulated primes must be distinct (gcd != 1)")
    return (mexp(witness, a, n) * mexp(new_value, b, n)) % n


@dataclass(frozen=True)
class AccumulatorMembershipProof:
    """NIZK proof of knowledge of (e, w) with w^e = v and e in the ACJT
    certificate interval, bound to the Pedersen commitment ``c_e`` to e."""

    c_e: int
    c_u: int
    c_r: int
    challenge: int
    s_e: int
    s_r1: int
    s_r2: int
    s_r3: int
    s_z: int
    s_w3: int

    @staticmethod
    def create(
        public: AccumulatorPublic,
        pedersen: IntegerPedersenScheme,
        lengths: AcjtLengths,
        e: int,
        witness: int,
        context: bytes = b"",
        rng: Optional[random.Random] = None,
    ) -> "AccumulatorMembershipProof":
        rng = rng or random
        n = public.n
        g, h = pedersen.g, pedersen.h
        if pow(witness, e, n) != public.value:
            raise ParameterError("witness does not open the accumulator")

        r1 = pedersen.group.random_qr_exponent(rng)
        r2 = pedersen.group.random_qr_exponent(rng)
        r3 = pedersen.group.random_qr_exponent(rng)
        c_e = pedersen.commit_with(e, r1)
        c_u = (witness * pow(h, r2, n)) % n
        c_r = pedersen.commit_with(r2, r3)
        z = e * r2
        w3 = e * r3

        ln = n.bit_length()
        eps, k = lengths.epsilon, lengths.k
        t_e = random_int_symmetric(eps * (lengths.gamma2 + k), rng)
        t_r1 = random_int_symmetric(eps * (ln + k), rng)
        t_r2 = random_int_symmetric(eps * (ln + k), rng)
        t_r3 = random_int_symmetric(eps * (ln + k), rng)
        t_z = random_int_symmetric(eps * (lengths.gamma1 + ln + k + 1), rng)
        t_w3 = random_int_symmetric(eps * (lengths.gamma1 + ln + k + 1), rng)

        def gexp(base: int, exponent: int) -> int:
            return mexp(base, exponent, n)

        d1 = (gexp(g, t_e) * gexp(h, t_r1)) % n
        d2 = (gexp(c_u, t_e) * gexp(h, -t_z)) % n
        d3 = (gexp(g, t_r2) * gexp(h, t_r3)) % n
        d4 = (gexp(c_r, t_e) * gexp(g, -t_z) * gexp(h, -t_w3)) % n

        challenge = hashing.hash_to_int(
            "cl-accumulator", k,
            n, public.value, g, h, c_e, c_u, c_r, d1, d2, d3, d4, context,
        )

        return AccumulatorMembershipProof(
            c_e=c_e,
            c_u=c_u,
            c_r=c_r,
            challenge=challenge,
            s_e=t_e - challenge * (e - (1 << lengths.gamma1)),
            s_r1=t_r1 - challenge * r1,
            s_r2=t_r2 - challenge * r2,
            s_r3=t_r3 - challenge * r3,
            s_z=t_z - challenge * z,
            s_w3=t_w3 - challenge * w3,
        )

    def verify(
        self,
        public: AccumulatorPublic,
        pedersen: IntegerPedersenScheme,
        lengths: AcjtLengths,
        context: bytes = b"",
    ) -> bool:
        n = public.n
        g, h = pedersen.g, pedersen.h
        eps, k = lengths.epsilon, lengths.k

        if not int_in_symmetric_range(self.s_e, eps * (lengths.gamma2 + k) + 1):
            return False
        for value in (self.c_e, self.c_u, self.c_r):
            if not 1 <= value < n or math.gcd(value, n) != 1:
                return False

        c = self.challenge
        se_hat = self.s_e - c * (1 << lengths.gamma1)

        def gexp(base: int, exponent: int) -> int:
            return mexp(base, exponent, n)

        d1 = (gexp(self.c_e, c) * gexp(g, se_hat) * gexp(h, self.s_r1)) % n
        d2 = (gexp(public.value, c) * gexp(self.c_u, se_hat) * gexp(h, -self.s_z)) % n
        d3 = (gexp(self.c_r, c) * gexp(g, self.s_r2) * gexp(h, self.s_r3)) % n
        d4 = (gexp(self.c_r, se_hat) * gexp(g, -self.s_z) * gexp(h, -self.s_w3)) % n

        expected = hashing.hash_to_int(
            "cl-accumulator", k,
            n, public.value, g, h, self.c_e, self.c_u, self.c_r,
            d1, d2, d3, d4, context,
        )
        return expected == c


def require_valid_proof(
    proof: AccumulatorMembershipProof,
    public: AccumulatorPublic,
    pedersen: IntegerPedersenScheme,
    lengths: AcjtLengths,
    context: bytes = b"",
) -> None:
    """Raise :class:`VerificationError` unless the proof verifies."""
    if not proof.verify(public, pedersen, lengths, context):
        raise VerificationError("accumulator membership proof rejected")
