"""Safe-prime RSA modulus substrate.

ACJT group signatures, the Kiayias-Yung variant, and the Camenisch-
Lysyanskaya dynamic accumulator all operate in QR(n) for an RSA modulus
``n = p*q`` with ``p = 2p' + 1`` and ``q = 2q' + 1`` safe primes.  QR(n) is
then cyclic of order ``p'q'`` — a hidden-order group, known only to whoever
holds the factorization.

:class:`RsaGroup` bundles the modulus with the (optional) trapdoor and
offers the handful of operations the higher layers need: random QR
generators, exponent inversion mod the group order, and membership-ish
checks (Jacobi symbol; full QR testing requires the trapdoor).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto import params as _params
from repro.crypto.modmath import inverse, jacobi, mexp, random_qr
from repro.crypto.primes import is_safe_prime, random_safe_prime
from repro.errors import ParameterError


@dataclass
class RsaGroup:
    """An RSA modulus of two safe primes, optionally with its trapdoor.

    Public view (verifiers, members): only ``n``.
    Trapdoor view (group manager): ``p``, ``q`` and the QR(n) order
    ``p'q' = (p-1)(q-1)/4``.
    """

    n: int
    p: Optional[int] = field(default=None, repr=False)
    q: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.p is not None and self.q is not None and self.p * self.q != self.n:
            raise ParameterError("p * q != n")

    # Construction ----------------------------------------------------------

    @classmethod
    def from_precomputed(cls, bits_each: int) -> "RsaGroup":
        """Build from the precomputed safe primes in :mod:`params`."""
        p, q = _params.rsa_safe_primes(bits_each)
        return cls(n=p * q, p=p, q=q)

    @classmethod
    def generate(cls, bits_each: int, rng: Optional[random.Random] = None) -> "RsaGroup":
        """Generate a fresh modulus (slow for bits_each >= 512)."""
        p = random_safe_prime(bits_each, rng)
        q = random_safe_prime(bits_each, rng)
        while q == p:
            q = random_safe_prime(bits_each, rng)
        return cls(n=p * q, p=p, q=q)

    # Views ------------------------------------------------------------------

    @property
    def has_trapdoor(self) -> bool:
        return self.p is not None and self.q is not None

    def public(self) -> "RsaGroup":
        """Trapdoor-free copy safe to hand to members/verifiers."""
        return RsaGroup(n=self.n)

    @property
    def qr_order(self) -> int:
        """|QR(n)| = p'q'.  Requires the trapdoor."""
        self._require_trapdoor()
        return ((self.p - 1) // 2) * ((self.q - 1) // 2)

    def _require_trapdoor(self) -> None:
        if not self.has_trapdoor:
            raise ParameterError("operation requires the factorization trapdoor")

    # Operations --------------------------------------------------------------

    def random_generator(self, rng: Optional[random.Random] = None) -> int:
        """Random element of QR(n).  With overwhelming probability it
        generates the full cyclic group QR(n) (order p'q')."""
        return random_qr(self.n, rng)

    def random_qr_exponent(self, rng: Optional[random.Random] = None) -> int:
        """Random exponent suitable for blinding in QR(n): uniform in
        [1, n/4) which statistically hides values mod the unknown order."""
        rng = rng or random
        return rng.randrange(1, self.n // 4)

    def exp(self, base: int, exponent: int) -> int:
        return mexp(base, exponent, self.n)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.n

    def inv(self, a: int) -> int:
        return inverse(a, self.n)

    def invert_exponent(self, e: int) -> int:
        """1/e mod p'q' (the GM's certificate-issuing operation)."""
        self._require_trapdoor()
        order = self.qr_order
        if math.gcd(e, order) != 1:
            raise ParameterError("exponent not invertible mod group order")
        return inverse(e, order)

    def is_plausible_element(self, a: int) -> bool:
        """Public sanity check: in range, invertible and Jacobi(a, n) = 1.

        True QR-membership cannot be decided without the trapdoor; Jacobi
        symbol +1 is the standard public filter.
        """
        if not 1 <= a < self.n:
            return False
        if math.gcd(a, self.n) != 1:
            return False
        return jacobi(a, self.n) == 1

    def validate_trapdoor(self, rounds: int = 16) -> bool:
        """Check the factors really are distinct safe primes."""
        self._require_trapdoor()
        if self.p == self.q:
            return False
        return is_safe_prime(self.p, rounds) and is_safe_prime(self.q, rounds)

    def coprime_to_order(self, e: int) -> bool:
        """Check gcd(e, p'q') = 1 (GM-side check when picking ACJT primes)."""
        self._require_trapdoor()
        return math.gcd(e, self.qr_order) == 1


def generators(group: RsaGroup, count: int,
               rng: Optional[random.Random] = None) -> Tuple[int, ...]:
    """``count`` independent random QR(n) generators (a, a0, b, g, h, ...)."""
    seen = set()
    out = []
    while len(out) < count:
        g = group.random_generator(rng)
        if g in seen or g == 1:
            continue
        seen.add(g)
        out.append(g)
    return tuple(out)
