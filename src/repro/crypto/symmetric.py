"""Authenticated symmetric encryption (the paper's SENC/SDEC).

Implemented from scratch on the standard library: a SHA-256 counter-mode
stream cipher for confidentiality plus HMAC-SHA256 in encrypt-then-MAC
composition for integrity.  This yields an IND-CPA + INT-CTXT (hence
IND-CCA) symmetric AEAD under the usual PRF assumption on HMAC/SHA-256 —
exactly what the GCD handshake requires of its symmetric component.

Wire format: ``nonce (16) || ciphertext || tag (32)``.

The module also exposes :func:`random_ciphertext`, which produces a string
indistinguishable from a real ciphertext — used by CASE 2 of the handshake
(Fig. 6), where parties must publish decoys drawn from the ciphertext space.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
import random
from typing import Optional

from repro import metrics
from repro.crypto import hashing
from repro.errors import DecryptionError, ParameterError

NONCE_LENGTH = 16
TAG_LENGTH = 32
_BLOCK = 32  # SHA-256 output size


def _keystream(key: bytes, nonce: bytes, nbytes: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        metrics.count_hash()
        h = hashlib.sha256()
        h.update(b"repro-ctr")
        h.update(key)
        h.update(nonce)
        h.update(counter.to_bytes(8, "big"))
        out.extend(h.digest())
        counter += 1
    return bytes(out[:nbytes])


def _split_key(key: bytes) -> tuple:
    enc_key = hashing.kdf(key, "senc-enc", _BLOCK)
    mac_key = hashing.kdf(key, "senc-mac", _BLOCK)
    return enc_key, mac_key


def encrypt(key: bytes, plaintext: bytes, rng: Optional[random.Random] = None) -> bytes:
    """SENC: authenticated encryption of ``plaintext`` under ``key``."""
    if not key:
        raise ParameterError("encryption key must be non-empty")
    if rng is None:
        nonce = os.urandom(NONCE_LENGTH)
    else:
        nonce = rng.getrandbits(8 * NONCE_LENGTH).to_bytes(NONCE_LENGTH, "big")
    enc_key, mac_key = _split_key(key)
    stream = _keystream(enc_key, nonce, len(plaintext))
    body = bytes(p ^ s for p, s in zip(plaintext, stream))
    metrics.count_hash()
    tag = _hmac.new(mac_key, nonce + body, hashlib.sha256).digest()
    return nonce + body + tag


def decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """SDEC: decrypt-and-verify; raises :class:`DecryptionError` on failure."""
    if not key:
        raise ParameterError("decryption key must be non-empty")
    if len(ciphertext) < NONCE_LENGTH + TAG_LENGTH:
        raise DecryptionError("ciphertext too short")
    nonce = ciphertext[:NONCE_LENGTH]
    body = ciphertext[NONCE_LENGTH:-TAG_LENGTH]
    tag = ciphertext[-TAG_LENGTH:]
    enc_key, mac_key = _split_key(key)
    metrics.count_hash()
    expected = _hmac.new(mac_key, nonce + body, hashlib.sha256).digest()
    if not _hmac.compare_digest(expected, tag):
        raise DecryptionError("authentication tag mismatch")
    stream = _keystream(enc_key, nonce, len(body))
    return bytes(c ^ s for c, s in zip(body, stream))


def encrypt_with_int_key(key_int: int, plaintext: bytes,
                         rng: Optional[random.Random] = None) -> bytes:
    """SENC keyed by an integer (the handshake key k'_i)."""
    return encrypt(hashing.int_to_key(key_int, "senc-key"), plaintext, rng)


def decrypt_with_int_key(key_int: int, ciphertext: bytes) -> bytes:
    """SDEC keyed by an integer."""
    return decrypt(hashing.int_to_key(key_int, "senc-key"), ciphertext)


def random_ciphertext(length: int, rng: Optional[random.Random] = None) -> bytes:
    """A uniformly random string shaped like a ciphertext of ``length``
    plaintext bytes.  Real ciphertexts are (nonce, pad, tag) — all of which
    are indistinguishable from random without the key, so a random string is
    a perfect decoy for CASE 2 of the handshake.
    """
    total = NONCE_LENGTH + length + TAG_LENGTH
    if rng is None:
        return os.urandom(total)
    return rng.getrandbits(8 * total).to_bytes(total, "big")


def ciphertext_overhead() -> int:
    """Bytes added to a plaintext by :func:`encrypt`."""
    return NONCE_LENGTH + TAG_LENGTH
