"""Cryptographic substrate: number theory, groups, hashing, encryption,
commitments, sigma protocols and the dynamic accumulator.

Everything here is implemented from scratch on top of the Python standard
library.  The parameter sets in :mod:`repro.crypto.params` include small
research-grade profiles used by the test-suite; production profiles with
1024/1536-bit safe primes are also shipped.
"""

from repro.crypto import modmath, primes  # noqa: F401
