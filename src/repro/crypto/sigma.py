"""Sigma protocols (Fiat-Shamir, non-interactive) over known-order groups.

Implements the standard toolkit used by the baselines and by framework
plumbing:

* :class:`SchnorrProof`      — PoK of x with y = g^x.
* :class:`DleqProof`         — PoK of x with y1 = g1^x and y2 = g2^x
  (discrete-log equality; used for tracing-tag checks).
* :class:`RepresentationProof` — PoK of (x_1..x_k) with y = prod g_i^{x_i}.
* :class:`SchnorrSignature`  — Schnorr signatures (PoK bound to a message),
  used for the authenticated channels of the simulator substrate.

All challenges are derived via the canonical hashing module, domain
separated per proof type, and include every public value — so transcripts
are non-malleable across contexts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.accel.multi_exp import multi_exp
from repro.crypto import hashing
from repro.crypto.modmath import mexp
from repro.crypto.params import DHParams
from repro.errors import ParameterError


@dataclass(frozen=True)
class SchnorrProof:
    """Non-interactive proof of knowledge of ``x`` such that ``y = g^x``."""

    challenge: int
    response: int

    @staticmethod
    def create(group: DHParams, base: int, public: int, secret: int,
               context: bytes = b"", rng: Optional[random.Random] = None) -> "SchnorrProof":
        rng = rng or random
        r = group.random_exponent(rng)
        commitment = mexp(base, r, group.p)
        challenge = hashing.hash_mod(
            "schnorr-pok", group.q, group.p, base, public, commitment, context
        )
        response = (r - challenge * secret) % group.q
        return SchnorrProof(challenge, response)

    def verify(self, group: DHParams, base: int, public: int,
               context: bytes = b"") -> bool:
        if not (0 <= self.challenge < group.q and 0 <= self.response < group.q):
            return False
        commitment = multi_exp(
            ((base, self.response), (public, self.challenge)), group.p
        )
        expected = hashing.hash_mod(
            "schnorr-pok", group.q, group.p, base, public, commitment, context
        )
        return expected == self.challenge


@dataclass(frozen=True)
class DleqProof:
    """Proof that log_{g1}(y1) == log_{g2}(y2)."""

    challenge: int
    response: int

    @staticmethod
    def create(group: DHParams, g1: int, y1: int, g2: int, y2: int, secret: int,
               context: bytes = b"", rng: Optional[random.Random] = None) -> "DleqProof":
        rng = rng or random
        r = group.random_exponent(rng)
        a1 = mexp(g1, r, group.p)
        a2 = mexp(g2, r, group.p)
        challenge = hashing.hash_mod(
            "dleq", group.q, group.p, g1, y1, g2, y2, a1, a2, context
        )
        response = (r - challenge * secret) % group.q
        return DleqProof(challenge, response)

    def verify(self, group: DHParams, g1: int, y1: int, g2: int, y2: int,
               context: bytes = b"") -> bool:
        if not (0 <= self.challenge < group.q and 0 <= self.response < group.q):
            return False
        a1 = multi_exp(((g1, self.response), (y1, self.challenge)), group.p)
        a2 = multi_exp(((g2, self.response), (y2, self.challenge)), group.p)
        expected = hashing.hash_mod(
            "dleq", group.q, group.p, g1, y1, g2, y2, a1, a2, context
        )
        return expected == self.challenge


@dataclass(frozen=True)
class RepresentationProof:
    """PoK of (x_1, ..., x_k) with ``y = prod_i g_i^{x_i}``."""

    challenge: int
    responses: Tuple[int, ...]

    @staticmethod
    def create(group: DHParams, bases: Sequence[int], public: int,
               secrets: Sequence[int], context: bytes = b"",
               rng: Optional[random.Random] = None) -> "RepresentationProof":
        if len(bases) != len(secrets) or not bases:
            raise ParameterError("bases and secrets must align and be non-empty")
        rng = rng or random
        nonces = [group.random_exponent(rng) for _ in bases]
        commitment = 1
        for base, nonce in zip(bases, nonces):
            commitment = (commitment * mexp(base, nonce, group.p)) % group.p
        challenge = hashing.hash_mod(
            "representation", group.q, group.p, tuple(bases), public, commitment, context
        )
        responses = tuple(
            (nonce - challenge * secret) % group.q
            for nonce, secret in zip(nonces, secrets)
        )
        return RepresentationProof(challenge, responses)

    def verify(self, group: DHParams, bases: Sequence[int], public: int,
               context: bytes = b"") -> bool:
        if len(bases) != len(self.responses) or not bases:
            return False
        if not 0 <= self.challenge < group.q:
            return False
        for response in self.responses:
            if not 0 <= response < group.q:
                return False
        commitment = multi_exp(
            ((public, self.challenge),
             *zip(bases, self.responses)), group.p
        )
        expected = hashing.hash_mod(
            "representation", group.q, group.p, tuple(bases), public, commitment, context
        )
        return expected == self.challenge


@dataclass(frozen=True)
class SchnorrSignature:
    """Schnorr signature: a Schnorr PoK bound to a message."""

    challenge: int
    response: int

    @staticmethod
    def keygen(group: DHParams,
               rng: Optional[random.Random] = None) -> Tuple[int, int]:
        """Return ``(public, secret)`` with public = g^secret."""
        rng = rng or random
        secret = group.random_exponent(rng)
        return group.power_of_g(secret), secret

    @staticmethod
    def sign(group: DHParams, secret: int, message: bytes,
             rng: Optional[random.Random] = None) -> "SchnorrSignature":
        rng = rng or random
        r = group.random_exponent(rng)
        commitment = group.power_of_g(r)
        public = group.power_of_g(secret)
        challenge = hashing.hash_mod(
            "schnorr-sig", group.q, group.p, public, commitment, message
        )
        response = (r - challenge * secret) % group.q
        return SchnorrSignature(challenge, response)

    def verify(self, group: DHParams, public: int, message: bytes) -> bool:
        if not (0 <= self.challenge < group.q and 0 <= self.response < group.q):
            return False
        commitment = multi_exp(
            ((group.g, self.response), (public, self.challenge)), group.p
        )
        expected = hashing.hash_mod(
            "schnorr-sig", group.q, group.p, public, commitment, message
        )
        return expected == self.challenge
