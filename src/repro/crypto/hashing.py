"""Hashing, key derivation and random-oracle instantiations.

Provides canonical (injective) encodings of mixed int/bytes/str tuples so
that every Fiat-Shamir challenge and protocol transcript hash in the library
is domain-separated and unambiguous, plus:

* :func:`hash_to_int` — H: {0,1}* -> [0, 2^bits)
* :func:`hash_mod`    — H: {0,1}* -> Z_q
* :func:`hash_to_qr`  — the "ideal hash" into QR(n) used by the paper's
  self-distinction construction (Section 8.2): expand, reduce mod n, square.
* :func:`kdf`         — labeled key derivation (HKDF-like, SHA-256 based).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Iterable, Union

from repro import metrics
from repro.errors import EncodingError

Encodable = Union[int, bytes, str, bool, None]

_INT_TAG = b"\x01"
_BYTES_TAG = b"\x02"
_STR_TAG = b"\x03"
_NONE_TAG = b"\x04"
_BOOL_TAG = b"\x05"
_SEQ_TAG = b"\x06"


def encode_element(value) -> bytes:
    """Injective encoding of one value (ints may be negative)."""
    if value is None:
        return _NONE_TAG + b"\x00\x00\x00\x00"
    if isinstance(value, bool):
        payload = b"\x01" if value else b"\x00"
        return _BOOL_TAG + len(payload).to_bytes(4, "big") + payload
    if isinstance(value, int):
        sign = b"-" if value < 0 else b"+"
        magnitude = abs(value)
        payload = sign + magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        return _INT_TAG + len(payload).to_bytes(4, "big") + payload
    if isinstance(value, bytes):
        return _BYTES_TAG + len(value).to_bytes(4, "big") + value
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _STR_TAG + len(payload).to_bytes(4, "big") + payload
    if isinstance(value, (tuple, list)):
        inner = b"".join(encode_element(v) for v in value)
        return _SEQ_TAG + len(inner).to_bytes(4, "big") + inner
    raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def encode(*values) -> bytes:
    """Injective encoding of a tuple of values."""
    return b"".join(encode_element(v) for v in values)


def digest(domain: str, *values) -> bytes:
    """SHA-256 over the domain-separated canonical encoding of ``values``."""
    metrics.count_hash()
    h = hashlib.sha256()
    h.update(encode_element(domain))
    h.update(encode(*values))
    return h.digest()


def expand(domain: str, seed: bytes, nbytes: int) -> bytes:
    """Expand ``seed`` to ``nbytes`` output bytes (counter-mode SHA-256)."""
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        metrics.count_hash()
        h = hashlib.sha256()
        h.update(encode_element(domain))
        h.update(counter.to_bytes(4, "big"))
        h.update(seed)
        out.extend(h.digest())
        counter += 1
    return bytes(out[:nbytes])


def hash_to_int(domain: str, bits: int, *values) -> int:
    """H: {0,1}* -> [0, 2^bits)."""
    nbytes = (bits + 7) // 8
    raw = expand(domain, encode(*values), nbytes)
    value = int.from_bytes(raw, "big")
    excess = 8 * nbytes - bits
    return value >> excess


def hash_mod(domain: str, modulus: int, *values) -> int:
    """H: {0,1}* -> Z_modulus, with negligible bias (64 extra bits)."""
    bits = modulus.bit_length() + 64
    return hash_to_int(domain, bits, *values) % modulus


def hash_to_qr(domain: str, modulus: int, *values) -> int:
    """Random-oracle hash into QR(modulus): reduce then square.

    This is the instantiation of the paper's "idealized hash function
    H : {0,1}* -> R subset-of QR(n)" (Section 8.2, footnote 8) used to derive
    the common T7 base for self-distinction.
    """
    candidate = hash_mod(domain, modulus, *values)
    if candidate in (0, 1):
        candidate += 2
    return (candidate * candidate) % modulus


def kdf(key: bytes, label: str, nbytes: int = 32) -> bytes:
    """Labeled key derivation from ``key`` (HKDF-expand flavoured)."""
    metrics.count_hash()
    prk = _hmac.new(b"repro-kdf-salt", key, hashlib.sha256).digest()
    out = bytearray()
    block = b""
    counter = 1
    while len(out) < nbytes:
        metrics.count_hash()
        block = _hmac.new(
            prk, block + label.encode("utf-8") + bytes([counter]), hashlib.sha256
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:nbytes])


def int_to_key(value: int, label: str = "int-key", nbytes: int = 32) -> bytes:
    """Derive a symmetric key from a (group-element sized) integer."""
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    return kdf(raw, label, nbytes)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (wraps :func:`hmac.compare_digest`)."""
    return _hmac.compare_digest(a, b)


def fingerprint(*values) -> str:
    """Short hex fingerprint for logging/debugging (never for security)."""
    return digest("fingerprint", *values).hex()[:16]


def iter_digest(domain: str, values: Iterable) -> bytes:
    """Digest of an iterable without materializing the encoding list."""
    metrics.count_hash()
    h = hashlib.sha256()
    h.update(encode_element(domain))
    for v in values:
        h.update(encode_element(v))
    return h.digest()
