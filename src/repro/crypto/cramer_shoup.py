"""Cramer-Shoup encryption (IND-CCA2 in the standard model under DDH).

The GCD framework requires the group authority's tracing key pair
``(pk_T, sk_T)`` to belong to an IND-CCA2 secure public-key cryptosystem
(Section 7, GCD.CreateGroup).  Cramer-Shoup is the canonical such scheme, so
it is the default tracing cryptosystem in this library.

Scheme (Cramer & Shoup, CRYPTO'98) over a safe-prime group of order q with
independent generators g1, g2:

* secret key  (x1, x2, y1, y2, z)
* public key  c = g1^x1 g2^x2,  d = g1^y1 g2^y2,  h = g1^z
* encrypt m:  r random;  u1 = g1^r, u2 = g2^r, e = h^r * m,
              alpha = H(u1, u2, e),  v = c^r * d^(r*alpha)
* decrypt:    check u1^(x1 + y1*alpha) * u2^(x2 + y2*alpha) == v,
              m = e / u1^z
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto import encoding, hashing
from repro.crypto.modmath import inverse, mexp
from repro.crypto.params import DHParams
from repro.errors import DecryptionError, ParameterError


@dataclass(frozen=True)
class CSPublicKey:
    group: DHParams
    g1: int
    g2: int
    c: int
    d: int
    h: int


@dataclass(frozen=True)
class CSSecretKey:
    public: CSPublicKey
    x1: int
    x2: int
    y1: int
    y2: int
    z: int


@dataclass(frozen=True)
class CSCiphertext:
    u1: int
    u2: int
    e: int
    v: int

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.u1, self.u2, self.e, self.v)


def _challenge(group: DHParams, u1: int, u2: int, e: int) -> int:
    return hashing.hash_mod("cramer-shoup-alpha", group.q, group.p, u1, u2, e)


class CramerShoup:
    """Static-method namespace for the Cramer-Shoup operations."""

    @staticmethod
    def keygen(group: DHParams,
               rng: Optional[random.Random] = None) -> Tuple[CSPublicKey, CSSecretKey]:
        rng = rng or random
        g1 = group.g
        # Independent second generator: random exponent of g (its dlog is
        # unknown to everyone because the exponent is discarded).
        g2 = group.power_of_g(group.random_exponent(rng))
        while g2 == 1 or g2 == g1:
            g2 = group.power_of_g(group.random_exponent(rng))
        x1, x2, y1, y2, z = (group.random_exponent(rng) for _ in range(5))
        c = (mexp(g1, x1, group.p) * mexp(g2, x2, group.p)) % group.p
        d = (mexp(g1, y1, group.p) * mexp(g2, y2, group.p)) % group.p
        h = mexp(g1, z, group.p)
        pk = CSPublicKey(group, g1, g2, c, d, h)
        # Every encryption exponentiates these five for the key's
        # lifetime — register them for fixed-base precomputation.
        from repro.accel.fixed_base import register_base
        for base in (g1, g2, c, d, h):
            register_base(base, group.p)
        return pk, CSSecretKey(pk, x1, x2, y1, y2, z)

    @staticmethod
    def encrypt_element(pk: CSPublicKey, m: int,
                        rng: Optional[random.Random] = None) -> CSCiphertext:
        if not 1 <= m < pk.group.p:
            raise ParameterError("message element out of range")
        rng = rng or random
        r = pk.group.random_exponent(rng)
        p = pk.group.p
        u1 = mexp(pk.g1, r, p)
        u2 = mexp(pk.g2, r, p)
        e = (mexp(pk.h, r, p) * m) % p
        alpha = _challenge(pk.group, u1, u2, e)
        v = (mexp(pk.c, r, p) * mexp(pk.d, (r * alpha) % pk.group.q, p)) % p
        return CSCiphertext(u1, u2, e, v)

    @staticmethod
    def decrypt_element(sk: CSSecretKey, ct: CSCiphertext) -> int:
        pk = sk.public
        p, q = pk.group.p, pk.group.q
        for component in ct.as_tuple():
            if not 1 <= component < p:
                raise DecryptionError("ciphertext component out of range")
        alpha = _challenge(pk.group, ct.u1, ct.u2, ct.e)
        check = (
            mexp(ct.u1, (sk.x1 + sk.y1 * alpha) % q, p)
            * mexp(ct.u2, (sk.x2 + sk.y2 * alpha) % q, p)
        ) % p
        if check != ct.v:
            raise DecryptionError("Cramer-Shoup validity check failed")
        return (ct.e * inverse(mexp(ct.u1, sk.z, p), p)) % p

    @staticmethod
    def encrypt_bytes(pk: CSPublicKey, message: bytes,
                      rng: Optional[random.Random] = None) -> CSCiphertext:
        return CramerShoup.encrypt_element(
            pk, encoding.bytes_to_element(pk.group, message), rng
        )

    @staticmethod
    def decrypt_bytes(sk: CSSecretKey, ct: CSCiphertext) -> bytes:
        return encoding.element_to_bytes(
            sk.public.group, CramerShoup.decrypt_element(sk, ct)
        )

    @staticmethod
    def random_ciphertext(pk: CSPublicKey,
                          rng: Optional[random.Random] = None) -> CSCiphertext:
        """A decoy tuple of four random group elements (CASE 2 of Fig. 6).

        Under DDH the components of an honest ciphertext are pseudorandom
        subgroup elements, so four random subgroup elements are an
        indistinguishable decoy.
        """
        rng = rng or random
        draw = lambda: pk.group.power_of_g(pk.group.random_exponent(rng))  # noqa: E731
        return CSCiphertext(draw(), draw(), draw(), draw())
