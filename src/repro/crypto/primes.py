"""Primality testing and prime generation.

Implements deterministic trial division for small inputs, Miller-Rabin for
large ones, and generators for random primes, safe primes and primes within
an interval (the latter is what ACJT certificate exponents need:
``e`` prime in ``]2^gamma1 - 2^gamma2, 2^gamma1 + 2^gamma2[``).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.errors import ParameterError

_SIEVE_LIMIT = 4096


def _sieve(limit: int) -> List[int]:
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, f in enumerate(flags) if f]


SMALL_PRIMES: List[int] = _sieve(_SIEVE_LIMIT)
_SMALL_PRIME_SET = set(SMALL_PRIMES)


def is_prime(n: int, rounds: int = 32, rng: Optional[random.Random] = None) -> bool:
    """Probabilistic primality test (Miller-Rabin).

    Deterministically correct below ``_SIEVE_LIMIT``; error probability at
    most ``4**-rounds`` above it.
    """
    if n < _SIEVE_LIMIT:
        return n in _SMALL_PRIME_SET
    for p in SMALL_PRIMES:
        if n % p == 0:
            return False
    rng = rng or random
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ParameterError("a prime needs at least 2 bits")
    rng = rng or random
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate, rng=rng):
            return candidate


def random_prime_in_interval(
    low: int, high: int, rng: Optional[random.Random] = None
) -> int:
    """Return a random prime in the open interval ``]low, high[``.

    Raises :class:`ParameterError` if the interval is too narrow to plausibly
    contain a prime (we give up after a bounded number of attempts).
    """
    if high - low < 4:
        raise ParameterError(f"interval ]{low}, {high}[ too narrow")
    rng = rng or random
    attempts = 0
    width = high - low - 2
    # Prime density near N is ~1/ln N; allow a generous multiple.
    max_attempts = max(64, 64 * (high.bit_length()))
    while attempts < max_attempts:
        candidate = low + 1 + rng.randrange(width)
        candidate |= 1
        if candidate <= low or candidate >= high:
            attempts += 1
            continue
        if is_prime(candidate, rng=rng):
            return candidate
        attempts += 1
    raise ParameterError(f"no prime found in ]{low}, {high}[ after {max_attempts} tries")


def is_safe_prime(p: int, rounds: int = 32) -> bool:
    """True iff both ``p`` and ``(p - 1) // 2`` are prime."""
    return p > 5 and p % 2 == 1 and is_prime(p, rounds) and is_prime((p - 1) // 2, rounds)


def random_safe_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a safe prime ``p = 2q + 1`` with ``p`` of exactly ``bits``
    bits.  Expensive for bits >= 512 — prefer the precomputed sets in
    :mod:`repro.crypto.params`.
    """
    rng = rng or random
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        if any(q % sp == 0 or p % sp == 0 for sp in SMALL_PRIMES[1:64]):
            continue
        if is_prime(q, rounds=8, rng=rng) and is_prime(p, rounds=8, rng=rng):
            if is_prime(q, rounds=32, rng=rng) and is_prime(p, rounds=32, rng=rng):
                return p


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def product(values: Iterable[int]) -> int:
    """Product of an iterable of ints (1 for empty input)."""
    result = 1
    for v in values:
        result *= v
    return result
