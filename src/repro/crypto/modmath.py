"""Modular arithmetic helpers.

All modular exponentiations in the library go through :func:`mexp` so the
benchmark harness can count them (the paper states per-party cost in modular
exponentiations).  The remaining helpers are standard: inverses, CRT, Jacobi
symbols, modular square roots, and random units.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence, Tuple

from repro import metrics
from repro.errors import ParameterError


#: Optional fast path installed by :mod:`repro.accel` on import:
#: ``hook(base, exponent, modulus)`` returns the power for bases with a
#: precomputed table, or ``None`` to fall back to builtin ``pow``.  The
#: hook runs *after* counting so the E1 books are hook-independent.
_ACCEL_POW = None


def _install_accel_pow(hook) -> None:
    global _ACCEL_POW
    _ACCEL_POW = hook


def mexp(base: int, exponent: int, modulus: int) -> int:
    """Counted modular exponentiation; supports negative exponents for units.

    Negative exponents are normalized through :func:`inverse` (rather than
    handed to CPython's ``pow``) so the inversion is visible to the
    ``inversions`` counter — the E1 ledger stays honest about what the
    protocol actually computes.
    """
    if modulus <= 0:
        raise ParameterError("modulus must be positive")
    metrics.count_modexp()
    if exponent < 0:
        base = inverse(base, modulus)
        exponent = -exponent
    if _ACCEL_POW is not None:
        accelerated = _ACCEL_POW(base, exponent, modulus)
        if accelerated is not None:
            return accelerated
    return pow(base, exponent, modulus)


def mmul(a: int, b: int, modulus: int) -> int:
    """Counted modular multiplication."""
    metrics.count_modmul()
    return (a * b) % modulus


def inverse(a: int, modulus: int) -> int:
    """Modular inverse of ``a`` mod ``modulus``; raises if not invertible.

    Counted under the ``inversions`` extra counter: an inverse costs about
    as much as an exponentiation and the paper's cost model should not be
    able to hide them (negative-exponent ``mexp`` calls route through
    here for exactly that reason)."""
    metrics.bump("inversions")
    try:
        return pow(a, -1, modulus)
    except ValueError as exc:
        raise ParameterError(f"{a} not invertible mod {modulus}") from exc


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended GCD: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def crt(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese remainder theorem for pairwise-coprime moduli."""
    if len(residues) != len(moduli) or not residues:
        raise ParameterError("need equally many residues and moduli")
    result, modulus = residues[0] % moduli[0], moduli[0]
    for r, m in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(modulus, m)
        if g != 1:
            raise ParameterError("moduli must be pairwise coprime")
        diff = (r - result) % m
        result = result + modulus * ((diff * p) % m)
        modulus *= m
        result %= modulus
    return result


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd n > 0."""
    if n <= 0 or n % 2 == 0:
        raise ParameterError("Jacobi symbol needs odd positive n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def sqrt_mod_prime(a: int, p: int) -> int:
    """A square root of ``a`` mod prime ``p`` (Tonelli-Shanks).

    Raises :class:`ParameterError` if ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if jacobi(a, p) != 1:
        raise ParameterError("not a quadratic residue")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p = 1 mod 4.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while jacobi(z, p) != -1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        while t2 != 1:
            t2 = (t2 * t2) % p
            i += 1
            if i == m:
                raise ParameterError("not a quadratic residue")
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, (b * b) % p
        t, r = (t * c) % p, (r * b) % p
    return r


def random_unit(modulus: int, rng: Optional[random.Random] = None) -> int:
    """Uniform element of ``Z_modulus^*``.

    Rejection-samples over the full residue range ``[1, modulus)`` — every
    unit, including 1 and ``modulus - 1`` (≡ −1), must be reachable or the
    draw is not uniform over the group."""
    if modulus <= 1:
        raise ParameterError("modulus must exceed 1")
    rng = rng or random
    while True:
        candidate = rng.randrange(1, modulus)
        if math.gcd(candidate, modulus) == 1:
            return candidate


def random_qr(modulus: int, rng: Optional[random.Random] = None) -> int:
    """Random quadratic residue mod ``modulus`` (square of a random unit)."""
    u = random_unit(modulus, rng)
    return (u * u) % modulus


def int_in_symmetric_range(value: int, bits: int) -> bool:
    """True iff ``value`` lies in ``[-2^bits, 2^bits]`` (the +/-{0,1}^bits
    notation used by the ACJT signature range checks)."""
    return -(1 << bits) <= value <= (1 << bits)


def random_int_symmetric(bits: int, rng: Optional[random.Random] = None) -> int:
    """Uniform integer from ``[-(2^bits - 1), 2^bits - 1]``.

    A single draw over the whole symmetric range — the magnitude-then-sign
    construction samples 0 with double weight (+0 and −0 collapse)."""
    rng = rng or random
    return rng.randrange(-(1 << bits) + 1, 1 << bits)
