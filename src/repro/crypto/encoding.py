"""Reversible encoding of byte strings into safe-prime group elements.

For a safe prime ``p = 2q + 1`` with ``p = 3 (mod 4)``, -1 is a quadratic
non-residue, so for every ``m`` in ``[1, q]`` exactly one of ``m`` and
``p - m`` is a quadratic residue.  Mapping ``m`` to whichever of the pair is
the residue is a bijection between ``[1, q]`` and QR(p), invertible by
folding back values above ``q``.  This lets ElGamal/Cramer-Shoup encrypt
short byte strings (such as the 32-byte handshake keys) as group elements.
"""

from __future__ import annotations

from repro.crypto.modmath import jacobi
from repro.crypto.params import DHParams
from repro.errors import EncodingError, ParameterError


def max_message_bytes(group: DHParams) -> int:
    """Largest byte-string length encodable into one element of ``group``."""
    return (group.q.bit_length() - 2) // 8


def bytes_to_element(group: DHParams, message: bytes) -> int:
    """Encode ``message`` as an element of the order-q subgroup."""
    if group.p % 4 != 3:
        raise ParameterError("encoding requires p = 3 mod 4")
    limit = max_message_bytes(group)
    if len(message) > limit:
        raise EncodingError(f"message too long ({len(message)} > {limit} bytes)")
    # Length-prefix so decoding is unambiguous, then shift into [1, q].
    value = int.from_bytes(bytes([len(message)]) + message, "big") + 1
    if value > group.q:
        raise EncodingError("encoded value exceeds subgroup order")
    if jacobi(value, group.p) == 1:
        return value
    return group.p - value


def element_to_bytes(group: DHParams, element: int) -> bytes:
    """Invert :func:`bytes_to_element`."""
    if not 1 <= element < group.p:
        raise EncodingError("element out of range")
    value = element if element <= group.q else group.p - element
    value -= 1
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    if not raw:
        raise EncodingError("empty encoding")
    length = raw[0]
    body = raw[1:]
    if len(body) < length:
        body = b"\x00" * (length - len(body)) + body
    if len(body) != length:
        raise EncodingError("length prefix does not match body")
    return body
