"""A CA-oblivious-encryption secret handshake in the discrete-log setting
(after Castelluccia, Jarecki, Tsudik — ASIACRYPT 2004 [14]).

The trick that makes the scheme "CA-oblivious": a member's credential is a
Schnorr-style certificate on a one-time pseudonym,

    omega = g^r,   t = r + s * H(omega, id)   (s = the CA's secret key)

so anyone can derive the *implicit public key*  P_id = omega * y^H(omega,id)
= g^t  from the pseudonym alone — but without a valid certificate nobody
knows the discrete log t, and P_id reveals nothing about *which* CA issued
it (it is just a group element).  The 2-party handshake is then a pair of
implicit-key Diffie-Hellman challenges:

    B sends z_B = g^b and computes K_B->A = P_A^b; only a holder of t_A can
    compute K = z_B^{t_A}.  Symmetrically for A.  MAC confirmations under
    KDF(K_A, K_B) complete the handshake.

Affiliations stay hidden: a non-member observes only group elements and
MACs it cannot test.  Like Balfanz, unlinkability requires one-time
pseudonyms (the pseudonym travels in the clear).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto import hashing, mac
from repro.crypto.modmath import mexp
from repro.crypto.params import DHParams, dh_group
from repro.errors import ProtocolError


@dataclass
class CaCredential:
    """One single-use credential: pseudonym + Schnorr certificate."""

    pseudonym: str
    omega: int
    t: int  # discrete log of the implicit public key
    used: bool = False


@dataclass
class CaMember:
    user_id: str
    group: DHParams
    credentials: List[CaCredential] = field(default_factory=list)

    def next_credential(self, reuse_last: bool = False) -> CaCredential:
        if reuse_last:
            for credential in reversed(self.credentials):
                if credential.used:
                    return credential
        for credential in self.credentials:
            if not credential.used:
                credential.used = True
                return credential
        raise ProtocolError(f"{self.user_id} exhausted its one-time credentials")


class CaObliviousGroup:
    """The certification authority for one group."""

    def __init__(self, group_id: str, group: Optional[DHParams] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.group_id = group_id
        self.group = group or dh_group(256)
        rng = rng or random
        self._rng = rng
        self._s = self.group.random_exponent(rng)
        self.y = self.group.power_of_g(self._s)

    def admit(self, user_id: str, batch: int = 4) -> CaMember:
        member = CaMember(user_id=user_id, group=self.group)
        self.replenish(member, batch)
        return member

    def replenish(self, member: CaMember, batch: int) -> None:
        for _ in range(batch):
            pseudonym = hashing.fingerprint(
                self.group_id, member.user_id, self._rng.getrandbits(64)
            )
            r = self.group.random_exponent(self._rng)
            omega = self.group.power_of_g(r)
            challenge = hashing.hash_mod(
                "ca-oblivious-cert", self.group.q, omega, pseudonym
            )
            t = (r + self._s * challenge) % self.group.q
            member.credentials.append(CaCredential(pseudonym, omega, t))


def implicit_public_key(group: DHParams, y: int, pseudonym: str, omega: int) -> int:
    """P_id = omega * y^H(omega, id) — computable by anyone who *guesses*
    the CA key y; equals g^t iff the certificate is genuine for that CA."""
    challenge = hashing.hash_mod("ca-oblivious-cert", group.q, omega, pseudonym)
    return (omega * mexp(y, challenge, group.p)) % group.p


@dataclass(frozen=True)
class CaSession:
    """Eavesdropper view of one handshake."""

    pseudonym_a: str
    pseudonym_b: str
    omega_a: int
    omega_b: int
    z_a: int
    z_b: int
    tag_a: bytes
    tag_b: bytes
    accepted_a: bool
    accepted_b: bool

    @property
    def success(self) -> bool:
        return self.accepted_a and self.accepted_b


def handshake(group_a: CaObliviousGroup, member_a: CaMember,
              group_b: CaObliviousGroup, member_b: CaMember,
              rng: Optional[random.Random] = None,
              reuse_a: bool = False, reuse_b: bool = False) -> CaSession:
    """Run the 2-party handshake; succeeds iff both certificates come from
    the same CA (each side tests the peer against *its own* CA key)."""
    rng = rng or random
    grp = group_a.group
    ca = member_a.next_credential(reuse_a)
    cb = member_b.next_credential(reuse_b)

    b_eph = grp.random_exponent(rng)
    a_eph = grp.random_exponent(rng)
    z_b = grp.power_of_g(b_eph)
    z_a = grp.power_of_g(a_eph)

    # Each side derives the peer's implicit key under its own CA.
    p_a_for_b = implicit_public_key(grp, group_b.y, ca.pseudonym, ca.omega)
    p_b_for_a = implicit_public_key(grp, group_a.y, cb.pseudonym, cb.omega)

    # B's view of the two DH values; A's view.
    k1_b = mexp(p_a_for_b, b_eph, grp.p)          # should equal z_b^{t_A}
    k1_a = mexp(z_b, ca.t, grp.p)
    k2_a = mexp(p_b_for_a, a_eph, grp.p)          # should equal z_a^{t_B}
    k2_b = mexp(z_a, cb.t, grp.p)

    context = (ca.pseudonym, cb.pseudonym, ca.omega, cb.omega, z_a, z_b)
    key_a = hashing.digest("ca-oblivious-key", k1_a, k2_a, *context)
    key_b = hashing.digest("ca-oblivious-key", k1_b, k2_b, *context)

    tag_b = mac.mac(key_b, "resp", *context)
    accepted_a = mac.verify(key_a, tag_b, "resp", *context)
    tag_a = mac.mac(key_a, "init", *context)
    accepted_b = mac.verify(key_b, tag_a, "init", *context)
    return CaSession(
        pseudonym_a=ca.pseudonym, pseudonym_b=cb.pseudonym,
        omega_a=ca.omega, omega_b=cb.omega, z_a=z_a, z_b=z_b,
        tag_a=tag_a, tag_b=tag_b,
        accepted_a=accepted_a, accepted_b=accepted_b,
    )


def sessions_linkable(first: CaSession, second: CaSession) -> bool:
    """Pseudonym (or omega) reuse links sessions — the one-time-credential
    cost GCD eliminates."""
    return bool(
        {first.pseudonym_a, first.pseudonym_b}
        & {second.pseudonym_a, second.pseudonym_b}
    ) or bool({first.omega_a, first.omega_b} & {second.omega_a, second.omega_b})
