"""The design-space strawmen of Section 3, with their attacks.

The paper motivates GCD by walking through three simpler designs and
showing what each one fails to provide:

1. **CGKD-only** (:class:`CgkdOnlyScheme`): members prove possession of
   the shared group key with MACs over nonces.  Works — but a *passive
   group member* eavesdropping on the exchange can verify the MACs and
   detect the handshake (drawback 1), nobody can be traced (drawback 2),
   and one member can play many roles (drawback 3).
2. **GSIG-only** (:class:`GsigOnlyScheme`): members exchange group
   signatures in the clear.  Traceability appears, but anyone holding the
   (public!) group key can verify the signatures, so resistance to
   detection is gone and eavesdroppers distinguish success from failure.
3. **CGKD+GSIG** (:class:`CgkdPlusGsigScheme`): signatures encrypted under
   the group key.  Outsiders are blinded and traceability holds, but the
   passive-member eavesdropper still decrypts-and-detects (no
   freshly-agreed key is mixed in — that is what DGKA adds), and
   self-distinction still fails.

Each scheme exposes ``handshake`` producing an eavesdropper-visible
transcript, plus ``attack_*`` predicates that make the corresponding
drawback executable — benchmark E5 builds the property matrix from them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cgkd.lkh import LkhController, LkhMember
from repro.core import wire
from repro.crypto import mac, symmetric
from repro.errors import DecryptionError
from repro.gsig import acjt


@dataclass(frozen=True)
class NaiveTranscript:
    """What the wire shows for one strawman handshake."""

    scheme: str
    nonces: Tuple[int, ...]
    payloads: Tuple[bytes, ...]
    success: bool


# ---------------------------------------------------------------------------
# 1. CGKD-only.
# ---------------------------------------------------------------------------


class CgkdOnlyScheme:
    """Handshake = MAC proof of the shared CGKD group key."""

    name = "cgkd-only"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()
        self.controller = LkhController(4, self._rng)
        self.members: Dict[str, LkhMember] = {}

    def admit(self, user_id: str) -> LkhMember:
        welcome, rekey = self.controller.join(user_id)
        for member in self.members.values():
            member.rekey(rekey)
        member = LkhMember(welcome)
        self.members[user_id] = member
        return member

    def handshake(self, user_ids: Sequence[str],
                  rng: Optional[random.Random] = None) -> NaiveTranscript:
        rng = rng or self._rng
        nonces = tuple(rng.getrandbits(64) for _ in user_ids)
        keys = [self.members[u].group_key for u in user_ids]
        payloads = tuple(
            mac.mac(key, "cgkd-only", i, nonces) for i, key in enumerate(keys)
        )
        reference = keys[0]
        success = all(
            mac.verify(reference, tag, "cgkd-only", i, nonces)
            for i, tag in enumerate(payloads)
        )
        return NaiveTranscript("cgkd-only", nonces, payloads, success)

    # Attacks ---------------------------------------------------------------------

    @staticmethod
    def attack_member_eavesdropper(transcript: NaiveTranscript,
                                   group_key: bytes) -> bool:
        """A passive *member* (knows the group key, did not participate)
        verifies the MACs and learns that a handshake succeeded."""
        return all(
            mac.verify(group_key, tag, "cgkd-only", i, transcript.nonces)
            for i, tag in enumerate(transcript.payloads)
        )

    @staticmethod
    def attack_untraceable() -> bool:
        """There is no Open/trace operation at all: MACs carry no identity."""
        return True

    @staticmethod
    def attack_multi_role(scheme: "CgkdOnlyScheme", user_id: str,
                          roles: int, rng: Optional[random.Random] = None) -> bool:
        """One member plays ``roles`` participants; the handshake succeeds
        and nobody can tell (no self-distinction)."""
        transcript = scheme.handshake([user_id] * roles, rng)
        return transcript.success


# ---------------------------------------------------------------------------
# 2. GSIG-only.
# ---------------------------------------------------------------------------


class GsigOnlyScheme:
    """Handshake = exchange of cleartext group signatures on nonces."""

    name = "gsig-only"

    def __init__(self, profile: str = "tiny",
                 rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()
        self.manager = acjt.AcjtManager(profile, self._rng)
        self.credentials: Dict[str, acjt.AcjtCredential] = {}

    def admit(self, user_id: str) -> acjt.AcjtCredential:
        credential, update = self.manager.join(user_id, self._rng)
        for existing in self.credentials.values():
            existing.apply_update(update)
        self.credentials[user_id] = credential
        return credential

    def handshake(self, user_ids: Sequence[str],
                  rng: Optional[random.Random] = None) -> NaiveTranscript:
        rng = rng or self._rng
        nonces = tuple(rng.getrandbits(64) for _ in user_ids)
        message = wire.dumps(("gsig-only", nonces))
        payloads = tuple(
            wire.signature_to_bytes(self.credentials[u].sign(message, rng))
            for u in user_ids
        )
        view = self.manager.member_view()
        success = all(
            acjt.verify(self.manager.public_key, message,
                        wire.signature_from_bytes(blob), view)
            for blob in payloads
        )
        return NaiveTranscript("gsig-only", nonces, payloads, success)

    # Attacks ---------------------------------------------------------------------

    def attack_outsider_detection(self, transcript: NaiveTranscript) -> bool:
        """Anyone holding the group public key (+ the nominally member-only
        accumulator view, which GSIG-only deployments must publish for
        verification to work at all) verifies the cleartext signatures —
        resistance to detection is gone."""
        message = wire.dumps(("gsig-only", transcript.nonces))
        view = self.manager.member_view()
        return all(
            acjt.verify(self.manager.public_key, message,
                        wire.signature_from_bytes(blob), view)
            for blob in transcript.payloads
        )

    def trace(self, transcript: NaiveTranscript) -> List[Optional[str]]:
        """Traceability does hold here (that is the one thing GSIG buys)."""
        message = wire.dumps(("gsig-only", transcript.nonces))
        return [
            self.manager.open(message, wire.signature_from_bytes(blob))
            for blob in transcript.payloads
        ]


# ---------------------------------------------------------------------------
# 3. CGKD + GSIG (no DGKA).
# ---------------------------------------------------------------------------


class CgkdPlusGsigScheme:
    """Signatures encrypted under the static CGKD group key.

    The missing ingredient relative to GCD is the *freshly agreed* DGKA
    key: because the encryption key is the long-lived group key, any
    member can passively decrypt and detect."""

    name = "cgkd+gsig"

    def __init__(self, profile: str = "tiny",
                 rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()
        self.cgkd = CgkdOnlyScheme(self._rng)
        self.gsig = GsigOnlyScheme(profile, self._rng)

    def admit(self, user_id: str) -> None:
        self.cgkd.admit(user_id)
        self.gsig.admit(user_id)

    def handshake(self, user_ids: Sequence[str],
                  rng: Optional[random.Random] = None) -> NaiveTranscript:
        rng = rng or self._rng
        nonces = tuple(rng.getrandbits(64) for _ in user_ids)
        message = wire.dumps(("cgkd+gsig", nonces))
        payloads = []
        for user_id in user_ids:
            blob = wire.signature_to_bytes(
                self.gsig.credentials[user_id].sign(message, rng)
            )
            key = self.cgkd.members[user_id].group_key
            payloads.append(symmetric.encrypt(key, blob, rng))
        view = self.gsig.manager.member_view()
        reference_key = self.cgkd.members[user_ids[0]].group_key
        success = True
        for payload in payloads:
            try:
                blob = symmetric.decrypt(reference_key, payload)
            except DecryptionError:
                success = False
                break
            if not acjt.verify(self.gsig.manager.public_key, message,
                               wire.signature_from_bytes(blob), view):
                success = False
                break
        return NaiveTranscript("cgkd+gsig", nonces, tuple(payloads), success)

    # Attacks ---------------------------------------------------------------------

    def attack_member_eavesdropper(self, transcript: NaiveTranscript,
                                   group_key: bytes) -> bool:
        """The passive member decrypts with the long-lived group key and
        verifies — drawback (1) survives the GSIG addition."""
        message = wire.dumps(("cgkd+gsig", transcript.nonces))
        view = self.gsig.manager.member_view()
        for payload in transcript.payloads:
            try:
                blob = symmetric.decrypt(group_key, payload)
            except DecryptionError:
                return False
            if not acjt.verify(self.gsig.manager.public_key, message,
                               wire.signature_from_bytes(blob), view):
                return False
        return True

    def trace(self, transcript: NaiveTranscript,
              group_key: bytes) -> List[Optional[str]]:
        message = wire.dumps(("cgkd+gsig", transcript.nonces))
        out = []
        for payload in transcript.payloads:
            try:
                blob = symmetric.decrypt(group_key, payload)
                out.append(self.gsig.manager.open(
                    message, wire.signature_from_bytes(blob)))
            except DecryptionError:
                out.append(None)
        return out
