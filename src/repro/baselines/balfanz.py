"""The Balfanz et al. secret-handshake scheme (IEEE S&P 2003 [3]).

The first SHS construction, built on SOK pairing-based key agreement:

* The group administrator runs a SOK authority; admitting a member means
  issuing a batch of **one-time pseudonyms** ``id_1 .. id_t`` with private
  points ``S_{id_j} = s * H1(id_j)``.
* Handshake (2-party): A sends ``(pseudonym_A, nonce_A)``; B replies with
  ``(pseudonym_B, nonce_B, V_B)`` where
  ``V_B = MAC(K, pseudonym_A || pseudonym_B || nonces || "resp")`` under
  the SOK key K of the two pseudonyms; A answers with the symmetric
  ``V_A``.  Each side accepts iff the peer's MAC verifies.
* Unlinkability holds **only** because pseudonyms are discarded after one
  use — reusing one makes two sessions trivially linkable (the pseudonym
  travels in the clear).  :func:`sessions_linkable` makes that concrete;
  benchmark E7 contrasts it with GCD's reusable credentials.

Limitations relative to GCD that the paper lists: 2-party only, one-time
credentials, and no no-misattribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto import hashing, mac
from repro.errors import ProtocolError
from repro.pairing.curve import Curve, Point, curve_params
from repro.pairing.sok import SokAuthority
from repro.pairing.tate import tate_pairing


@dataclass
class Pseudonym:
    """One single-use credential."""

    name: str
    secret_point: Point
    used: bool = False


@dataclass
class BalfanzMember:
    """A member with a pool of one-time pseudonyms."""

    user_id: str
    curve: Curve
    pseudonyms: List[Pseudonym] = field(default_factory=list)

    def next_pseudonym(self, reuse_last: bool = False) -> Pseudonym:
        """Pop a fresh pseudonym (or deliberately reuse — the linkability
        experiment)."""
        if reuse_last:
            for pseudonym in reversed(self.pseudonyms):
                if pseudonym.used:
                    return pseudonym
        for pseudonym in self.pseudonyms:
            if not pseudonym.used:
                pseudonym.used = True
                return pseudonym
        raise ProtocolError(f"{self.user_id} exhausted its one-time credentials")

    @property
    def remaining(self) -> int:
        return sum(1 for p in self.pseudonyms if not p.used)


class BalfanzGroup:
    """The group administrator: a SOK authority issuing pseudonym batches."""

    def __init__(self, group_id: str, curve: Optional[Curve] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.group_id = group_id
        self.curve = curve or curve_params("pf256")
        rng = rng or random
        self._rng = rng
        self._authority = SokAuthority(self.curve, rng=rng)
        self._counter = 0

    def admit(self, user_id: str, batch: int = 4) -> BalfanzMember:
        member = BalfanzMember(user_id=user_id, curve=self.curve)
        self.replenish(member, batch)
        return member

    def replenish(self, member: BalfanzMember, batch: int) -> None:
        """Issue ``batch`` more one-time pseudonyms (the operational cost
        of one-time credentials that GCD avoids)."""
        for _ in range(batch):
            self._counter += 1
            name = hashing.fingerprint(self.group_id, self._counter,
                                       self._rng.getrandbits(64))
            member.pseudonyms.append(
                Pseudonym(name=name, secret_point=self._authority.extract(name))
            )

    def identity_point(self, pseudonym_name: str) -> Point:
        return self._authority.identity_point(pseudonym_name)


@dataclass(frozen=True)
class BalfanzSession:
    """Everything an eavesdropper sees in one 2-party handshake."""

    pseudonym_a: str
    pseudonym_b: str
    nonce_a: int
    nonce_b: int
    tag_a: bytes
    tag_b: bytes
    accepted_a: bool
    accepted_b: bool

    @property
    def success(self) -> bool:
        return self.accepted_a and self.accepted_b


def _session_key(curve: Curve, my_secret: Point, peer_point: Point,
                 pa: str, pb: str, na: int, nb: int) -> bytes:
    value = tate_pairing(curve, my_secret, peer_point)
    return hashing.digest("balfanz-key", value.a, value.b, pa, pb, na, nb)


def handshake(group_a: BalfanzGroup, member_a: BalfanzMember,
              group_b: BalfanzGroup, member_b: BalfanzMember,
              rng: Optional[random.Random] = None,
              reuse_a: bool = False, reuse_b: bool = False) -> BalfanzSession:
    """Run the 2-party Balfanz handshake.  Different groups (different SOK
    masters) yield mismatched keys and mutual rejection; neither side
    learns the other's affiliation."""
    rng = rng or random
    pa = member_a.next_pseudonym(reuse_a)
    pb = member_b.next_pseudonym(reuse_b)
    na, nb = rng.getrandbits(64), rng.getrandbits(64)

    # Each side pairs its own secret point with the *claimed* pseudonym of
    # the peer, hashed over its own group's H1 — cross-group pairings give
    # unrelated keys.
    qa_for_b = group_b.identity_point(pa.name)
    qb_for_a = group_a.identity_point(pb.name)
    key_a = _session_key(member_a.curve, pa.secret_point, qb_for_a,
                         pa.name, pb.name, na, nb)
    key_b = _session_key(member_b.curve, pb.secret_point, qa_for_b,
                         pa.name, pb.name, na, nb)

    tag_b = mac.mac(key_b, "resp", pa.name, pb.name, na, nb)
    accepted_a = mac.verify(key_a, tag_b, "resp", pa.name, pb.name, na, nb)
    tag_a = mac.mac(key_a, "init", pa.name, pb.name, na, nb)
    accepted_b = mac.verify(key_b, tag_a, "init", pa.name, pb.name, na, nb)
    return BalfanzSession(
        pseudonym_a=pa.name, pseudonym_b=pb.name,
        nonce_a=na, nonce_b=nb, tag_a=tag_a, tag_b=tag_b,
        accepted_a=accepted_a, accepted_b=accepted_b,
    )


def sessions_linkable(first: BalfanzSession, second: BalfanzSession) -> bool:
    """The eavesdropper's linking test: a repeated pseudonym links two
    sessions — which is why the scheme must burn one credential per
    handshake."""
    names_first = {first.pseudonym_a, first.pseudonym_b}
    names_second = {second.pseudonym_a, second.pseudonym_b}
    return bool(names_first & names_second)
