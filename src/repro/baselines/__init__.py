"""Prior-work baselines (Section 10) and the design-space strawmen
(Section 3) that motivate GCD.

* :mod:`repro.baselines.balfanz` — the first secret-handshake scheme
  (Balfanz et al., S&P 2003 [3]): pairing-based, 2-party, one-time
  pseudonyms for unlinkability.
* :mod:`repro.baselines.ca_oblivious` — a CA-oblivious-encryption-style
  2-party handshake in the discrete-log setting (Castelluccia, Jarecki,
  Tsudik, ASIACRYPT 2004 [14]); also one-time pseudonyms.
* :mod:`repro.baselines.naive` — the three strawman designs of Section 3
  (CGKD-only, GSIG-only, CGKD+GSIG) with executable versions of the
  attacks that break them.
"""
