"""``python -m repro`` — a self-contained demonstration.

Runs a condensed tour of the framework: group creation, enrolment, a
successful multi-party handshake, an impostor failure, self-distinction,
revocation, and tracing.  Seeded, so the output is reproducible.
"""

from __future__ import annotations

import random
import sys
import time

from repro import (
    create_scheme1,
    create_scheme2,
    run_handshake,
    scheme1_policy,
    scheme2_policy,
)
from repro.security.adversaries import Impostor


def _banner(text: str) -> None:
    print(f"\n=== {text}")


def main(argv=None) -> int:
    rng = random.Random(2005)
    started = time.time()

    _banner("SHS.CreateGroup + SHS.AdmitMember")
    agency = create_scheme1("demo-agency", rng=rng)
    members = [agency.admit_member(f"agent-{i}", rng) for i in range(4)]
    print(f"group 'demo-agency' with {len(members)} members "
          f"({agency.authority.board and len(agency.authority.board)} board posts)")

    _banner("SHS.Handshake: four members of one group")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("success:", all(o.success for o in outcomes),
          "| shared key:", outcomes[0].session_key.hex()[:24], "…")

    _banner("SHS.Handshake with an impostor")
    outcomes = run_handshake(members[:2] + [Impostor(rng=rng)],
                             scheme1_policy(), rng)
    print("success:", any(o.success for o in outcomes),
          "(impostor detected, affiliations never revealed)")

    _banner("SHS.TraceUser")
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    trace = agency.trace(outcomes[0].transcript)
    print("GA identifies:", ", ".join(sorted(trace.identified)))

    _banner("SHS.RemoveUser (dual revocation)")
    agency.remove_user("agent-3")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("handshake including the revoked member succeeds:",
          any(o.success for o in outcomes))
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    print("survivors-only handshake succeeds:",
          all(o.success for o in outcomes))

    _banner("Self-distinction (instantiation 2)")
    committee = create_scheme2("demo-committee", rng=rng)
    honest = committee.admit_member("honest", rng)
    rogue = committee.admit_member("rogue", rng)
    outcomes = run_handshake([honest, rogue, rogue], scheme2_policy(), rng)
    print("rogue playing two roles detected:",
          outcomes[0].distinct is False)

    print(f"\ndone in {time.time() - started:.1f}s — see examples/ for more")
    return 0


if __name__ == "__main__":
    sys.exit(main())
