"""``python -m repro`` — demos, measurement tooling, and the service layer.

Subcommands:

* ``demo`` (default) — a condensed, seeded tour of the framework: group
  creation, enrolment, a successful multi-party handshake, an impostor
  failure, self-distinction, revocation, and tracing.  Exits nonzero if
  any of the expected verdicts does not hold.
* ``stats`` — replay the complexity benchmark (one handshake per party
  count) under full instrumentation and print the per-phase / per-party
  observability tables (the measured form of the paper's O(m) claims);
  ``--format json|csv|table`` selects the stdout rendering and
  ``--percentiles`` adds latency/burst histogram summaries; optionally
  export JSON/CSV artifacts or the trace-event stream; ``--from PATH``
  renders the tables from a previously exported snapshot instead (one
  line + nonzero exit on a missing/empty file).  Exits nonzero if
  any same-group handshake in the sweep fails.
* ``trace`` — run one fully traced handshake (engine, simulator, or a
  loopback socket room) and render the span timeline as an ASCII Gantt;
  ``--out`` writes a Chrome ``trace_event`` JSON loadable in Perfetto
  (https://ui.perfetto.dev) and ``--jsonl`` a span log; ``--cluster``
  runs the room against a self-hosted multi-process cluster and merges
  client, router and shard spans into one cross-process trace;
  ``--in PATH`` re-renders a previously exported span log.  Exits
  nonzero if the handshake fails (or the input file is missing/empty).
* ``serve`` — run the asyncio rendezvous server (an untrusted relay for
  handshake rooms) until interrupted; with ``--shards N`` run the
  multi-process cluster instead (a front-door router consistent-hashing
  rooms onto N shard workers, each a full server in its own process).
* ``status`` — send the one-shot STATUS introspection query to a running
  rendezvous server and print its live telemetry snapshot.
* ``cluster-status`` — the same query against a cluster router, rendered
  with the per-shard health table and the merged cross-shard telemetry.
* ``top`` — live ASCII dashboard over a running relay/router: periodic
  STATUS samples folded into rooms/s, sheds/s per reason, retry rate and
  relay p50/p99 over time (``repro.obs.telemetry``); ``--prom DIR``
  additionally writes one Prometheus text-exposition file per sample.
* ``load`` — open-loop load run (``repro.load``): spawn handshake rooms
  on a Poisson or bursty arrival clock against a rendezvous relay (a
  self-hosted server/cluster by default, or ``--port`` for a running
  one), validate every completed room's books against the symbolic
  capacity model, and print the SLO + capacity report; ``--trace PATH``
  records the run into one merged Perfetto-loadable trace (client,
  router and per-shard lanes) and adds a timeline section to the report,
  ``--prom DIR`` writes Prometheus samples alongside.
* ``revoke`` — seeded revocation-epoch demo: derive a group, queue the
  named member(s), seal ONE batched epoch (one accumulator trapdoor
  exponentiation + one CGKD rekey for the whole batch) and print the
  exact books plus the before/after handshake verdicts.  Exits nonzero
  if any verdict is wrong.
* ``epoch`` — drive a churn run through ``repro.revocation``: joins and
  sealed revocation batches per epoch, a sleeper that lazily refreshes
  at the end (one coalesced witness update within the horizon), the
  delta log tail, and the aggregate service stats the STATUS channel
  surfaces.
* ``join`` — run handshake participant(s) against a rendezvous server.
  With ``--index`` one party joins from this process (run m processes
  with the same ``--seed`` to handshake across processes: group creation
  is deterministic, so each process derives the same credentials); without
  it, all m parties run concurrently from this process — a loopback demo
  of real TCP wire traffic.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
import time

from repro import (
    accel,
    create_scheme1,
    create_scheme2,
    metrics,
    run_handshake,
    scheme1_policy,
    scheme2_policy,
)
from repro.security.adversaries import Impostor


def _banner(text: str) -> None:
    print(f"\n=== {text}")


def _add_accel_flags(sub) -> None:
    sub.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker processes / bridge threads for the accel "
                          "subsystem (default: one per CPU)")
    sub.add_argument("--no-accel", action="store_true",
                     help="disable crypto acceleration (fixed-base "
                          "precomputation, batch verification, offload); "
                          "results and operation counts are identical "
                          "either way")
    sub.add_argument("--no-batch", action="store_true",
                     help="keep acceleration on but turn off room-scale "
                          "batch verification of Phase III scans")


def _apply_accel(args: argparse.Namespace) -> bool:
    """Configure repro.accel from the CLI flags; returns enabled state."""
    enabled = not getattr(args, "no_accel", False)
    accel.configure(enabled=enabled, workers=getattr(args, "workers", None),
                    batch=not getattr(args, "no_batch", False))
    return enabled


def _accel_summary() -> str:
    stats = accel.stats()
    fb = stats["fixed_base"]
    line = (f"accel: enabled={stats['enabled']} "
            f"fixed-base hits/misses={fb['hits']}/{fb['misses']} "
            f"tables={fb['tables']}/{fb['capacity']}")
    if stats["pool"]:
        pool = stats["pool"]
        line += (f" pool tasks={pool['tasks']} "
                 f"inline={pool['inline']} workers={pool['workers']}")
    bridge = stats["bridge"]
    if bridge["tasks"]:
        line += f" bridge tasks={bridge['tasks']}"
    return line


def _demo(args: argparse.Namespace) -> int:
    _apply_accel(args)
    rng = random.Random(args.seed)
    started = time.time()
    ok = True

    def check(label: str, condition: bool) -> None:
        nonlocal ok
        if not condition:
            ok = False
            print(f"!! demo expectation failed: {label}")

    _banner("SHS.CreateGroup + SHS.AdmitMember")
    agency = create_scheme1("demo-agency", rng=rng)
    members = [agency.admit_member(f"agent-{i}", rng) for i in range(4)]
    print(f"group 'demo-agency' with {len(members)} members "
          f"({agency.authority.board and len(agency.authority.board)} board posts)")

    _banner("SHS.Handshake: four members of one group")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("success:", all(o.success for o in outcomes),
          "| shared key:", outcomes[0].session_key.hex()[:24], "…")
    check("same-group handshake succeeds", all(o.success for o in outcomes))

    _banner("SHS.Handshake with an impostor")
    outcomes = run_handshake(members[:2] + [Impostor(rng=rng)],
                             scheme1_policy(), rng)
    print("success:", any(o.success for o in outcomes),
          "(impostor detected, affiliations never revealed)")
    check("impostor handshake fails", not any(o.success for o in outcomes))

    _banner("SHS.TraceUser")
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    trace = agency.trace(outcomes[0].transcript)
    print("GA identifies:", ", ".join(sorted(trace.identified)))
    check("tracing identifies the participants",
          sorted(trace.identified) == ["agent-0", "agent-1", "agent-2"])

    _banner("SHS.RemoveUser (dual revocation)")
    agency.remove_user("agent-3")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("handshake including the revoked member succeeds:",
          any(o.success for o in outcomes))
    check("revoked member breaks the handshake",
          not any(o.success for o in outcomes))
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    print("survivors-only handshake succeeds:",
          all(o.success for o in outcomes))
    check("survivors-only handshake succeeds",
          all(o.success for o in outcomes))

    _banner("Self-distinction (instantiation 2)")
    committee = create_scheme2("demo-committee", rng=rng)
    honest = committee.admit_member("honest", rng)
    rogue = committee.admit_member("rogue", rng)
    outcomes = run_handshake([honest, rogue, rogue], scheme2_policy(), rng)
    print("rogue playing two roles detected:",
          outcomes[0].distinct is False)
    check("rogue detected", outcomes[0].distinct is False)

    print(f"\n{_accel_summary()}")
    print(f"done in {time.time() - started:.1f}s — see examples/ for more")
    return 0 if ok else 1


def _stats_from(args: argparse.Namespace) -> int:
    """Render the tables from a previously exported metrics JSON snapshot
    (``repro stats --json PATH`` output) instead of re-running anything."""
    import json as _json

    try:
        with open(args.from_path) as handle:
            text = handle.read()
        if not text.strip():
            raise ValueError("empty file")
        doc = _json.loads(text)
        scopes = doc.get("scopes") if isinstance(doc, dict) else None
        if not isinstance(scopes, dict) or not scopes:
            raise ValueError("no 'scopes' section — not a metrics export")
    except (OSError, ValueError) as exc:
        print(f"!! cannot load metrics from {args.from_path}: {exc}",
              file=sys.stderr)
        return 1
    fields = ("modexp", "messages_sent", "messages_received",
              "bytes_sent", "bytes_received", "wall_time")
    names = sorted(s for s in scopes if s != "total")
    if "total" in scopes:
        names.append("total")
    rows = [[name] + [str(scopes[name].get(f, 0) or 0) for f in fields]
            for name in names]
    header = ["scope", *fields]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    print(f"metrics from {args.from_path}")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(c.rjust(w) if i else c.ljust(w)
                        for i, (c, w) in enumerate(zip(row, widths))))
    for name, summary in sorted((doc.get("histograms") or {}).items()):
        if summary.get("count"):
            print(f"{name}: count={summary['count']} "
                  f"p50={summary.get('p50', 0):.6g} "
                  f"p99={summary.get('p99', 0):.6g} "
                  f"max={summary.get('max', 0):.6g}")
    return 0


def _stats(args: argparse.Namespace) -> int:
    if args.from_path:
        return _stats_from(args)
    _apply_accel(args)
    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("stats-group", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("stats-group", rng=rng)
        policy = scheme1_policy()
    top = max(args.parties)
    # Progress goes to stderr so ``--format json|csv`` stdout stays parseable.
    progress = sys.stdout if args.format == "table" else sys.stderr
    print(f"building scheme-{args.scheme} group with {top} members "
          f"(seed {args.seed}) …", file=progress)
    members = [framework.admit_member(f"user-{i}", rng) for i in range(top)]

    table_out = args.format == "table"
    all_ok = True
    last_snapshot = None
    for m in args.parties:
        metrics.reset()
        if args.trace:
            metrics.enable_tracing()
        outcomes = run_handshake(members[:m], policy, rng)
        snap = metrics.snapshot()
        last_snapshot = snap
        ok = all(o.success for o in outcomes)
        all_ok = all_ok and ok
        if not table_out:
            continue
        phase_scopes = [s for s in ("phase:I", "phase:II", "phase:III")
                        if s in snap]
        party_scopes = [f"hs:{i}" for i in range(m)]
        print()
        print(metrics.format_table(
            snap, scopes=phase_scopes + party_scopes + ["total"],
            title=f"m={m} parties, success={ok} "
                  f"(paper: O(m) modexp + O(m) messages per party)"))
        if args.percentiles:
            print()
            print(metrics.format_histograms(
                title=f"m={m} latency/burst percentiles"))
        if args.trace:
            evs = metrics.events()
            print(f"\ntrace: {len(evs)} events "
                  f"(scope begin/end, send/recv, modexp bursts); first 10:")
            for event in evs[:10]:
                print(f"  {event.ts:9.4f}s  {event.kind:<12} "
                      f"{event.scope:<12} {event.data}")

    if table_out:
        print(f"\n{_accel_summary()}")

    if last_snapshot is not None:
        # Machine-readable stdout renderings of the final (largest-m)
        # snapshot; ``--json``/``--csv`` below write files instead.
        if args.format == "json":
            print(metrics.export_json(last_snapshot,
                                      include_events=args.trace,
                                      include_histograms=True))
        elif args.format == "csv":
            print(metrics.export_csv(last_snapshot), end="")
        if args.json:
            metrics.write_json(args.json, snap=last_snapshot,
                               include_events=args.trace)
            if table_out:
                print(f"\nwrote JSON export to {args.json}")
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(metrics.export_csv(last_snapshot))
            if table_out:
                print(f"wrote CSV export to {args.csv}")
    if not all_ok:
        print("\n!! at least one same-group handshake failed", file=sys.stderr)
        return 1
    return 0


def _trace(args: argparse.Namespace) -> int:
    from repro.obs import export as obs_export

    if args.infile:
        # Re-render a previously exported span log — no handshake run.
        from repro.obs import telemetry
        try:
            spans = telemetry.load_spans_jsonl(args.infile)
        except (OSError, ValueError) as exc:
            print(f"!! cannot load spans from {args.infile}: {exc}",
                  file=sys.stderr)
            return 1
        print(obs_export.render_gantt(
            spans, width=args.width,
            title=f"spans from {args.infile} ({len(spans)} spans)"))
        return 0
    if args.cluster:
        return _trace_cluster(args)
    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("trace-group", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("trace-group", rng=rng)
        policy = scheme1_policy()
    print(f"building scheme-{args.scheme} group with {args.m} members "
          f"(seed {args.seed}) …")
    members = [framework.admit_member(f"user-{i}", rng)
               for i in range(args.m)]

    metrics.reset()
    metrics.enable_tracing()
    if args.transport == "engine":
        outcomes = run_handshake(members, policy, rng)
    elif args.transport == "sim":
        from repro.net.runner import run_handshake_over_network
        outcomes = run_handshake_over_network(members, policy, rng=rng)
    else:  # socket: loopback rendezvous room over real TCP
        from repro.service import (ClientConfig, RendezvousServer,
                                   ServerConfig, run_room)

        async def socket_room():
            async with RendezvousServer(ServerConfig(port=0)) as server:
                config = ClientConfig(port=server.port, room="trace-room",
                                      m=args.m)
                return await run_room(members, config, policy)

        outcomes = asyncio.run(socket_room())

    ok = all(o.success for o in outcomes)
    spans = metrics.spans()
    print()
    print(obs_export.render_gantt(
        spans, width=args.width,
        title=f"{args.transport} handshake, m={args.m}, success={ok} "
              f"({len(spans)} spans)"))
    if args.out:
        obs_export.export_chrome_trace(args.out, spans)
        print(f"\nwrote Chrome trace to {args.out} "
              f"(load it at https://ui.perfetto.dev)")
    if args.jsonl:
        obs_export.export_spans_jsonl(args.jsonl, spans)
        print(f"wrote span log to {args.jsonl}")
    if not ok:
        print("\n!! handshake failed", file=sys.stderr)
        return 1
    return 0


def _trace_cluster(args: argparse.Namespace) -> int:
    """One traced room against a self-hosted cluster: client, router and
    shard spans stitched into one trace (``repro trace --cluster``)."""
    from repro.cluster import ClusterConfig, ClusterRouter
    from repro.load.generator import run_timed_room
    from repro.obs import telemetry
    from repro.service import ClientConfig

    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("trace-group", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("trace-group", rng=rng)
        policy = scheme1_policy()
    shards = args.shards if args.shards > 0 else 2
    print(f"building scheme-{args.scheme} group with {args.m} members "
          f"(seed {args.seed}); self-hosting a {shards}-shard cluster …")
    members = [framework.admit_member(f"user-{i}", rng)
               for i in range(args.m)]

    metrics.reset()
    metrics.enable_tracing()        # router placement spans land here

    async def run():
        config = ClusterConfig(host="127.0.0.1", port=0, shards=shards,
                               trace=True)
        router = await ClusterRouter(config).start()
        try:
            client = ClientConfig(port=router.port, room="trace-room",
                                  m=args.m)
            result = await run_timed_room(members, client, policy)
            # Shard spans travel on the heartbeat channel — give the last
            # batch a couple of beats to arrive before collecting.
            await asyncio.sleep(3 * config.heartbeat_interval)
            return result, router.shipped_spans()
        finally:
            await router.shutdown()

    result, shipped = asyncio.run(run())
    ok = result.outcome == "completed"
    sources = [
        {"label": "client", "epoch": result.span_epoch,
         "spans": result.spans},
        {"label": "router", "epoch": metrics.current_recorder().epoch,
         "spans": telemetry.span_dicts(metrics.spans())},
    ]
    for shard_id, batch in sorted(shipped.items()):
        if batch["spans"]:
            sources.append({"label": f"shard:{shard_id}",
                            "epoch": batch["epoch"],
                            "spans": batch["spans"]})
    print()
    print(telemetry.render_cluster_gantt(
        sources, width=args.width,
        title=f"cluster handshake, m={args.m}, {shards} shards, "
              f"trace={result.trace_id or '-'}, outcome={result.outcome}"))
    if args.out:
        telemetry.export_merged_trace(args.out, sources)
        print(f"\nwrote merged cluster trace to {args.out} "
              f"(load it at https://ui.perfetto.dev — one lane per "
              f"process, search the trace id to follow the room)")
    if args.jsonl:
        import json as _json

        from repro.obs.export import _arg
        with open(args.jsonl, "w") as handle:
            for source in sources:
                for row in telemetry.span_dicts(source["spans"]):
                    handle.write(_json.dumps(
                        {"lane": source["label"],
                         **{k: _arg(v) for k, v in row.items()}},
                        sort_keys=True) + "\n")
        print(f"wrote span log to {args.jsonl}")
    if not ok:
        print("\n!! handshake failed", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Revocation subcommands.
# ---------------------------------------------------------------------------


def _revocation_world(args: argparse.Namespace):
    from repro.core.framework import GcdFramework
    from repro.revocation import RevocationService

    rng = random.Random(args.seed)
    framework = GcdFramework.create("cli-revocation", gsig_kind="acjt",
                                    gsig_profile="tiny", rng=rng)
    service = RevocationService(framework, horizon=args.horizon,
                                register=False)
    for i in range(args.members):
        service.admit(f"user-{i}", rng)
    return framework, service, rng


def _revoke(args: argparse.Namespace) -> int:
    rng_seed = args.seed
    print(f"deriving ACJT group with {args.members} members "
          f"(seed {rng_seed}) …")
    framework, service, rng = _revocation_world(args)
    roster = [f"user-{i}" for i in range(args.members)]
    unknown = [u for u in args.users if u not in roster]
    if unknown:
        print(f"!! not in the group: {', '.join(unknown)} "
              f"(roster: user-0 … user-{args.members - 1})", file=sys.stderr)
        return 1
    survivors = [u for u in roster if u not in args.users]
    if len(survivors) < 2:
        print("!! need at least two survivors for the post-epoch "
              "handshake; revoke fewer members or raise --members",
              file=sys.stderr)
        return 1
    ok = True

    _banner(f"queueing {len(args.users)} revocation(s)")
    for user in args.users:
        pending = service.revoke(user)
        print(f"  {user} queued ({pending} pending; still verifies "
              f"until the epoch seals)")

    _banner("sealing ONE batched epoch")
    with metrics.detached() as recorder:
        delta = service.seal_epoch()
    seal_modexp = recorder.snapshot().get("rev:seal")
    print(f"epoch {delta.epoch}: revoked {', '.join(delta.revoked_users)} "
          f"with ONE trapdoor exponentiation + ONE CGKD rekey")
    print(f"  sealed-epoch modexps (all parties): "
          f"{seal_modexp.modexp if seal_modexp else 0}  "
          f"(sequential would pay ~{len(args.users)}x at the manager)")

    _banner("verdicts")
    outcomes = framework.handshake(survivors[:3], rng=rng)
    survivors_ok = all(o.success for o in outcomes)
    print(f"survivors-only handshake succeeds: {survivors_ok}")
    ok = ok and survivors_ok
    mixed = framework.handshake(survivors[:2] + args.users[:1], rng=rng)
    revoked_breaks = not any(o.success for o in mixed)
    print(f"handshake including a revoked member fails: {revoked_breaks}")
    ok = ok and revoked_breaks

    stats = service.stats()
    print(f"\nservice: epoch={stats['epoch']} pending={stats['pending']} "
          f"epochs_sealed={stats['epochs_sealed']} "
          f"revoked={stats['revoked']}")
    return 0 if ok else 1


def _epoch(args: argparse.Namespace) -> int:
    from repro.revocation.model import ChurnSpec, simulate_churn

    print(f"deriving ACJT group with {args.members} members "
          f"(seed {args.seed}, horizon {args.horizon}) …")
    framework, service, rng = _revocation_world(args)
    ok = True

    _banner(f"{args.epochs} churn epochs "
            f"(1 join + 1 sealed revocation each)")
    sleeper = service.admit("sleeper", rng, enroll=False)
    slept_from = sleeper.acc_epoch
    for i in range(args.epochs):
        service.admit(f"churn-{i}", rng)
        service.revoke(f"churn-{i}")
        service.seal_epoch()
    missed = service.epoch - slept_from
    print(f"sleeper slept from epoch {slept_from} to {service.epoch} "
          f"({missed} missed epochs)")

    _banner("lazy refresh")
    with metrics.detached() as recorder:
        result = service.refresh(sleeper)
    current = sleeper.witness_is_current()
    print(f"refresh: {result}, {recorder.total().modexp} member modexps, "
          f"witness current: {current}")
    ok = ok and current and result in ("replayed", "reissued")

    _banner("delta log (most recent epochs)")
    for delta in service.delta_log()[-args.epochs:][-6:]:
        change = (f"+{len(delta.added)} join(s)" if delta.added
                  else f"-{len(delta.deleted)} revocation(s)")
        print(f"  epoch {delta.epoch:>3}: {change}"
              + (f" [{', '.join(delta.revoked_users)}]"
                 if delta.revoked_users else ""))

    stats = service.stats()
    print(f"\nservice: epoch={stats['epoch']} pending={stats['pending']} "
          f"epochs_sealed={stats['epochs_sealed']} "
          f"revoked={stats['revoked']} log={stats['log_len']}/"
          f"{stats['horizon']}")

    if args.simulate:
        _banner(f"projected books at {args.simulate:g} members "
                f"(counter-only simulation)")
        doc = simulate_churn(ChurnSpec(
            members=int(args.simulate), epochs=args.epochs,
            revocations_per_epoch=50, joins_per_epoch=25,
            sleepers=int(args.simulate) // 100, horizon=args.horizon))
        for leg in ("sequential", "batched"):
            print(f"  {leg:<11} total modexps: "
                  f"{doc[leg]['total_modexps']:,}")
        print(f"  speedup: {doc['speedup_total']:.1f}x")
    return 0 if ok else 1


# ---------------------------------------------------------------------------
# Service subcommands.
# ---------------------------------------------------------------------------


def _serve(args: argparse.Namespace) -> int:
    from repro.service import RendezvousServer, ServerConfig

    offload = _apply_accel(args)

    async def single() -> int:
        config = ServerConfig(
            host=args.host, port=args.port,
            room_fill_timeout=args.room_fill_timeout,
            handshake_timeout=args.handshake_timeout,
            max_rooms=args.max_rooms,
            offload=offload)
        server = await RendezvousServer(config).start()
        print(f"rendezvous server listening on {args.host}:{server.port} "
              f"(untrusted relay — it sees only wire-format ciphertexts)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.shutdown()
            snap = metrics.snapshot()
            print(metrics.format_table(
                snap, scopes=[s for s in sorted(snap) if s != "total"] + ["total"],
                fields=("messages_sent", "messages_received",
                        "bytes_sent", "bytes_received", "wall_time"),
                title="service metrics"))
        return 0

    async def cluster() -> int:
        from repro.cluster import ClusterConfig, ClusterRouter

        config = ClusterConfig(
            host=args.host, port=args.port, shards=args.shards,
            room_fill_timeout=args.room_fill_timeout,
            handshake_timeout=args.handshake_timeout,
            max_rooms_per_shard=args.max_rooms)
        router = await ClusterRouter(config).start()
        print(f"cluster router listening on {args.host}:{router.port} — "
              f"{args.shards} shard processes behind it "
              f"(rooms consistent-hashed by rendezvous name; "
              f"query with `python -m repro cluster-status`)")
        try:
            await router.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await router.shutdown()
        return 0

    try:
        return asyncio.run(cluster() if args.shards > 0 else single())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


def _gate(args: argparse.Namespace) -> int:
    from repro.gate.http import GatewayConfig, HttpGateway, derive_members

    async def main() -> int:
        router = None
        target_port = args.target_port
        if target_port == 0:
            from repro.cluster import ClusterConfig, ClusterRouter
            router = await ClusterRouter(ClusterConfig(
                host=args.host, shards=args.shards)).start()
            target_port = router.port
            print(f"cluster router on {args.host}:{target_port} "
                  f"({args.shards} shards)")
        members, policy = derive_members(args.scheme, args.seed, args.pool)
        gateway = await HttpGateway(
            GatewayConfig(host=args.host, port=args.port,
                          target_host=args.host, target_port=target_port,
                          deadline=args.deadline, seed=args.seed),
            members, policy).start()
        print(f"HTTP gateway on http://{args.host}:{gateway.port} — "
              f"POST /rooms, GET /rooms/{{name}}, GET /status, "
              f"GET /metrics (member pool: {args.pool})")
        try:
            await gateway.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.shutdown()
            if router is not None:
                await router.shutdown()
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


def _build_join_world(args: argparse.Namespace):
    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("cli-room", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("cli-room", rng=rng)
        policy = scheme1_policy()
    members = [framework.admit_member(f"user-{i}", rng)
               for i in range(args.m)]
    return members, policy


def _join(args: argparse.Namespace) -> int:
    from repro.core.handshake import HandshakeOutcome
    from repro.service import ClientConfig, join_room, run_room

    offload = _apply_accel(args)
    print(f"deriving scheme-{args.scheme} group from seed {args.seed} "
          f"(m={args.m}) …")
    members, policy = _build_join_world(args)
    config = ClientConfig(host=args.host, port=args.port, room=args.room,
                          m=args.m, deadline=args.deadline, offload=offload)

    async def main():
        if args.index is not None:
            rng = random.Random(args.seed * 1000 + args.index)
            return [await join_room(members[args.index], config, policy, rng)]
        return await run_room(members, config, policy)

    outcomes = asyncio.run(main())
    for outcome in outcomes:
        assert isinstance(outcome, HandshakeOutcome)
        peers = ", ".join(str(i) for i in sorted(outcome.confirmed_peers))
        key = (outcome.session_key.hex()[:24] + " …"
               if outcome.session_key else "-")
        print(f"party {outcome.index}: success={outcome.success} "
              f"confirmed_peers=[{peers}] key={key}")
    ok = bool(outcomes) and all(o.success for o in outcomes)
    return 0 if ok else 1


def _load(args: argparse.Namespace) -> int:
    import json as _json

    from repro.load import (LoadConfig, RoomMix, build_report,
                            format_report, run_open_loop)
    from repro.service import query_status

    offload = _apply_accel(args)
    try:
        mix = RoomMix.parse(args.mix)
    except ValueError as exc:
        print(f"!! bad --mix: {exc}", file=sys.stderr)
        return 1
    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("load-group", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("load-group", rng=rng)
        policy = scheme1_policy()
    members = [framework.admit_member(f"user-{i}", rng)
               for i in range(mix.max_m)]
    config = LoadConfig(
        host=args.host, port=args.port, rate=args.rate,
        duration=args.duration, process=args.process,
        burst_factor=args.burst_factor, on_fraction=args.on_fraction,
        cycle=args.cycle, mix=mix, scheme=args.scheme, seed=args.seed,
        deadline=args.deadline, validate=not args.no_validate)

    tracing = bool(args.trace)
    sampling = tracing or bool(args.prom)

    async def _run(port: int, shards: int, router=None) -> int:
        from repro.obs import telemetry

        run_config = LoadConfig(**{**config.__dict__, "port": port})
        recorder = metrics.Recorder()
        recorder.tracing = tracing    # per-room recorders inherit this
        sampler = sampler_task = None
        if sampling:
            # The sampler runs outside the driver recorder's context so
            # its STATUS queries never touch the driver's books.
            sampler = telemetry.StatusSampler(
                args.host, port, interval=args.sample_interval,
                client_recorder=recorder, prom_dir=args.prom)
            sampler_task = asyncio.ensure_future(sampler.run())
        with metrics.using(recorder):
            results = await run_open_loop(run_config, members, policy)
        if sampler is not None:
            await sampler.stop(sampler_task)
        try:
            status = await query_status(args.host, port, timeout=5.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            status = None
        timeline = (sampler.series.timeline_doc()
                    if sampler is not None and len(sampler.series) > 1
                    else None)
        doc = build_report(run_config, results, status=status,
                           recorder=recorder, shards=max(shards, 1),
                           max_rooms_per_shard=args.max_rooms,
                           timeline=timeline)
        print(format_report(doc))
        if args.prom and sampler is not None:
            print(f"wrote {len(sampler.series)} Prometheus samples "
                  f"to {args.prom}/")
        if args.trace:
            if router is not None:
                # Give the shards' last heartbeat batches time to land.
                await asyncio.sleep(
                    3 * router.config.heartbeat_interval)
            sources = [{"label": "client", "epoch": r.span_epoch,
                        "spans": r.spans}
                       for r in results if r.spans]
            own = telemetry.span_dicts(metrics.spans())
            if own:
                sources.append({
                    "label": "router" if router is not None else "relay",
                    "epoch": metrics.current_recorder().epoch,
                    "spans": own})
            if router is not None:
                for shard_id, batch in sorted(
                        router.shipped_spans().items()):
                    if batch["spans"]:
                        sources.append({"label": f"shard:{shard_id}",
                                        "epoch": batch["epoch"],
                                        "spans": batch["spans"]})
            telemetry.export_merged_trace(args.trace, sources)
            spans_n = sum(len(s["spans"]) for s in sources)
            print(f"wrote merged trace to {args.trace} "
                  f"({len(sources)} sources, {spans_n} spans — load it "
                  f"at https://ui.perfetto.dev)")
        if args.json:
            with open(args.json, "w") as handle:
                _json.dump(doc, handle, indent=2, sort_keys=True)
            print(f"wrote report JSON to {args.json}")
        counts_ok = doc["model"]["counts_exact"] or args.no_validate
        return 0 if counts_ok else 1

    async def main() -> int:
        if tracing:
            # The self-hosted relay/router runs on this thread's ambient
            # recorder; enabling tracing here is what makes its placement
            # / room spans land somewhere collectable.
            metrics.enable_tracing()
        if args.port:
            # Target a relay someone else is running.
            return await _run(args.port, args.shards)
        if args.shards > 0:
            from repro.cluster import ClusterConfig, ClusterRouter

            cluster_config = ClusterConfig(
                host=args.host, port=0, shards=args.shards,
                max_rooms_per_shard=args.max_rooms,
                trace=tracing)
            router = await ClusterRouter(cluster_config).start()
            print(f"self-hosted cluster: {args.shards} shards behind "
                  f"port {router.port}")
            try:
                return await _run(router.port, args.shards, router=router)
            finally:
                await router.shutdown()
        from repro.service import RendezvousServer, ServerConfig

        server_config = ServerConfig(host=args.host, port=0,
                                     max_rooms=args.max_rooms,
                                     offload=offload)
        async with RendezvousServer(server_config) as server:
            print(f"self-hosted rendezvous server on port {server.port}")
            return await _run(server.port, 1)

    return asyncio.run(main())


def _top(args: argparse.Namespace) -> int:
    """Live ASCII dashboard over a running relay/router's STATUS."""
    from repro.obs.telemetry import StatusSampler, render_top

    async def run() -> int:
        sampler = StatusSampler(args.host, args.port,
                                interval=args.interval,
                                prom_dir=args.prom)
        taken = 0
        while args.samples is None or taken < args.samples:
            sample = await sampler.sample_once()
            taken += 1
            if sample is None and not len(sampler.series):
                print(f"!! cannot reach {args.host}:{args.port} "
                      f"(is a relay running there?)", file=sys.stderr)
                return 1
            frame = render_top(sampler.series, rows=args.rows,
                               title=f"repro top — {args.host}:{args.port} "
                                     f"every {args.interval:g}s")
            if args.samples is None:
                # Interactive: redraw in place (clear screen + home).
                print("\x1b[2J\x1b[H" + frame, flush=True)
            else:
                print(frame, flush=True)
            if args.samples is None or taken < args.samples:
                await asyncio.sleep(args.interval)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print()
        return 0


def _status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import TransportError
    from repro.service import query_status

    try:
        status = asyncio.run(query_status(args.host, args.port,
                                          timeout=args.timeout))
    except (TransportError, ConnectionError, OSError,
            asyncio.TimeoutError) as exc:
        print(f"!! could not query {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    rooms = status.get("rooms", {})
    queues = status.get("send_queues", {})
    print(f"relay {args.host}:{args.port} — "
          f"up {status.get('uptime_s', 0.0):.1f}s, "
          f"accepting={status.get('accepting')}")
    print(f"connections: {status.get('connections', 0)}  "
          f"rooms: {rooms.get('filling', 0)} filling / "
          f"{rooms.get('active', 0)} active / {rooms.get('closed', 0)} closed")
    print(f"send queues: depth {queues.get('total_depth', 0)} total, "
          f"{queues.get('max_depth', 0)} max; "
          f"relay backlog {status.get('relay_backlog', 0)}")
    for section in ("outcomes", "counters"):
        entries = status.get(section, {})
        if entries:
            print(f"{section}:")
            for name in sorted(entries):
                print(f"  {name:<28} {entries[name]}")
    hists = status.get("histograms", {})
    if hists:
        print("histograms:")
        for name in sorted(hists):
            s = hists[name]
            if not s["count"]:
                print(f"  {name:<24} count=0")
                continue
            print(f"  {name:<24} count={s['count']:<6} "
                  f"p50={s['p50']:.6g} p90={s['p90']:.6g} "
                  f"p99={s['p99']:.6g} max={s['max']:.6g}")
    accel_stats = status.get("accel")
    if accel_stats:
        fb = accel_stats.get("fixed_base", {})
        pool = accel_stats.get("pool") or {}
        bridge = accel_stats.get("bridge", {})
        print(f"accel: enabled={accel_stats.get('enabled')}  "
              f"fixed-base hits/misses={fb.get('hits', 0)}/"
              f"{fb.get('misses', 0)} tables={fb.get('tables', 0)}  "
              f"pool tasks={pool.get('tasks', 0)}  "
              f"bridge tasks={bridge.get('tasks', 0)}")
    return 0


def _cluster_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import TransportError
    from repro.service import query_status

    try:
        status = asyncio.run(query_status(args.host, args.port,
                                          timeout=args.timeout))
    except (TransportError, ConnectionError, OSError,
            asyncio.TimeoutError) as exc:
        print(f"!! could not query {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    cluster = status.get("cluster")
    if cluster is None:
        print(f"!! {args.host}:{args.port} answered a plain server STATUS "
              f"— not a cluster router (try `python -m repro status`)",
              file=sys.stderr)
        return 1
    states = cluster.get("states", {})
    print(f"cluster router {args.host}:{args.port} — "
          f"up {cluster.get('router_uptime_s', 0.0):.1f}s, "
          f"accepting={cluster.get('accepting')}, "
          f"{cluster.get('shards', 0)} shards "
          f"({', '.join(f'{s}: {ids}' for s, ids in sorted(states.items()))})")
    rooms = status.get("rooms", {})
    print(f"rooms (all shards): {rooms.get('filling', 0)} filling / "
          f"{rooms.get('active', 0)} active / {rooms.get('closed', 0)} closed"
          f"  open={status.get('open_rooms', 0)}"
          f"  connections={status.get('connections', 0)}")
    shards = status.get("shards", {})
    if shards:
        print("shards:")
        for shard_id in sorted(shards, key=int):
            line = shards[shard_id]
            age = line.get("heartbeat_age_s")
            shard_rooms = line.get("rooms") or {}
            print(f"  #{shard_id:<3} {line.get('state', '?'):<9} "
                  f"port={line.get('port') or '-':<6} "
                  f"hb_age={age if age is not None else '-':<7} "
                  f"rooms={shard_rooms.get('filling', 0)}f/"
                  f"{shard_rooms.get('active', 0)}a/"
                  f"{shard_rooms.get('closed', 0)}c")
    for section in ("outcomes", "counters"):
        entries = status.get(section, {})
        if entries:
            print(f"{section} (merged):")
            for name in sorted(entries):
                print(f"  {name:<32} {entries[name]}")
    hists = status.get("histograms", {})
    if hists:
        print("histograms (merged):")
        for name in sorted(hists):
            s = hists[name]
            if not s["count"]:
                print(f"  {name:<24} count=0")
                continue
            print(f"  {name:<24} count={s['count']:<6} "
                  f"p50={s['p50']:.6g} p90={s['p90']:.6g} "
                  f"p99={s['p99']:.6g} max={s['max']:.6g}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="seeded framework tour (the default)")
    demo.add_argument("--seed", type=int, default=2005,
                      help="RNG seed for the tour (default: 2005)")
    _add_accel_flags(demo)

    stats = sub.add_parser(
        "stats", help="replay a benchmark handshake and print per-phase "
                      "and per-party cost tables")
    stats.add_argument("-m", "--parties", type=int, nargs="+",
                       default=[2, 4], metavar="M",
                       help="party counts to sweep (default: 2 4)")
    stats.add_argument("--scheme", choices=("1", "2"), default="1",
                       help="instantiation: 1 = BD+LKH+ACJT, "
                            "2 = BD+NNL+KTY (default: 1)")
    stats.add_argument("--seed", type=int, default=2005)
    stats.add_argument("--trace", action="store_true",
                       help="record and summarize the trace-event stream")
    stats.add_argument("--percentiles", action="store_true",
                       help="also print latency/burst histogram percentile "
                            "tables (p50/p90/p99)")
    stats.add_argument("--format", choices=("table", "json", "csv"),
                       default="table",
                       help="stdout rendering: human tables (default), or "
                            "the final snapshot as JSON / CSV")
    stats.add_argument("--json", metavar="PATH",
                       help="write the final snapshot as JSON")
    stats.add_argument("--csv", metavar="PATH",
                       help="write the final snapshot as CSV")
    stats.add_argument("--from", dest="from_path", metavar="PATH",
                       help="render tables from a previously exported "
                            "metrics JSON snapshot instead of running "
                            "anything (nonzero exit on a missing or "
                            "empty file)")
    _add_accel_flags(stats)

    trace = sub.add_parser(
        "trace", help="run one traced handshake and render the span "
                      "timeline (ASCII Gantt; optional Perfetto export)")
    trace.add_argument("-m", type=int, default=3,
                       help="party count (default: 3)")
    trace.add_argument("--transport", choices=("engine", "sim", "socket"),
                       default="sim",
                       help="how to run the handshake: synchronous engine, "
                            "in-process simulator (default), or a loopback "
                            "TCP rendezvous room")
    trace.add_argument("--scheme", choices=("1", "2"), default="1")
    trace.add_argument("--seed", type=int, default=2005)
    trace.add_argument("--width", type=int, default=60,
                       help="Gantt bar width in characters (default: 60)")
    trace.add_argument("--out", metavar="PATH",
                       help="write a Chrome trace_event JSON "
                            "(load at https://ui.perfetto.dev)")
    trace.add_argument("--jsonl", metavar="PATH",
                       help="write finished spans as JSON lines")
    trace.add_argument("--cluster", action="store_true",
                       help="run the room against a self-hosted "
                            "multi-process cluster and merge client, "
                            "router and shard spans into one trace")
    trace.add_argument("--shards", type=int, default=2, metavar="N",
                       help="shard count for --cluster (default: 2)")
    trace.add_argument("--in", dest="infile", metavar="PATH",
                       help="render a previously exported span log "
                            "(--jsonl output) instead of running a "
                            "handshake (nonzero exit on a missing or "
                            "empty file)")

    serve = sub.add_parser(
        "serve", help="run the rendezvous server (untrusted relay) "
                      "until interrupted")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7045)
    serve.add_argument("--room-fill-timeout", type=float, default=30.0)
    serve.add_argument("--handshake-timeout", type=float, default=60.0)
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="run a multi-process cluster: a front-door "
                            "router placing rooms onto N shard worker "
                            "processes (default: 0 = single process)")
    serve.add_argument("--max-rooms", type=int, default=None, metavar="R",
                       help="admission ceiling on open rooms (per shard "
                            "when clustered); beyond it new rooms are "
                            "shed with a retryable BUSY frame")
    _add_accel_flags(serve)

    load = sub.add_parser(
        "load", help="open-loop load run with symbolic-model validation "
                     "and an SLO/capacity report")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=0,
                      help="target a relay already running on PORT "
                           "(default: 0 = self-host one for the run)")
    load.add_argument("--rate", type=float, default=2.0, metavar="R",
                      help="mean arrival rate, rooms/second (default: 2)")
    load.add_argument("--duration", type=float, default=10.0, metavar="S",
                      help="arrival-generation window, seconds "
                           "(default: 10)")
    load.add_argument("--process", choices=("poisson", "bursty"),
                      default="poisson",
                      help="arrival process (default: poisson)")
    load.add_argument("--burst-factor", type=float, default=4.0,
                      help="bursty: ON-state rate as a multiple of the "
                           "mean rate (default: 4)")
    load.add_argument("--on-fraction", type=float, default=0.3,
                      help="bursty: fraction of time in the ON state "
                           "(default: 0.3)")
    load.add_argument("--cycle", type=float, default=2.0,
                      help="bursty: mean ON+OFF cycle length, seconds "
                           "(default: 2)")
    load.add_argument("--mix", default="2:1", metavar="M:W,...",
                      help="room-size mix as size:weight pairs, e.g. "
                           "'2:0.7,3:0.2,8:0.1' (default: all m=2)")
    load.add_argument("--shards", type=int, default=0, metavar="N",
                      help="self-host a cluster with N shards "
                           "(default: 0 = single server; ignored with "
                           "--port)")
    load.add_argument("--max-rooms", type=int, default=None, metavar="R",
                      help="admission ceiling for the self-hosted relay "
                           "(per shard when clustered)")
    load.add_argument("--scheme", choices=("1", "2"), default="1")
    load.add_argument("--seed", type=int, default=2005)
    load.add_argument("--deadline", type=float, default=30.0,
                      help="per-party client deadline, seconds "
                           "(default: 30)")
    load.add_argument("--no-validate", action="store_true",
                      help="skip per-room model validation")
    load.add_argument("--json", metavar="PATH",
                      help="write the full report document as JSON")
    load.add_argument("--trace", metavar="PATH",
                      help="trace the run and write one merged "
                           "Perfetto-loadable Chrome trace: client, "
                           "router and per-shard lanes, one trace id "
                           "per room")
    load.add_argument("--prom", metavar="DIR",
                      help="sample STATUS during the run and write one "
                           "Prometheus text-exposition file per sample "
                           "into DIR")
    load.add_argument("--sample-interval", type=float, default=0.5,
                      metavar="S",
                      help="STATUS sampling interval for --trace/--prom "
                           "and the report's timeline section "
                           "(default: 0.5)")
    _add_accel_flags(load)

    gate = sub.add_parser(
        "gate", help="HTTP/JSON gateway in front of a relay: spawn rooms "
                     "with POST /rooms, poll GET /rooms/{name}, scrape "
                     "GET /metrics (Prometheus)")
    gate.add_argument("--host", default="127.0.0.1")
    gate.add_argument("--port", type=int, default=7080,
                      help="gateway listen port (default: 7080; 0 = "
                           "ephemeral)")
    gate.add_argument("--target-port", type=int, default=0, metavar="P",
                      help="front a relay/router already running on P "
                           "(default: 0 = self-host a cluster)")
    gate.add_argument("--shards", type=int, default=2, metavar="N",
                      help="shard count for the self-hosted cluster "
                           "(default: 2; ignored with --target-port)")
    gate.add_argument("--pool", type=int, default=8, metavar="M",
                      help="members enrolled in the gateway's seeded "
                           "group — the ceiling on a room's m "
                           "(default: 8)")
    gate.add_argument("--scheme", choices=("1", "2"), default="1")
    gate.add_argument("--seed", type=int, default=2005)
    gate.add_argument("--deadline", type=float, default=30.0,
                      help="per-party deadline for spawned rooms, "
                           "seconds (default: 30)")

    revoke = sub.add_parser(
        "revoke", help="seeded demo of one batched revocation epoch: "
                       "queue member(s), seal, print exact books and "
                       "before/after handshake verdicts")
    revoke.add_argument("users", nargs="+", metavar="USER",
                        help="member(s) to revoke, e.g. user-3 user-4 "
                             "(the seeded roster is user-0 … user-N)")
    revoke.add_argument("--members", type=int, default=5, metavar="N",
                        help="group size to derive (default: 5)")
    revoke.add_argument("--seed", type=int, default=2005)
    revoke.add_argument("--horizon", type=int, default=64,
                        help="delta-log replay horizon (default: 64)")

    epoch = sub.add_parser(
        "epoch", help="drive churn epochs through the revocation service: "
                      "sealed batches, a lazy sleeper refresh, the delta "
                      "log and the service stats STATUS surfaces")
    epoch.add_argument("--members", type=int, default=4, metavar="N",
                       help="initial group size (default: 4)")
    epoch.add_argument("--epochs", type=int, default=6, metavar="E",
                       help="churn epochs to run (default: 6)")
    epoch.add_argument("--seed", type=int, default=2005)
    epoch.add_argument("--horizon", type=int, default=64,
                       help="delta-log replay horizon (default: 64)")
    epoch.add_argument("--simulate", type=float, default=None, metavar="N",
                       help="also print projected sequential-vs-batched "
                            "books for an N-member population (counter-"
                            "only, e.g. --simulate 1e6)")

    join = sub.add_parser(
        "join", help="join a handshake room on a rendezvous server")
    join.add_argument("--host", default="127.0.0.1")
    join.add_argument("--port", type=int, default=7045)
    join.add_argument("--room", default="cli-room")
    join.add_argument("-m", type=int, default=3,
                      help="room size (default: 3)")
    join.add_argument("--index", type=int, default=None,
                      help="run only party INDEX from this process "
                           "(default: run all m parties concurrently)")
    join.add_argument("--seed", type=int, default=2005,
                      help="group-derivation seed; every joining process "
                           "must use the same value")
    join.add_argument("--scheme", choices=("1", "2"), default="1")
    join.add_argument("--deadline", type=float, default=60.0,
                      help="overall per-party deadline in seconds")
    _add_accel_flags(join)

    status = sub.add_parser(
        "status", help="query a running rendezvous server's live telemetry")
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=7045)
    status.add_argument("--timeout", type=float, default=5.0)
    status.add_argument("--json", action="store_true",
                        help="print the raw JSON snapshot")

    top = sub.add_parser(
        "top", help="live ASCII dashboard over a running relay/router: "
                    "rooms/s, sheds/s, retry rate and relay percentiles "
                    "derived from periodic STATUS samples")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7045)
    top.add_argument("--interval", type=float, default=1.0, metavar="S",
                     help="sampling interval, seconds (default: 1)")
    top.add_argument("--samples", type=int, default=None, metavar="N",
                     help="take N samples then exit (default: run until "
                          "interrupted; N is what CI uses)")
    top.add_argument("--rows", type=int, default=12,
                     help="rate rows to show per frame (default: 12)")
    top.add_argument("--prom", metavar="DIR",
                     help="also write one Prometheus text file per sample "
                          "into DIR")

    cstatus = sub.add_parser(
        "cluster-status",
        help="query a running cluster router: per-shard health plus the "
             "merged cross-shard telemetry")
    cstatus.add_argument("--host", default="127.0.0.1")
    cstatus.add_argument("--port", type=int, default=7045)
    cstatus.add_argument("--timeout", type=float, default=5.0)
    cstatus.add_argument("--json", action="store_true",
                         help="print the raw JSON snapshot")

    args = parser.parse_args(argv)
    if args.command == "stats":
        if min(args.parties) < 2:
            stats.error("a handshake needs at least two parties (-m >= 2)")
        return _stats(args)
    if args.command == "trace":
        if args.m < 2:
            trace.error("a handshake needs at least two parties (-m >= 2)")
        return _trace(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "load":
        if args.rate <= 0 or args.duration <= 0:
            load.error("--rate and --duration must be positive")
        return _load(args)
    if args.command == "gate":
        if args.pool < 2:
            gate.error("--pool must be >= 2 (a room needs two parties)")
        if args.target_port == 0 and args.shards < 1:
            gate.error("--shards must be >= 1 when self-hosting")
        return _gate(args)
    if args.command == "revoke":
        if args.members < 3:
            revoke.error("--members must be >= 3 (two survivors must "
                         "remain after the revocation)")
        return _revoke(args)
    if args.command == "epoch":
        if args.epochs < 1:
            epoch.error("--epochs must be >= 1")
        return _epoch(args)
    if args.command == "status":
        return _status(args)
    if args.command == "top":
        if args.interval <= 0:
            top.error("--interval must be positive")
        return _top(args)
    if args.command == "cluster-status":
        return _cluster_status(args)
    if args.command == "join":
        if args.m < 2:
            join.error("a handshake needs at least two parties (-m >= 2)")
        if args.index is not None and not 0 <= args.index < args.m:
            join.error(f"--index must be in [0, {args.m})")
        return _join(args)
    if args.command is None:
        args.seed = 2005
    return _demo(args)


if __name__ == "__main__":
    sys.exit(main())
