"""``python -m repro`` — demos and measurement tooling.

Subcommands:

* ``demo`` (default) — a condensed, seeded tour of the framework: group
  creation, enrolment, a successful multi-party handshake, an impostor
  failure, self-distinction, revocation, and tracing.
* ``stats`` — replay the complexity benchmark (one handshake per party
  count) under full instrumentation and print the per-phase / per-party
  observability tables (the measured form of the paper's O(m) claims);
  optionally export JSON/CSV artifacts or the trace-event stream.
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro import (
    create_scheme1,
    create_scheme2,
    metrics,
    run_handshake,
    scheme1_policy,
    scheme2_policy,
)
from repro.security.adversaries import Impostor


def _banner(text: str) -> None:
    print(f"\n=== {text}")


def _demo() -> int:
    rng = random.Random(2005)
    started = time.time()

    _banner("SHS.CreateGroup + SHS.AdmitMember")
    agency = create_scheme1("demo-agency", rng=rng)
    members = [agency.admit_member(f"agent-{i}", rng) for i in range(4)]
    print(f"group 'demo-agency' with {len(members)} members "
          f"({agency.authority.board and len(agency.authority.board)} board posts)")

    _banner("SHS.Handshake: four members of one group")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("success:", all(o.success for o in outcomes),
          "| shared key:", outcomes[0].session_key.hex()[:24], "…")

    _banner("SHS.Handshake with an impostor")
    outcomes = run_handshake(members[:2] + [Impostor(rng=rng)],
                             scheme1_policy(), rng)
    print("success:", any(o.success for o in outcomes),
          "(impostor detected, affiliations never revealed)")

    _banner("SHS.TraceUser")
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    trace = agency.trace(outcomes[0].transcript)
    print("GA identifies:", ", ".join(sorted(trace.identified)))

    _banner("SHS.RemoveUser (dual revocation)")
    agency.remove_user("agent-3")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("handshake including the revoked member succeeds:",
          any(o.success for o in outcomes))
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    print("survivors-only handshake succeeds:",
          all(o.success for o in outcomes))

    _banner("Self-distinction (instantiation 2)")
    committee = create_scheme2("demo-committee", rng=rng)
    honest = committee.admit_member("honest", rng)
    rogue = committee.admit_member("rogue", rng)
    outcomes = run_handshake([honest, rogue, rogue], scheme2_policy(), rng)
    print("rogue playing two roles detected:",
          outcomes[0].distinct is False)

    print(f"\ndone in {time.time() - started:.1f}s — see examples/ for more")
    return 0


def _stats(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("stats-group", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("stats-group", rng=rng)
        policy = scheme1_policy()
    top = max(args.parties)
    print(f"building scheme-{args.scheme} group with {top} members "
          f"(seed {args.seed}) …")
    members = [framework.admit_member(f"user-{i}", rng) for i in range(top)]

    last_snapshot = None
    for m in args.parties:
        metrics.reset()
        if args.trace:
            metrics.enable_tracing()
        outcomes = run_handshake(members[:m], policy, rng)
        snap = metrics.snapshot()
        last_snapshot = snap
        ok = all(o.success for o in outcomes)
        phase_scopes = [s for s in ("phase:I", "phase:II", "phase:III")
                        if s in snap]
        party_scopes = [f"hs:{i}" for i in range(m)]
        print()
        print(metrics.format_table(
            snap, scopes=phase_scopes + party_scopes + ["total"],
            title=f"m={m} parties, success={ok} "
                  f"(paper: O(m) modexp + O(m) messages per party)"))
        if args.trace:
            evs = metrics.events()
            print(f"\ntrace: {len(evs)} events "
                  f"(scope begin/end, send/recv, modexp bursts); first 10:")
            for event in evs[:10]:
                print(f"  {event.ts:9.4f}s  {event.kind:<12} "
                      f"{event.scope:<12} {event.data}")

    if last_snapshot is not None:
        if args.json:
            metrics.write_json(args.json, snap=last_snapshot,
                               include_events=args.trace)
            print(f"\nwrote JSON export to {args.json}")
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(metrics.export_csv(last_snapshot))
            print(f"wrote CSV export to {args.csv}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="seeded framework tour (the default)")
    stats = sub.add_parser(
        "stats", help="replay a benchmark handshake and print per-phase "
                      "and per-party cost tables")
    stats.add_argument("-m", "--parties", type=int, nargs="+",
                       default=[2, 4], metavar="M",
                       help="party counts to sweep (default: 2 4)")
    stats.add_argument("--scheme", choices=("1", "2"), default="1",
                       help="instantiation: 1 = BD+LKH+ACJT, "
                            "2 = BD+NNL+KTY (default: 1)")
    stats.add_argument("--seed", type=int, default=2005)
    stats.add_argument("--trace", action="store_true",
                       help="record and summarize the trace-event stream")
    stats.add_argument("--json", metavar="PATH",
                       help="write the final snapshot as JSON")
    stats.add_argument("--csv", metavar="PATH",
                       help="write the final snapshot as CSV")
    args = parser.parse_args(argv)
    if args.command == "stats":
        if min(args.parties) < 2:
            stats.error("a handshake needs at least two parties (-m >= 2)")
        return _stats(args)
    return _demo()


if __name__ == "__main__":
    sys.exit(main())
