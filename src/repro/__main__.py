"""``python -m repro`` — demos, measurement tooling, and the service layer.

Subcommands:

* ``demo`` (default) — a condensed, seeded tour of the framework: group
  creation, enrolment, a successful multi-party handshake, an impostor
  failure, self-distinction, revocation, and tracing.  Exits nonzero if
  any of the expected verdicts does not hold.
* ``stats`` — replay the complexity benchmark (one handshake per party
  count) under full instrumentation and print the per-phase / per-party
  observability tables (the measured form of the paper's O(m) claims);
  optionally export JSON/CSV artifacts or the trace-event stream.  Exits
  nonzero if any same-group handshake in the sweep fails.
* ``serve`` — run the asyncio rendezvous server (an untrusted relay for
  handshake rooms) until interrupted.
* ``join`` — run handshake participant(s) against a rendezvous server.
  With ``--index`` one party joins from this process (run m processes
  with the same ``--seed`` to handshake across processes: group creation
  is deterministic, so each process derives the same credentials); without
  it, all m parties run concurrently from this process — a loopback demo
  of real TCP wire traffic.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
import time

from repro import (
    create_scheme1,
    create_scheme2,
    metrics,
    run_handshake,
    scheme1_policy,
    scheme2_policy,
)
from repro.security.adversaries import Impostor


def _banner(text: str) -> None:
    print(f"\n=== {text}")


def _demo(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    started = time.time()
    ok = True

    def check(label: str, condition: bool) -> None:
        nonlocal ok
        if not condition:
            ok = False
            print(f"!! demo expectation failed: {label}")

    _banner("SHS.CreateGroup + SHS.AdmitMember")
    agency = create_scheme1("demo-agency", rng=rng)
    members = [agency.admit_member(f"agent-{i}", rng) for i in range(4)]
    print(f"group 'demo-agency' with {len(members)} members "
          f"({agency.authority.board and len(agency.authority.board)} board posts)")

    _banner("SHS.Handshake: four members of one group")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("success:", all(o.success for o in outcomes),
          "| shared key:", outcomes[0].session_key.hex()[:24], "…")
    check("same-group handshake succeeds", all(o.success for o in outcomes))

    _banner("SHS.Handshake with an impostor")
    outcomes = run_handshake(members[:2] + [Impostor(rng=rng)],
                             scheme1_policy(), rng)
    print("success:", any(o.success for o in outcomes),
          "(impostor detected, affiliations never revealed)")
    check("impostor handshake fails", not any(o.success for o in outcomes))

    _banner("SHS.TraceUser")
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    trace = agency.trace(outcomes[0].transcript)
    print("GA identifies:", ", ".join(sorted(trace.identified)))
    check("tracing identifies the participants",
          sorted(trace.identified) == ["agent-0", "agent-1", "agent-2"])

    _banner("SHS.RemoveUser (dual revocation)")
    agency.remove_user("agent-3")
    outcomes = run_handshake(members, scheme1_policy(), rng)
    print("handshake including the revoked member succeeds:",
          any(o.success for o in outcomes))
    check("revoked member breaks the handshake",
          not any(o.success for o in outcomes))
    outcomes = run_handshake(members[:3], scheme1_policy(), rng)
    print("survivors-only handshake succeeds:",
          all(o.success for o in outcomes))
    check("survivors-only handshake succeeds",
          all(o.success for o in outcomes))

    _banner("Self-distinction (instantiation 2)")
    committee = create_scheme2("demo-committee", rng=rng)
    honest = committee.admit_member("honest", rng)
    rogue = committee.admit_member("rogue", rng)
    outcomes = run_handshake([honest, rogue, rogue], scheme2_policy(), rng)
    print("rogue playing two roles detected:",
          outcomes[0].distinct is False)
    check("rogue detected", outcomes[0].distinct is False)

    print(f"\ndone in {time.time() - started:.1f}s — see examples/ for more")
    return 0 if ok else 1


def _stats(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("stats-group", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("stats-group", rng=rng)
        policy = scheme1_policy()
    top = max(args.parties)
    print(f"building scheme-{args.scheme} group with {top} members "
          f"(seed {args.seed}) …")
    members = [framework.admit_member(f"user-{i}", rng) for i in range(top)]

    all_ok = True
    last_snapshot = None
    for m in args.parties:
        metrics.reset()
        if args.trace:
            metrics.enable_tracing()
        outcomes = run_handshake(members[:m], policy, rng)
        snap = metrics.snapshot()
        last_snapshot = snap
        ok = all(o.success for o in outcomes)
        all_ok = all_ok and ok
        phase_scopes = [s for s in ("phase:I", "phase:II", "phase:III")
                        if s in snap]
        party_scopes = [f"hs:{i}" for i in range(m)]
        print()
        print(metrics.format_table(
            snap, scopes=phase_scopes + party_scopes + ["total"],
            title=f"m={m} parties, success={ok} "
                  f"(paper: O(m) modexp + O(m) messages per party)"))
        if args.trace:
            evs = metrics.events()
            print(f"\ntrace: {len(evs)} events "
                  f"(scope begin/end, send/recv, modexp bursts); first 10:")
            for event in evs[:10]:
                print(f"  {event.ts:9.4f}s  {event.kind:<12} "
                      f"{event.scope:<12} {event.data}")

    if last_snapshot is not None:
        if args.json:
            metrics.write_json(args.json, snap=last_snapshot,
                               include_events=args.trace)
            print(f"\nwrote JSON export to {args.json}")
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(metrics.export_csv(last_snapshot))
            print(f"wrote CSV export to {args.csv}")
    if not all_ok:
        print("\n!! at least one same-group handshake failed", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Service subcommands.
# ---------------------------------------------------------------------------


def _serve(args: argparse.Namespace) -> int:
    from repro.service import RendezvousServer, ServerConfig

    async def main() -> int:
        config = ServerConfig(
            host=args.host, port=args.port,
            room_fill_timeout=args.room_fill_timeout,
            handshake_timeout=args.handshake_timeout)
        server = await RendezvousServer(config).start()
        print(f"rendezvous server listening on {args.host}:{server.port} "
              f"(untrusted relay — it sees only wire-format ciphertexts)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.shutdown()
            snap = metrics.snapshot()
            print(metrics.format_table(
                snap, scopes=[s for s in sorted(snap) if s != "total"] + ["total"],
                fields=("messages_sent", "messages_received",
                        "bytes_sent", "bytes_received", "wall_time"),
                title="service metrics"))
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


def _build_join_world(args: argparse.Namespace):
    rng = random.Random(args.seed)
    if args.scheme == "2":
        framework = create_scheme2("cli-room", rng=rng)
        policy = scheme2_policy()
    else:
        framework = create_scheme1("cli-room", rng=rng)
        policy = scheme1_policy()
    members = [framework.admit_member(f"user-{i}", rng)
               for i in range(args.m)]
    return members, policy


def _join(args: argparse.Namespace) -> int:
    from repro.core.handshake import HandshakeOutcome
    from repro.service import ClientConfig, join_room, run_room

    print(f"deriving scheme-{args.scheme} group from seed {args.seed} "
          f"(m={args.m}) …")
    members, policy = _build_join_world(args)
    config = ClientConfig(host=args.host, port=args.port, room=args.room,
                          m=args.m, deadline=args.deadline)

    async def main():
        if args.index is not None:
            rng = random.Random(args.seed * 1000 + args.index)
            return [await join_room(members[args.index], config, policy, rng)]
        return await run_room(members, config, policy)

    outcomes = asyncio.run(main())
    for outcome in outcomes:
        assert isinstance(outcome, HandshakeOutcome)
        peers = ", ".join(str(i) for i in sorted(outcome.confirmed_peers))
        key = (outcome.session_key.hex()[:24] + " …"
               if outcome.session_key else "-")
        print(f"party {outcome.index}: success={outcome.success} "
              f"confirmed_peers=[{peers}] key={key}")
    ok = bool(outcomes) and all(o.success for o in outcomes)
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="seeded framework tour (the default)")
    demo.add_argument("--seed", type=int, default=2005,
                      help="RNG seed for the tour (default: 2005)")

    stats = sub.add_parser(
        "stats", help="replay a benchmark handshake and print per-phase "
                      "and per-party cost tables")
    stats.add_argument("-m", "--parties", type=int, nargs="+",
                       default=[2, 4], metavar="M",
                       help="party counts to sweep (default: 2 4)")
    stats.add_argument("--scheme", choices=("1", "2"), default="1",
                       help="instantiation: 1 = BD+LKH+ACJT, "
                            "2 = BD+NNL+KTY (default: 1)")
    stats.add_argument("--seed", type=int, default=2005)
    stats.add_argument("--trace", action="store_true",
                       help="record and summarize the trace-event stream")
    stats.add_argument("--json", metavar="PATH",
                       help="write the final snapshot as JSON")
    stats.add_argument("--csv", metavar="PATH",
                       help="write the final snapshot as CSV")

    serve = sub.add_parser(
        "serve", help="run the rendezvous server (untrusted relay) "
                      "until interrupted")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7045)
    serve.add_argument("--room-fill-timeout", type=float, default=30.0)
    serve.add_argument("--handshake-timeout", type=float, default=60.0)

    join = sub.add_parser(
        "join", help="join a handshake room on a rendezvous server")
    join.add_argument("--host", default="127.0.0.1")
    join.add_argument("--port", type=int, default=7045)
    join.add_argument("--room", default="cli-room")
    join.add_argument("-m", type=int, default=3,
                      help="room size (default: 3)")
    join.add_argument("--index", type=int, default=None,
                      help="run only party INDEX from this process "
                           "(default: run all m parties concurrently)")
    join.add_argument("--seed", type=int, default=2005,
                      help="group-derivation seed; every joining process "
                           "must use the same value")
    join.add_argument("--scheme", choices=("1", "2"), default="1")
    join.add_argument("--deadline", type=float, default=60.0,
                      help="overall per-party deadline in seconds")

    args = parser.parse_args(argv)
    if args.command == "stats":
        if min(args.parties) < 2:
            stats.error("a handshake needs at least two parties (-m >= 2)")
        return _stats(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "join":
        if args.m < 2:
            join.error("a handshake needs at least two parties (-m >= 2)")
        if args.index is not None and not 0 <= args.index < args.m:
            join.error(f"--index must be in [0, {args.m})")
        return _join(args)
    if args.command is None:
        args.seed = 2005
    return _demo(args)


if __name__ == "__main__":
    sys.exit(main())
