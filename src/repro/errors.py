"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so applications can catch
one base class.  Protocol-level failures (a handshake that legitimately fails
because the peers are in different groups) are *not* errors — they are normal
outcomes reported through return values.  Exceptions signal misuse, corrupted
input, or cryptographic verification failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ParameterError(ReproError):
    """Invalid or inconsistent cryptographic parameters."""


class EncodingError(ReproError):
    """Malformed serialized value (wire format, transcripts, keys)."""


class FrameError(EncodingError):
    """Malformed transport frame: truncated mid-header/mid-body, or a
    declared length exceeding the negotiated maximum."""


class TransportError(ReproError):
    """A transport-level failure talking to the rendezvous service
    (connect retries exhausted, connection lost mid-handshake)."""


class VerificationError(ReproError):
    """A cryptographic check failed (signature, proof, MAC, ciphertext tag)."""


class DecryptionError(VerificationError):
    """Ciphertext rejected (bad tag, malformed, or wrong key)."""


class MembershipError(ReproError):
    """Operation on a user who is not (or already is) a group member."""


class RevocationError(MembershipError):
    """Operation conflicts with revocation state (e.g. revoking twice)."""


class ProtocolError(ReproError):
    """A protocol message arrived out of order, malformed, or from a
    participant that is not part of the session."""


class SessionError(ProtocolError):
    """An operation was attempted on a session in the wrong state."""


class TracingError(ReproError):
    """TraceUser / Open failed on a transcript that should be traceable."""
