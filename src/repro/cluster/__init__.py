"""Cluster layer: the rendezvous service sharded across processes.

One front-door :class:`~repro.cluster.router.ClusterRouter` accepts every
client connection and places each room — keyed by the rendezvous name the
clients share — onto one of N shard workers via consistent hashing, then
proxies bytes transparently.  Each shard is a separate OS process running
the unchanged :class:`~repro.service.server.RendezvousServer` on its own
event loop with its own metrics recorder, so relay work scales across
cores and a crash loses only one shard's rooms:

* :mod:`repro.cluster.placement` — consistent-hash ring (SHA-256, virtual
  nodes, deterministic failover preference order);
* :mod:`repro.cluster.shard`     — the worker process: spawn entry point,
  heartbeats carrying full status snapshots, drain-on-command;
* :mod:`repro.cluster.health`    — supervision: pipe-EOF death detection
  (instant, SIGKILL-proof), heartbeat staleness backstop, drain/kill;
* :mod:`repro.cluster.router`    — the front door: placement with
  explicit re-placement around draining/dead shards, BUSY shedding,
  transparent byte splice, aggregated STATUS merging shard snapshots.

The proxied handshake is byte-identical to dialling a shard directly, so
per-party E1/E2 counter books and session keys match the single-process
service exactly (asserted by the cluster parity test).  Protocol and
failure semantics: docs/PROTOCOL.md; telemetry: docs/OBSERVABILITY.md.
"""

from repro.cluster.health import HealthMonitor, ShardHandle  # noqa: F401
from repro.cluster.placement import HashRing  # noqa: F401
from repro.cluster.router import (  # noqa: F401
    ClusterConfig,
    ClusterRouter,
    merge_histogram_summaries,
)
from repro.cluster.shard import ShardSpec, shard_main  # noqa: F401
