"""Consistent-hash placement of rooms onto shards.

The router must send every member of one room to the *same* shard —
members only share the rendezvous name they agreed on out of band, so the
name is the placement key (the shard then mints the random, unlinkable
session token; docs/PROTOCOL.md).  A :class:`HashRing` maps each key to
its owning shard with two properties the cluster leans on:

* **stability** — adding or removing one shard moves only ``~1/N`` of the
  keyspace (virtual nodes smooth the split), so a drain does not reshuffle
  rooms living on healthy shards;
* **deterministic failover order** — :meth:`HashRing.place` walks the ring
  clockwise from the key's position, so when the primary owner is draining
  or dead every router arrives at the *same* next-best shard (explicit
  re-placement, not random retry), and when the primary comes back the key
  returns home.

Hashing is SHA-256, never Python's :func:`hash` — placement must agree
across processes and runs regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Sequence, Set, Tuple


def _hash(key: str) -> int:
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over opaque shard ids.

    ``replicas`` virtual nodes per shard keep the keyspace split even for
    small clusters (two shards at 64 vnodes land within a few percent of
    50/50 for uniform keys).
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._ring: List[Tuple[int, object]] = []   # (point, shard_id), sorted
        self._nodes: Set[object] = set()

    @property
    def nodes(self) -> Set[object]:
        return set(self._nodes)

    def add(self, node: object) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _hash(f"{node}#{replica}")
            bisect.insort(self._ring, (point, node))

    def remove(self, node: object) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [(p, n) for p, n in self._ring if n != node]

    def preference(self, key: str) -> List[object]:
        """Every shard in failover order for ``key``: the primary owner
        first, then each distinct next shard walking clockwise.  This is
        the order a router tries shards in when earlier ones are draining
        or dead — identical on every router for the same membership."""
        if not self._ring:
            return []
        order: List[object] = []
        start = bisect.bisect_right(self._ring, (_hash(key), object()))
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in order:
                order.append(node)
                if len(order) == len(self._nodes):
                    break
        return order

    def place(self, key: str,
              only: Optional[Iterable[object]] = None) -> Optional[object]:
        """The shard that owns ``key`` — restricted to ``only`` (the live
        set) when given, by walking the preference order until a member of
        ``only`` appears.  ``None`` when no candidate exists."""
        allowed = None if only is None else set(only)
        for node in self.preference(key):
            if allowed is None or node in allowed:
                return node
        return None

    def spread(self, keys: Sequence[str]) -> dict:
        """shard id -> how many of ``keys`` it owns (diagnostics/tests)."""
        counts: dict = {}
        for key in keys:
            owner = self.place(key)
            counts[owner] = counts.get(owner, 0) + 1
        return counts


__all__ = ["HashRing"]
