"""Shard liveness: handles, heartbeat bookkeeping, death detection.

The router never guesses about shard health from failed client proxying
alone — it has two dedicated signals per shard:

* **pipe EOF** — each worker holds the child end of its supervision pipe
  for its whole life, so the instant the process dies (``SIGKILL``
  included) the parent's end becomes readable-with-EOF and the shard is
  marked DEAD on the *same* event-loop tick.  This is the fast path that
  makes kill-one-shard failover race-free: no placement decision after
  the EOF can choose the dead shard.
* **heartbeat staleness** — a worker that is alive but wedged (loop
  blocked, deadlocked) stops heartbeating; the router's sweep marks it
  DEAD after ``stale_after`` seconds.  The backstop for the failure mode
  EOF cannot see.

States move one way: STARTING -> UP -> DRAINING -> DEAD (killing a shard
jumps straight to DEAD).  Only UP shards are placement candidates; a
DRAINING shard keeps serving its active rooms (its own server sheds new
HELLOs with BUSY) until its drain window closes and it exits.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from typing import Dict, List, Optional

from repro import metrics
from repro.cluster.shard import ShardSpec, shard_main
from repro.obs import logging as obslog

_log = obslog.get_logger("repro.cluster.health")

STARTING = "starting"
UP = "up"
DRAINING = "draining"
DEAD = "dead"

#: Per-shard cap on retained shipped spans — a long tracing run keeps the
#: newest spans rather than growing without bound.
SPAN_KEEP = 20000


class ShardHandle:
    """One supervised worker: process + parent pipe end + liveness state."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.shard_id = spec.shard_id
        self.state = STARTING
        self.port: Optional[int] = None
        #: ``time.monotonic()`` of the last pipe signal.  Initialized to
        #: *now*, not 0.0: the handle exists before the worker's first
        #: beat, and a zero epoch would make ``heartbeat_age()`` report
        #: enormous staleness — a slow-starting shard would be swept as
        #: dead at spawn.  Creation counts as the first sign of life.
        self.last_heartbeat = time.monotonic()
        self.last_status: Dict[str, object] = {}
        #: Spans the worker shipped over the pipe (tracing runs only);
        #: bounded — the oldest are dropped past ``SPAN_KEEP``.
        self.shipped_spans: List[dict] = []
        self.span_epoch: Optional[float] = None
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None                   # parent end of the pipe
        self.up_event: Optional[asyncio.Event] = None
        #: Room checkpoints shipped up the pipe (live migration): latest
        #: passive snapshot per token, plus the *final* exact snapshots a
        #: drain produces — what the router re-places onto a peer shard.
        self.checkpoints: Dict[str, dict] = {}
        self.final_checkpoints: Dict[str, dict] = {}
        self.checkpoint_event: Optional[asyncio.Event] = None
        #: Restore acks (("restored", ...) pipe replies) keyed by token.
        self.restore_acks: Dict[str, dict] = {}
        self.restore_event: Optional[asyncio.Event] = None

    @property
    def alive(self) -> bool:
        return self.state in (UP, DRAINING)

    def heartbeat_age(self) -> float:
        return time.monotonic() - self.last_heartbeat

    def summary(self) -> Dict[str, object]:
        """Aggregated-STATUS entry for this shard (aggregates only — the
        shard's own status() already honours the anonymity rule)."""
        rooms = self.last_status.get("rooms") if self.last_status else None
        admission = (self.last_status.get("admission")
                     if self.last_status else None)
        return {
            "state": self.state,
            "port": self.port,
            "heartbeat_age_s": round(self.heartbeat_age(), 3),
            "rooms": rooms,
            "admission": admission,
        }


class HealthMonitor:
    """Owns every :class:`ShardHandle`: spawn, watch, drain, kill."""

    def __init__(self, specs: List[ShardSpec],
                 stale_after: float = 2.0) -> None:
        self.handles: Dict[int, ShardHandle] = {
            spec.shard_id: ShardHandle(spec) for spec in specs}
        self.stale_after = stale_after
        self._ctx = multiprocessing.get_context("spawn")
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # Lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker and begin watching its pipe."""
        self._loop = asyncio.get_running_loop()
        for handle in self.handles.values():
            handle.up_event = asyncio.Event()
            handle.checkpoint_event = asyncio.Event()
            handle.restore_event = asyncio.Event()
            parent_conn, child_conn = self._ctx.Pipe()
            handle.conn = parent_conn
            handle.process = self._ctx.Process(
                target=shard_main, args=(handle.spec, child_conn),
                daemon=True, name=f"repro-shard-{handle.shard_id}")
            handle.process.start()
            # The child holds its own copy; keeping ours open would mask
            # the EOF that signals worker death.
            child_conn.close()
            self._loop.add_reader(parent_conn.fileno(),
                                  self._on_readable, handle)

    async def wait_up(self, timeout: float) -> None:
        """Block until every shard reported ("up", ...) or die trying."""
        waits = [h.up_event.wait() for h in self.handles.values()]
        try:
            await asyncio.wait_for(asyncio.gather(*waits), timeout)
        except asyncio.TimeoutError:
            laggards = [h.shard_id for h in self.handles.values()
                        if h.state == STARTING]
            raise RuntimeError(
                f"shards {laggards} did not come up within {timeout}s")

    async def stop(self, drain: bool = True,
                   drain_timeout: float = 10.0) -> None:
        """Drain (or stop) every worker, then reap the processes."""
        for handle in self.handles.values():
            if handle.state in (UP, DRAINING):
                self._command(handle, ("drain",) if drain else ("stop",))
                if handle.state == UP:
                    handle.state = DRAINING
        deadline = time.monotonic() + drain_timeout
        for handle in self.handles.values():
            if handle.process is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            await asyncio.get_running_loop().run_in_executor(
                None, handle.process.join, remaining)
            if handle.process.is_alive():
                handle.process.kill()
                await asyncio.get_running_loop().run_in_executor(
                    None, handle.process.join, 5.0)
            self.mark_dead(handle, why="stopped")

    # Pipe events ------------------------------------------------------------

    def _on_readable(self, handle: ShardHandle) -> None:
        try:
            message = handle.conn.recv()
        except (EOFError, OSError):
            # Worker death — SIGKILL or crash — surfaces here on the same
            # loop tick the OS closes the pipe.
            self.mark_dead(handle, why="pipe-eof")
            return
        kind = message[0]
        handle.last_heartbeat = time.monotonic()
        if kind == "up":
            handle.port = message[2]
            if handle.state == STARTING:
                handle.state = UP
            metrics.bump("svc-cluster:shards-up")
            obslog.log_event(_log, "shard-up", shard=handle.shard_id)
            handle.up_event.set()
        elif kind == "hb":
            handle.last_status = message[2]
            with metrics.scope(handle.spec.scope):
                metrics.bump("svc-cluster:heartbeats")
        elif kind == "spans":
            batch = message[2]
            handle.span_epoch = batch.get("epoch")
            handle.shipped_spans.extend(batch.get("spans") or [])
            if len(handle.shipped_spans) > SPAN_KEEP:
                del handle.shipped_spans[:-SPAN_KEEP]
            with metrics.scope(handle.spec.scope):
                metrics.bump("svc-cluster:span-batches")
        elif kind == "ckpt":
            body = message[2]
            payload = body.get("checkpoint") or {}
            token = payload.get("token")
            if token:
                handle.checkpoints[token] = payload
                if body.get("final"):
                    handle.final_checkpoints[token] = payload
                    if handle.checkpoint_event is not None:
                        handle.checkpoint_event.set()
            with metrics.scope(handle.spec.scope):
                metrics.bump("svc-cluster:checkpoints")
        elif kind == "restored":
            body = message[2]
            token = body.get("token")
            if token:
                handle.restore_acks[str(token)] = body
            if handle.restore_event is not None:
                handle.restore_event.set()
        elif kind == "draining":
            if handle.state != DEAD:
                handle.state = DRAINING
            obslog.log_event(_log, "shard-draining", shard=handle.shard_id)
        elif kind == "down":
            self.mark_dead(handle, why="clean-exit")

    def mark_dead(self, handle: ShardHandle, why: str) -> None:
        if handle.state == DEAD:
            return
        handle.state = DEAD
        metrics.bump("svc-cluster:shard-deaths")
        obslog.log_event(_log, "shard-dead", shard=handle.shard_id,
                         cause=why)
        if self._loop is not None and handle.conn is not None:
            try:
                self._loop.remove_reader(handle.conn.fileno())
            except (OSError, ValueError):
                pass
        if handle.conn is not None:
            try:
                handle.conn.close()
            except Exception:
                pass
        if handle.up_event is not None:
            handle.up_event.set()      # never leave wait_up hanging

    def sweep(self) -> None:
        """Staleness backstop: a shard that stopped heartbeating while
        nominally UP/DRAINING is dead to the placement layer."""
        for handle in self.handles.values():
            if handle.alive and handle.heartbeat_age() > self.stale_after:
                self.mark_dead(handle, why="heartbeat-stale")

    # Control ----------------------------------------------------------------

    def _command(self, handle: ShardHandle, command: tuple) -> None:
        try:
            handle.conn.send(command)
        except (BrokenPipeError, OSError, ValueError):
            self.mark_dead(handle, why="pipe-broken")

    def mark_draining(self, shard_id: int) -> ShardHandle:
        """Take one shard out of placement *without* telling it to shut
        down — the first step of a live migration: the router quiesces
        and re-places the shard's rooms itself, then issues the actual
        drain command once they are gone."""
        handle = self.handles[shard_id]
        if handle.state == UP:
            handle.state = DRAINING
        return handle

    async def restore_room(self, shard_id: int, payload: dict,
                           timeout: float = 5.0) -> dict:
        """Send one final room checkpoint to ``shard_id`` and await its
        ("restored", ...) ack.  Returns the ack body — ``{"ok": False}``
        with an ``error`` on timeout, shard death, or shard-side refusal
        (version mismatch, collision)."""
        handle = self.handles[shard_id]
        token = str(payload.get("token") or "")
        self._command(handle, ("restore", payload))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while token not in handle.restore_acks:
            if handle.state == DEAD:
                return {"token": token, "ok": False, "error": "shard-dead"}
            remaining = deadline - loop.time()
            if remaining <= 0:
                return {"token": token, "ok": False, "error": "timeout"}
            handle.restore_event.clear()
            try:
                await asyncio.wait_for(handle.restore_event.wait(), remaining)
            except asyncio.TimeoutError:
                pass
        return handle.restore_acks.pop(token)

    def drain(self, shard_id: int) -> None:
        """Ask one shard to drain gracefully.  Marked DRAINING immediately
        — the placement layer must stop choosing it *before* the ack, or
        a room could land on it inside the window.

        This is the *shed* path: the shard finishes (or aborts) its own
        rooms.  :meth:`repro.cluster.router.ClusterRouter.drain_shard`
        layers live migration on top, moving rooms to a peer first."""
        handle = self.handles[shard_id]
        if handle.state == DEAD:
            return
        self._command(handle, ("drain",))
        if handle.state != DEAD:
            handle.state = DRAINING
        metrics.bump("svc-cluster:drains")

    def kill(self, shard_id: int) -> None:
        """Hard-kill one shard (failure injection / last resort).  Marked
        DEAD immediately; the pipe EOF that follows is then a no-op."""
        handle = self.handles[shard_id]
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
        self.mark_dead(handle, why="killed")

    # Queries ----------------------------------------------------------------

    def live(self) -> List[ShardHandle]:
        """Placement candidates: UP only — DRAINING shards finish their
        rooms but accept no new ones."""
        return [h for h in self.handles.values() if h.state == UP]

    def states(self) -> Dict[str, List[int]]:
        grouped: Dict[str, List[int]] = {}
        for handle in self.handles.values():
            grouped.setdefault(handle.state, []).append(handle.shard_id)
        return {state: sorted(ids) for state, ids in grouped.items()}


__all__ = ["ShardHandle", "HealthMonitor",
           "STARTING", "UP", "DRAINING", "DEAD"]
